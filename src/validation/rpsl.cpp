#include "validation/rpsl.h"

#include <istream>
#include <ostream>
#include <stdexcept>

#include "util/strings.h"

namespace asrank::validation {

namespace {

[[noreturn]] void fail(std::size_t line_no, const std::string& what) {
  throw std::runtime_error("rpsl line " + std::to_string(line_no) + ": " + what);
}

/// Parse "from AS64500 accept ANY" / "to AS64500 announce AS-SET-FOO".
/// Returns (neighbor, filter-is-ANY).
std::pair<Asn, bool> parse_policy_line(std::string_view rest, std::string_view lead_word,
                                       std::string_view filter_word, std::size_t line_no) {
  const auto tokens = util::split_ws(rest);
  if (tokens.size() < 3 || !util::iequals(tokens[0], lead_word)) {
    fail(line_no, "expected '" + std::string(lead_word) + " <AS> " +
                      std::string(filter_word) + " <filter>'");
  }
  const auto neighbor = Asn::parse(tokens[1]);
  if (!neighbor) fail(line_no, "malformed neighbour ASN");
  // Find the filter keyword; everything after it is the filter expression.
  std::size_t filter_at = tokens.size();
  for (std::size_t i = 2; i < tokens.size(); ++i) {
    if (util::iequals(tokens[i], filter_word)) {
      filter_at = i;
      break;
    }
  }
  if (filter_at + 1 > tokens.size() || filter_at == tokens.size()) {
    fail(line_no, "missing '" + std::string(filter_word) + "' clause");
  }
  const bool any = filter_at + 1 < tokens.size() && util::iequals(tokens[filter_at + 1], "ANY");
  return {*neighbor, any};
}

}  // namespace

std::vector<AutNum> parse_rpsl(std::istream& is) {
  std::vector<AutNum> objects;
  AutNum current;
  bool in_object = false;
  std::string line;
  std::size_t line_no = 0;

  auto flush = [&] {
    if (in_object) objects.push_back(std::move(current));
    current = AutNum{};
    in_object = false;
  };

  auto policy_for = [&](Asn neighbor) -> RpslPolicy& {
    for (RpslPolicy& policy : current.policies) {
      if (policy.neighbor == neighbor) return policy;
    }
    current.policies.push_back(RpslPolicy{neighbor, false, false, false, false});
    return current.policies.back();
  };

  while (std::getline(is, line)) {
    ++line_no;
    const auto text = util::trim(line);
    if (text.empty()) {
      flush();
      continue;
    }
    if (text.front() == '%' || text.front() == '#') continue;  // comments
    const auto colon = text.find(':');
    if (colon == std::string_view::npos) continue;  // continuation lines: ignored
    const auto attr = util::to_lower(util::trim(text.substr(0, colon)));
    const auto rest = util::trim(text.substr(colon + 1));
    if (attr == "aut-num") {
      flush();
      const auto as = Asn::parse(rest);
      if (!as) fail(line_no, "malformed aut-num value");
      current.as = *as;
      in_object = true;
    } else if (attr == "import" && in_object) {
      const auto [neighbor, any] = parse_policy_line(rest, "from", "accept", line_no);
      RpslPolicy& policy = policy_for(neighbor);
      policy.has_import = true;
      policy.import_any = policy.import_any || any;
    } else if (attr == "export" && in_object) {
      const auto [neighbor, any] = parse_policy_line(rest, "to", "announce", line_no);
      RpslPolicy& policy = policy_for(neighbor);
      policy.has_export = true;
      policy.export_any = policy.export_any || any;
    }
    // Other attributes (as-name, descr, mnt-by, ...) are ignored.
  }
  flush();
  return objects;
}

std::vector<Assertion> assertions_from_rpsl(const std::vector<AutNum>& objects) {
  std::vector<Assertion> out;
  for (const AutNum& object : objects) {
    for (const RpslPolicy& policy : object.policies) {
      if (!policy.has_import || !policy.has_export) continue;  // one-sided: skip
      Assertion assertion;
      assertion.source = Source::kRpsl;
      if (policy.import_any && policy.export_any) {
        continue;  // mutual transit: ambiguous, paper discards these
      }
      if (policy.import_any) {
        assertion.a = policy.neighbor;  // provider
        assertion.b = object.as;
        assertion.type = LinkType::kP2C;
      } else if (policy.export_any) {
        assertion.a = object.as;  // provider
        assertion.b = policy.neighbor;
        assertion.type = LinkType::kP2C;
      } else {
        assertion.a = object.as;
        assertion.b = policy.neighbor;
        assertion.type = LinkType::kP2P;
      }
      out.push_back(assertion);
    }
  }
  return out;
}

void write_rpsl(const std::vector<AutNum>& objects, std::ostream& os) {
  for (const AutNum& object : objects) {
    os << "aut-num: AS" << object.as.value() << '\n';
    os << "as-name: UNSPECIFIED\n";
    for (const RpslPolicy& policy : object.policies) {
      if (policy.has_import) {
        os << "import: from AS" << policy.neighbor.value() << " accept "
           << (policy.import_any ? "ANY" : ("AS" + policy.neighbor.str())) << '\n';
      }
      if (policy.has_export) {
        os << "export: to AS" << policy.neighbor.value() << " announce "
           << (policy.export_any ? "ANY" : ("AS" + object.as.str())) << '\n';
      }
    }
    os << '\n';
  }
}

}  // namespace asrank::validation
