// IRR route-object and as-set support (RFC 2622), complementing the
// aut-num policies in rpsl.h.
//
//   route:  1.2.3.0/24          as-set: AS-EXAMPLE
//   origin: AS64500             members: AS64500, AS64501, AS-OTHER
//
// Route objects give the registry's view of prefix origination; the paper's
// ecosystem uses them to build IP-to-AS mappings (here: a PrefixTable) and
// to sanity-check origins seen in BGP.  As-sets name customer groups in
// export policies; expansion resolves nested sets with cycle tolerance.
#pragma once

#include <iosfwd>
#include <string>
#include <unordered_map>
#include <vector>

#include "asn/asn.h"
#include "asn/prefix.h"
#include "topology/prefix_table.h"

namespace asrank::validation {

struct RouteObject {
  Prefix prefix;
  Asn origin;

  friend bool operator==(const RouteObject&, const RouteObject&) = default;
};

struct AsSet {
  std::string name;                  ///< e.g. "AS-EXAMPLE" (upper-cased)
  std::vector<Asn> asn_members;
  std::vector<std::string> set_members;  ///< nested as-set names
};

struct IrrDatabase {
  std::vector<RouteObject> routes;
  std::unordered_map<std::string, AsSet> as_sets;  ///< keyed by name
};

/// Parse a stream of route / as-set objects separated by blank lines.
/// Unknown attributes and other object classes are ignored; malformed
/// route/origin/members lines raise std::runtime_error with a line number.
[[nodiscard]] IrrDatabase parse_irr(std::istream& is);

/// Render back to RPSL text (round-trip tested).
void write_irr(const IrrDatabase& database, std::ostream& os);

/// Build a longest-prefix-match table from route objects.  When multiple
/// route objects register the same prefix, the lowest origin ASN wins
/// (deterministic; real IRRs simply contain such conflicts).
[[nodiscard]] PrefixTable origin_table(const IrrDatabase& database);

/// Recursively expand an as-set to its ASN members.  Unknown nested sets are
/// skipped; cycles are tolerated (each set expands once).  Returns members
/// sorted ascending, deduplicated.
[[nodiscard]] std::vector<Asn> expand_as_set(const IrrDatabase& database,
                                             const std::string& name);

/// Compare BGP-observed originations against the registry: fraction of
/// (prefix, origin) pairs whose origin matches the route object covering the
/// prefix (exact or less specific).
struct OriginValidation {
  std::size_t checked = 0;    ///< originations with a covering route object
  std::size_t matched = 0;    ///< of those, origin agrees
  std::size_t uncovered = 0;  ///< no covering route object

  [[nodiscard]] double match_rate() const noexcept {
    return checked == 0 ? 0.0 : static_cast<double>(matched) / static_cast<double>(checked);
  }
};

[[nodiscard]] OriginValidation validate_origins(
    const PrefixTable& registry, const std::vector<std::pair<Prefix, Asn>>& observed);

}  // namespace asrank::validation
