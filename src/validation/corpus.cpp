#include "validation/corpus.h"

#include <algorithm>

namespace asrank::validation {

std::uint64_t ValidationCorpus::key(Asn a, Asn b) noexcept {
  const std::uint32_t lo = std::min(a.value(), b.value());
  const std::uint32_t hi = std::max(a.value(), b.value());
  return (static_cast<std::uint64_t>(lo) << 32) | hi;
}

namespace {

/// Lower value = more trusted.
constexpr int trust(Source s) noexcept { return static_cast<int>(s); }

bool same_claim(const Assertion& x, const Assertion& y) noexcept {
  if (x.type != y.type) return false;
  if (x.type == LinkType::kP2C) return x.a == y.a && x.b == y.b;
  return true;  // undirected types match regardless of order
}

}  // namespace

void ValidationCorpus::add(const Assertion& assertion) {
  const auto [it, inserted] = by_link_.try_emplace(key(assertion.a, assertion.b), assertion);
  if (inserted) return;
  if (!same_claim(it->second, assertion)) ++conflicts_;
  if (trust(assertion.source) < trust(it->second.source)) it->second = assertion;
}

std::optional<Assertion> ValidationCorpus::lookup(Asn a, Asn b) const {
  const auto it = by_link_.find(key(a, b));
  if (it == by_link_.end()) return std::nullopt;
  return it->second;
}

std::vector<Assertion> ValidationCorpus::assertions() const {
  std::vector<std::pair<std::uint64_t, Assertion>> items(by_link_.begin(), by_link_.end());
  std::sort(items.begin(), items.end(),
            [](const auto& x, const auto& y) { return x.first < y.first; });
  std::vector<Assertion> out;
  out.reserve(items.size());
  for (auto& [k, assertion] : items) out.push_back(assertion);
  return out;
}

std::unordered_map<Source, std::size_t> ValidationCorpus::source_counts() const {
  std::unordered_map<Source, std::size_t> out;
  for (const auto& [k, assertion] : by_link_) ++out[assertion.source];
  return out;
}

}  // namespace asrank::validation
