#include "validation/communities.h"

namespace asrank::validation {

std::vector<Assertion> assertions_from_communities(const std::vector<TaggedRoute>& routes,
                                                   const ConventionMap& conventions) {
  std::vector<Assertion> out;
  for (const TaggedRoute& route : routes) {
    for (const mrt::Community community : route.communities) {
      const Asn tagger(community.high);
      const auto convention_it = conventions.find(tagger);
      if (convention_it == conventions.end()) continue;
      const CommunityConvention& convention = convention_it->second;

      const auto position = route.path.index_of(tagger);
      if (!position || *position + 1 >= route.path.size()) continue;
      const Asn neighbor = route.path.at(*position + 1);
      if (neighbor == tagger) continue;

      Assertion assertion;
      assertion.source = Source::kCommunities;
      if (community.low == convention.from_customer) {
        assertion.a = tagger;  // neighbour is the tagger's customer
        assertion.b = neighbor;
        assertion.type = LinkType::kP2C;
      } else if (community.low == convention.from_provider) {
        assertion.a = neighbor;  // neighbour provides to the tagger
        assertion.b = tagger;
        assertion.type = LinkType::kP2C;
      } else if (community.low == convention.from_peer) {
        assertion.a = tagger;
        assertion.b = neighbor;
        assertion.type = LinkType::kP2P;
      } else {
        continue;  // unrelated community value
      }
      out.push_back(assertion);
    }
  }
  return out;
}

}  // namespace asrank::validation
