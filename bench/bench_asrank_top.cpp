// E8 — the AS Rank table (paper §5.4): top ASes by customer cone size, with
// ground-truth cone sizes and tiers alongside, plus rank-correlation of the
// inferred ranking against truth.
#include "bench_common.h"

#include "core/cones.h"
#include "core/ranking.h"
#include "util/stats.h"

namespace {

const char* tier_name(asrank::topogen::Tier tier) {
  using asrank::topogen::Tier;
  switch (tier) {
    case Tier::kClique: return "tier-1";
    case Tier::kTransit: return "tier-2";
    case Tier::kRegional: return "tier-3";
    case Tier::kStub: return "stub";
  }
  return "?";
}

}  // namespace

int main(int argc, char** argv) {
  using namespace asrank;
  const auto options = bench::parse_options(argc, argv);
  bench::header("E8 AS Rank: top ASes by customer cone (paper Table 5-style)", options);
  bench::paper_shape(
      "the top of the ranking is the tier-1 clique followed by large "
      "tier-2 transit providers; inferred cone ranks correlate strongly "
      "with ground-truth cone ranks");

  const auto world = bench::make_world(options);
  const auto inferred_cones =
      core::provider_peer_observed_cone(world.result.graph, world.result.sanitized);
  const auto truth_cones = core::recursive_cone(world.truth.graph);

  util::TableWriter table(
      {"rank", "AS", "tier", "inferred cone", "true cone", "transit degree", "in clique"});
  for (const auto& entry : core::top_n(inferred_cones, world.result.degrees, 15)) {
    const auto truth_it = truth_cones.find(entry.as);
    const bool in_clique = std::binary_search(world.truth.clique.begin(),
                                              world.truth.clique.end(), entry.as);
    table.add_row({std::to_string(entry.rank), "AS" + entry.as.str(),
                   tier_name(world.truth.tiers.at(entry.as)),
                   util::fmt_count(entry.cone_size),
                   truth_it == truth_cones.end() ? "-"
                                                 : util::fmt_count(truth_it->second.size()),
                   util::fmt_count(entry.transit_degree), in_clique ? "yes" : "no"});
  }
  table.render(std::cout);

  std::vector<double> inferred_sizes, true_sizes;
  for (const auto& [as, members] : inferred_cones) {
    const auto it = truth_cones.find(as);
    if (it == truth_cones.end()) continue;
    inferred_sizes.push_back(static_cast<double>(members.size()));
    true_sizes.push_back(static_cast<double>(it->second.size()));
  }
  std::cout << "rank correlation (inferred vs true cone sizes): kendall tau = "
            << util::fmt(util::kendall_tau(inferred_sizes, true_sizes), 3)
            << ", pearson = " << util::fmt(util::pearson(inferred_sizes, true_sizes), 3)
            << "\n";
  return 0;
}
