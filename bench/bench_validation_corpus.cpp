// E2 — paper Table 2 analogue: validation corpus composition by source
// (direct reports / RPSL / BGP communities), overlap conflicts, and coverage
// of the inferred graph (paper reports 34.6% coverage).
#include "bench_common.h"

#include "validation/synthesize.h"

int main(int argc, char** argv) {
  using namespace asrank;
  const auto options = bench::parse_options(argc, argv);
  bench::header("E2 validation corpus by source (paper Table 2)", options);
  bench::paper_shape(
      "communities and RPSL dominate the corpus volume; direct reports are "
      "scarce but most trusted; total coverage lands near a third of links "
      "(paper: 34.6%)");

  const auto world = bench::make_world(options);
  const auto synth = validation::synthesize_validation(world.truth, world.observation,
                                                       validation::SynthesisParams{});

  util::TableWriter table({"source", "assertions", "share"});
  const auto counts = synth.corpus.source_counts();
  const double total = static_cast<double>(synth.corpus.size());
  auto row = [&](validation::Source source) {
    const auto it = counts.find(source);
    const std::size_t n = it == counts.end() ? 0 : it->second;
    table.add_row({std::string(to_string(source)), util::fmt_count(n),
                   util::fmt_pct(static_cast<double>(n) / total)});
  };
  row(validation::Source::kDirectReport);
  row(validation::Source::kCommunities);
  row(validation::Source::kRpsl);
  table.add_row({"total (deduplicated)", util::fmt_count(synth.corpus.size()), "100.00%"});
  table.render(std::cout);

  const auto ppv = validation::evaluate_ppv(world.result.graph, synth.corpus);
  std::cout << "raw assertions: direct " << synth.direct_assertions << ", rpsl "
            << synth.rpsl_assertions << ", communities " << synth.community_assertions
            << "\n";
  std::cout << "cross-source conflicts: " << synth.corpus.conflicts() << "\n";
  std::cout << "coverage of inferred links: " << util::fmt_pct(ppv.coverage())
            << " (" << ppv.validated_links << "/" << ppv.inferred_links
            << "; paper: 34.6%)\n";
  return 0;
}
