// E1 — paper Table 1 analogue: the BGP corpus and vantage-point statistics
// (collectors/VPs/full feeds/prefixes/paths/links), plus what the
// sanitization pipeline removed (paper §4.1-4.2 step 1).
#include "bench_common.h"

#include "paths/sanitizer.h"

int main(int argc, char** argv) {
  using namespace asrank;
  const auto options = bench::parse_options(argc, argv);
  bench::header("E1 corpus & VP statistics (paper Table 1)", options);
  bench::paper_shape(
      "a few dozen VPs suffice to observe nearly every c2p link but only a "
      "fraction of p2p links; sanitization discards a small tail of paths");

  const auto world = bench::make_world(options);
  const auto corpus = paths::PathCorpus::from_records(world.observation.routes);

  std::size_t full = 0;
  for (const auto& vp : world.observation.vps) full += vp.full_feed;

  util::TableWriter table({"metric", "value"});
  table.add_row({"ASes (ground truth)", util::fmt_count(world.truth.graph.as_count())});
  table.add_row({"links (ground truth)", util::fmt_count(world.truth.graph.link_count())});
  table.add_row({"prefixes originated", util::fmt_count(world.truth.prefix_count())});
  table.add_row({"vantage points", util::fmt_count(world.observation.vps.size())});
  table.add_row({"  full feeds", util::fmt_count(full)});
  table.add_row({"  partial feeds", util::fmt_count(world.observation.vps.size() - full)});
  table.add_row({"raw path records", util::fmt_count(corpus.size())});
  table.add_row({"raw distinct prefixes", util::fmt_count(corpus.prefix_count())});

  const auto& stats = world.result.audit.sanitize;
  table.add_row({"sanitized records", util::fmt_count(stats.output_records)});
  table.add_row({"  prepending compressed", util::fmt_count(stats.prepended_compressed)});
  table.add_row({"  loops discarded", util::fmt_count(stats.loops_discarded)});
  table.add_row({"  reserved-ASN discarded", util::fmt_count(stats.reserved_discarded)});
  table.add_row({"  IXP hops stripped", util::fmt_count(stats.ixp_hops_stripped)});
  table.add_row({"  duplicates removed", util::fmt_count(stats.duplicates_removed)});
  table.add_row({"poisoned paths discarded", util::fmt_count(world.result.audit.poisoned_discarded)});
  table.add_row({"ASes observed", util::fmt_count(world.result.audit.ranked_ases)});
  table.add_row({"links observed", util::fmt_count(world.result.graph.link_count())});

  const auto truth_counts = world.truth.graph.link_counts();
  std::size_t p2c_seen = 0, p2p_seen = 0;
  for (const Link& link : world.truth.graph.links()) {
    if (!world.result.graph.has_link(link.a, link.b)) continue;
    if (link.type == LinkType::kP2C) ++p2c_seen;
    if (link.type == LinkType::kP2P) ++p2p_seen;
  }
  table.add_row({"p2c visibility",
                 util::fmt_pct(static_cast<double>(p2c_seen) /
                               static_cast<double>(truth_counts.p2c))});
  table.add_row({"p2p visibility",
                 util::fmt_pct(static_cast<double>(p2p_seen) /
                               static_cast<double>(truth_counts.p2p))});
  table.render(std::cout);
  return 0;
}
