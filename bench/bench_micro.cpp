// E11 — microbenchmarks (google-benchmark): throughput of each pipeline
// stage.  Not a paper artefact; establishes that the implementation scales
// to collector-sized corpora (RouteViews rv2 held ~466k prefixes in 2013).
#include <benchmark/benchmark.h>

#include <chrono>
#include <fstream>
#include <iostream>
#include <sstream>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "baselines/tor_local_search.h"
#include "bgpsim/observation.h"
#include "core/asrank.h"
#include "core/cones.h"
#include "core/degrees.h"
#include "mrt/table_dump_v2.h"
#include "paths/sanitizer.h"
#include "topogen/topogen.h"
#include "topology/interner.h"
#include "topology/topology_view.h"

namespace {

using namespace asrank;

const topogen::GroundTruth& truth() {
  static const auto t = topogen::generate(topogen::GenParams::preset("medium"));
  return t;
}

const bgpsim::Observation& observation() {
  static const auto obs = [] {
    bgpsim::ObservationParams params;
    params.full_vps = 20;
    params.partial_vps = 5;
    return bgpsim::observe(truth(), params);
  }();
  return obs;
}

const paths::PathCorpus& raw_corpus() {
  static const auto corpus = paths::PathCorpus::from_records(observation().routes);
  return corpus;
}

const paths::PathCorpus& clean_corpus() {
  static const auto corpus = [] {
    paths::SanitizerConfig config;
    config.ixp_asns.insert(truth().ixp_asns.begin(), truth().ixp_asns.end());
    return paths::sanitize(raw_corpus(), config).corpus;
  }();
  return corpus;
}

void BM_TopologyGenerate(benchmark::State& state) {
  auto params = topogen::GenParams::preset("small");
  for (auto _ : state) {
    auto generated = topogen::generate(params);
    benchmark::DoNotOptimize(generated.graph.link_count());
  }
}
BENCHMARK(BM_TopologyGenerate);

void BM_RouteSimPerDestination(benchmark::State& state) {
  const bgpsim::RouteSimulator simulator(truth().graph);
  const auto ases = simulator.ases();
  std::size_t i = 0;
  for (auto _ : state) {
    const auto table = simulator.routes_to(ases[i % ases.size()]);
    benchmark::DoNotOptimize(table.reachable_count());
    ++i;
  }
}
BENCHMARK(BM_RouteSimPerDestination);

void BM_Sanitize(benchmark::State& state) {
  paths::SanitizerConfig config;
  config.ixp_asns.insert(truth().ixp_asns.begin(), truth().ixp_asns.end());
  for (auto _ : state) {
    auto result = paths::sanitize(raw_corpus(), config);
    benchmark::DoNotOptimize(result.stats.output_records);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(raw_corpus().size()));
}
BENCHMARK(BM_Sanitize);

void BM_DegreesCompute(benchmark::State& state) {
  for (auto _ : state) {
    auto degrees = core::Degrees::compute(clean_corpus());
    benchmark::DoNotOptimize(degrees.ranked().size());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(clean_corpus().size()));
}
BENCHMARK(BM_DegreesCompute);

void BM_CliqueInference(benchmark::State& state) {
  const auto degrees = core::Degrees::compute(clean_corpus());
  for (auto _ : state) {
    auto clique = core::infer_clique(clean_corpus(), degrees, core::CliqueConfig{});
    benchmark::DoNotOptimize(clique.size());
  }
}
BENCHMARK(BM_CliqueInference);

void BM_FullInference(benchmark::State& state) {
  core::InferenceConfig config;
  config.sanitizer.ixp_asns.insert(truth().ixp_asns.begin(), truth().ixp_asns.end());
  const core::AsRankInference inference(config);
  for (auto _ : state) {
    auto result = inference.run(raw_corpus());
    benchmark::DoNotOptimize(result.graph.link_count());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(raw_corpus().size()));
}
BENCHMARK(BM_FullInference);

const core::InferenceResult& inference_result() {
  static const auto result = [] {
    core::InferenceConfig config;
    config.sanitizer.ixp_asns.insert(truth().ixp_asns.begin(), truth().ixp_asns.end());
    return core::AsRankInference(config).run(raw_corpus());
  }();
  return result;
}

void BM_RecursiveCone(benchmark::State& state) {
  for (auto _ : state) {
    auto cones = core::recursive_cone(inference_result().graph);
    benchmark::DoNotOptimize(cones.size());
  }
}
BENCHMARK(BM_RecursiveCone);

void BM_PpdcCone(benchmark::State& state) {
  for (auto _ : state) {
    auto cones = core::provider_peer_observed_cone(inference_result().graph,
                                                   inference_result().sanitized);
    benchmark::DoNotOptimize(cones.size());
  }
}
BENCHMARK(BM_PpdcCone);

void BM_MrtEncode(benchmark::State& state) {
  const auto dump = bgpsim::to_rib_dump(observation());
  for (auto _ : state) {
    std::ostringstream stream;
    mrt::write_table_dump_v2(dump, stream);
    benchmark::DoNotOptimize(stream.tellp());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(dump.rib.size()));
}
BENCHMARK(BM_MrtEncode);

void BM_MrtDecode(benchmark::State& state) {
  const auto dump = bgpsim::to_rib_dump(observation());
  std::ostringstream encoded;
  mrt::write_table_dump_v2(dump, encoded);
  const std::string bytes = encoded.str();
  for (auto _ : state) {
    std::istringstream stream(bytes);
    auto parsed = mrt::read_table_dump_v2(stream);
    benchmark::DoNotOptimize(parsed.rib.size());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(dump.rib.size()));
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(bytes.size()));
}
BENCHMARK(BM_MrtDecode);

// ---------------------------------------------------------------------------
// Dense-representation microbenches (TopologyView substrate)
// ---------------------------------------------------------------------------

const std::vector<Asn>& corpus_hops() {
  static const auto hops = [] {
    std::vector<Asn> all;
    for (const auto& record : clean_corpus().records()) {
      const auto path = record.path.hops();
      all.insert(all.end(), path.begin(), path.end());
    }
    return all;
  }();
  return hops;
}

void BM_InternerBuild(benchmark::State& state) {
  for (auto _ : state) {
    auto interner = topology::AsnInterner::from_asns(corpus_hops());
    benchmark::DoNotOptimize(interner.size());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(corpus_hops().size()));
}
BENCHMARK(BM_InternerBuild);

void BM_TopologyFreeze(benchmark::State& state) {
  for (auto _ : state) {
    auto view = inference_result().graph.freeze(inference_result().clique);
    benchmark::DoNotOptimize(view.link_count());
  }
}
BENCHMARK(BM_TopologyFreeze);

void BM_RecursiveConeDense(benchmark::State& state) {
  const auto view = inference_result().graph.freeze();
  for (auto _ : state) {
    auto cones = core::recursive_cone(view, 1);
    benchmark::DoNotOptimize(cones.size());
  }
}
BENCHMARK(BM_RecursiveConeDense);

// ----------------------------------------------- BENCH_topology_view.json --
// Before/after comparison of the dense CSR kernels against the hash-map
// implementations they replaced, written as a side artifact so the
// BENCH_*.json trajectory tracks the representation change across PRs.

/// The pre-refactor cone closure: memoized post-order DFS merging
/// unordered_sets keyed by ASN.
std::size_t hash_cone_closure(const AsGraph& graph) {
  std::unordered_map<Asn, std::unordered_set<Asn>> cones;
  cones.reserve(graph.ases().size());
  std::size_t total = 0;
  struct Frame {
    Asn node;
    std::size_t next = 0;
  };
  std::vector<Frame> stack;
  for (const Asn root : graph.ases()) {
    if (cones.contains(root)) {
      total += cones.at(root).size();
      continue;
    }
    stack.push_back({root});
    while (!stack.empty()) {
      Frame& top = stack.back();
      const auto customers = graph.customers(top.node);
      if (top.next < customers.size()) {
        const Asn child = customers[top.next++];
        if (!cones.contains(child)) stack.push_back({child});
        continue;
      }
      std::unordered_set<Asn> cone{top.node};
      for (const Asn child : customers) {
        const auto& sub = cones.at(child);
        cone.insert(sub.begin(), sub.end());
      }
      cones.emplace(top.node, std::move(cone));
      stack.pop_back();
    }
    total += cones.at(root).size();
  }
  return total;
}

/// Valley-free sweep on flat translated hop arrays with precomputed per-hop
/// RelView codes — the dense counterpart of the per-hop hash lookups in
/// TorLocalSearch::violations.
std::size_t dense_valley_sweep(std::span<const std::uint8_t> codes,
                               std::span<const std::size_t> offsets) {
  constexpr std::uint8_t kNoRel = 0xff;
  std::size_t violations = 0;
  for (std::size_t p = 0; p + 1 < offsets.size(); ++p) {
    int state = 0;
    bool ok = true;
    for (std::size_t i = offsets[p]; ok && i < offsets[p + 1]; ++i) {
      switch (codes[i]) {
        case static_cast<std::uint8_t>(RelView::kProvider):
          ok = state == 0;
          break;
        case static_cast<std::uint8_t>(RelView::kPeer):
          ok = state == 0;
          state = 1;
          break;
        case static_cast<std::uint8_t>(RelView::kCustomer):
          state = 1;
          break;
        case static_cast<std::uint8_t>(RelView::kSibling):
          break;
        case kNoRel:
        default:
          ok = false;
          break;
      }
    }
    if (!ok) ++violations;
  }
  return violations;
}

template <typename Fn>
double min_time_ms(int reps, Fn&& fn) {
  double best = 0.0;
  for (int rep = 0; rep < reps; ++rep) {
    const auto start = std::chrono::steady_clock::now();
    fn();
    const double elapsed = std::chrono::duration<double, std::milli>(
                               std::chrono::steady_clock::now() - start)
                               .count();
    if (rep == 0 || elapsed < best) best = elapsed;
  }
  return best;
}

void write_topology_view_json(const std::string& path) {
  constexpr int kReps = 3;
  constexpr int kSweeps = 8;  // fixpoint-style repeated evaluation
  constexpr std::uint8_t kNoRel = 0xff;

  const AsGraph& graph = inference_result().graph;
  const paths::PathCorpus& corpus = inference_result().sanitized;
  const auto view = graph.freeze();

  const double interner_ms = min_time_ms(kReps, [] {
    auto interner = topology::AsnInterner::from_asns(corpus_hops());
    benchmark::DoNotOptimize(interner.size());
  });
  const double freeze_ms = min_time_ms(kReps, [&graph] {
    auto frozen = graph.freeze();
    benchmark::DoNotOptimize(frozen.link_count());
  });

  const double cone_dense_ms = min_time_ms(kReps, [&view] {
    auto cones = core::recursive_cone(view, 1);
    benchmark::DoNotOptimize(cones.size());
  });
  const double cone_hash_ms = min_time_ms(kReps, [&graph] {
    benchmark::DoNotOptimize(hash_cone_closure(graph));
  });

  // Valley-free fixpoint shape: the hash path re-resolves every hop per
  // sweep; the dense path translates once, then sweeps flat arrays.
  const double valley_hash_ms = min_time_ms(kReps, [&] {
    std::size_t total = 0;
    for (int sweep = 0; sweep < kSweeps; ++sweep) {
      total += baselines::TorLocalSearch::violations(graph, corpus);
    }
    benchmark::DoNotOptimize(total);
  });
  const double valley_dense_ms = min_time_ms(kReps, [&] {
    std::vector<std::uint8_t> codes;
    std::vector<std::size_t> offsets{0};
    std::vector<topology::NodeId> ids;
    for (const auto& record : corpus.records()) {
      view.interner().translate(record.path.hops(), ids);
      for (std::size_t i = 1; i < ids.size(); ++i) {
        std::uint8_t code = kNoRel;
        if (ids[i - 1] != topology::kNoNode && ids[i] != topology::kNoNode) {
          if (const auto rel = view.relationship(ids[i - 1], ids[i])) {
            code = static_cast<std::uint8_t>(*rel);
          }
        }
        codes.push_back(code);
      }
      offsets.push_back(codes.size());
    }
    std::size_t total = 0;
    for (int sweep = 0; sweep < kSweeps; ++sweep) {
      total += dense_valley_sweep(codes, offsets);
    }
    benchmark::DoNotOptimize(total);
  });

  std::ofstream os(path);
  os << "{\n  \"bench\": \"topology_view\",\n";
  os << "  \"ases\": " << view.node_count() << ",\n";
  os << "  \"links\": " << view.link_count() << ",\n";
  os << "  \"corpus_paths\": " << corpus.size() << ",\n";
  os << "  \"interner_build_ms\": " << interner_ms << ",\n";
  os << "  \"csr_freeze_ms\": " << freeze_ms << ",\n";
  os << "  \"cone_closure\": {\"dense_ms\": " << cone_dense_ms
     << ", \"hash_ms\": " << cone_hash_ms << ", \"speedup\": "
     << (cone_dense_ms > 0.0 ? cone_hash_ms / cone_dense_ms : 0.0) << "},\n";
  os << "  \"valley_free_fixpoint\": {\"dense_ms\": " << valley_dense_ms
     << ", \"hash_ms\": " << valley_hash_ms << ", \"speedup\": "
     << (valley_dense_ms > 0.0 ? valley_hash_ms / valley_dense_ms : 0.0)
     << "}\n}\n";
  std::cout << "wrote " << path << "\n";
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  write_topology_view_json("BENCH_topology_view.json");
  return 0;
}
