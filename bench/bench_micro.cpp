// E11 — microbenchmarks (google-benchmark): throughput of each pipeline
// stage.  Not a paper artefact; establishes that the implementation scales
// to collector-sized corpora (RouteViews rv2 held ~466k prefixes in 2013).
#include <benchmark/benchmark.h>

#include <sstream>

#include "bgpsim/observation.h"
#include "core/asrank.h"
#include "core/cones.h"
#include "core/degrees.h"
#include "mrt/table_dump_v2.h"
#include "paths/sanitizer.h"
#include "topogen/topogen.h"

namespace {

using namespace asrank;

const topogen::GroundTruth& truth() {
  static const auto t = topogen::generate(topogen::GenParams::preset("medium"));
  return t;
}

const bgpsim::Observation& observation() {
  static const auto obs = [] {
    bgpsim::ObservationParams params;
    params.full_vps = 20;
    params.partial_vps = 5;
    return bgpsim::observe(truth(), params);
  }();
  return obs;
}

const paths::PathCorpus& raw_corpus() {
  static const auto corpus = paths::PathCorpus::from_records(observation().routes);
  return corpus;
}

const paths::PathCorpus& clean_corpus() {
  static const auto corpus = [] {
    paths::SanitizerConfig config;
    config.ixp_asns.insert(truth().ixp_asns.begin(), truth().ixp_asns.end());
    return paths::sanitize(raw_corpus(), config).corpus;
  }();
  return corpus;
}

void BM_TopologyGenerate(benchmark::State& state) {
  auto params = topogen::GenParams::preset("small");
  for (auto _ : state) {
    auto generated = topogen::generate(params);
    benchmark::DoNotOptimize(generated.graph.link_count());
  }
}
BENCHMARK(BM_TopologyGenerate);

void BM_RouteSimPerDestination(benchmark::State& state) {
  const bgpsim::RouteSimulator simulator(truth().graph);
  const auto ases = simulator.ases();
  std::size_t i = 0;
  for (auto _ : state) {
    const auto table = simulator.routes_to(ases[i % ases.size()]);
    benchmark::DoNotOptimize(table.reachable_count());
    ++i;
  }
}
BENCHMARK(BM_RouteSimPerDestination);

void BM_Sanitize(benchmark::State& state) {
  paths::SanitizerConfig config;
  config.ixp_asns.insert(truth().ixp_asns.begin(), truth().ixp_asns.end());
  for (auto _ : state) {
    auto result = paths::sanitize(raw_corpus(), config);
    benchmark::DoNotOptimize(result.stats.output_records);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(raw_corpus().size()));
}
BENCHMARK(BM_Sanitize);

void BM_DegreesCompute(benchmark::State& state) {
  for (auto _ : state) {
    auto degrees = core::Degrees::compute(clean_corpus());
    benchmark::DoNotOptimize(degrees.ranked().size());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(clean_corpus().size()));
}
BENCHMARK(BM_DegreesCompute);

void BM_CliqueInference(benchmark::State& state) {
  const auto degrees = core::Degrees::compute(clean_corpus());
  for (auto _ : state) {
    auto clique = core::infer_clique(clean_corpus(), degrees, core::CliqueConfig{});
    benchmark::DoNotOptimize(clique.size());
  }
}
BENCHMARK(BM_CliqueInference);

void BM_FullInference(benchmark::State& state) {
  core::InferenceConfig config;
  config.sanitizer.ixp_asns.insert(truth().ixp_asns.begin(), truth().ixp_asns.end());
  const core::AsRankInference inference(config);
  for (auto _ : state) {
    auto result = inference.run(raw_corpus());
    benchmark::DoNotOptimize(result.graph.link_count());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(raw_corpus().size()));
}
BENCHMARK(BM_FullInference);

const core::InferenceResult& inference_result() {
  static const auto result = [] {
    core::InferenceConfig config;
    config.sanitizer.ixp_asns.insert(truth().ixp_asns.begin(), truth().ixp_asns.end());
    return core::AsRankInference(config).run(raw_corpus());
  }();
  return result;
}

void BM_RecursiveCone(benchmark::State& state) {
  for (auto _ : state) {
    auto cones = core::recursive_cone(inference_result().graph);
    benchmark::DoNotOptimize(cones.size());
  }
}
BENCHMARK(BM_RecursiveCone);

void BM_PpdcCone(benchmark::State& state) {
  for (auto _ : state) {
    auto cones = core::provider_peer_observed_cone(inference_result().graph,
                                                   inference_result().sanitized);
    benchmark::DoNotOptimize(cones.size());
  }
}
BENCHMARK(BM_PpdcCone);

void BM_MrtEncode(benchmark::State& state) {
  const auto dump = bgpsim::to_rib_dump(observation());
  for (auto _ : state) {
    std::ostringstream stream;
    mrt::write_table_dump_v2(dump, stream);
    benchmark::DoNotOptimize(stream.tellp());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(dump.rib.size()));
}
BENCHMARK(BM_MrtEncode);

void BM_MrtDecode(benchmark::State& state) {
  const auto dump = bgpsim::to_rib_dump(observation());
  std::ostringstream encoded;
  mrt::write_table_dump_v2(dump, encoded);
  const std::string bytes = encoded.str();
  for (auto _ : state) {
    std::istringstream stream(bytes);
    auto parsed = mrt::read_table_dump_v2(stream);
    benchmark::DoNotOptimize(parsed.rib.size());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(dump.rib.size()));
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(bytes.size()));
}
BENCHMARK(BM_MrtDecode);

}  // namespace

BENCHMARK_MAIN();
