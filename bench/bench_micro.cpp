// E11 — microbenchmarks (google-benchmark): throughput of each pipeline
// stage.  Not a paper artefact; establishes that the implementation scales
// to collector-sized corpora (RouteViews rv2 held ~466k prefixes in 2013).
#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <iterator>
#include <sstream>
#include <thread>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "baselines/tor_local_search.h"
#include "bgpsim/observation.h"
#include "core/asrank.h"
#include "core/cone_bitset.h"
#include "core/cones.h"
#include "core/degrees.h"
#include "mrt/table_dump_v2.h"
#include "paths/sanitizer.h"
#include "snapshot/snapshot.h"
#include "topogen/topogen.h"
#include "topology/interner.h"
#include "topology/topology_view.h"

namespace {

using namespace asrank;

const topogen::GroundTruth& truth() {
  static const auto t = topogen::generate(topogen::GenParams::preset("medium"));
  return t;
}

const bgpsim::Observation& observation() {
  static const auto obs = [] {
    bgpsim::ObservationParams params;
    params.full_vps = 20;
    params.partial_vps = 5;
    return bgpsim::observe(truth(), params);
  }();
  return obs;
}

const paths::PathCorpus& raw_corpus() {
  static const auto corpus = paths::PathCorpus::from_records(observation().routes);
  return corpus;
}

const paths::PathCorpus& clean_corpus() {
  static const auto corpus = [] {
    paths::SanitizerConfig config;
    config.ixp_asns.insert(truth().ixp_asns.begin(), truth().ixp_asns.end());
    return paths::sanitize(raw_corpus(), config).corpus;
  }();
  return corpus;
}

void BM_TopologyGenerate(benchmark::State& state) {
  auto params = topogen::GenParams::preset("small");
  for (auto _ : state) {
    auto generated = topogen::generate(params);
    benchmark::DoNotOptimize(generated.graph.link_count());
  }
}
BENCHMARK(BM_TopologyGenerate);

void BM_RouteSimPerDestination(benchmark::State& state) {
  const bgpsim::RouteSimulator simulator(truth().graph);
  const auto ases = simulator.ases();
  std::size_t i = 0;
  for (auto _ : state) {
    const auto table = simulator.routes_to(ases[i % ases.size()]);
    benchmark::DoNotOptimize(table.reachable_count());
    ++i;
  }
}
BENCHMARK(BM_RouteSimPerDestination);

void BM_Sanitize(benchmark::State& state) {
  paths::SanitizerConfig config;
  config.ixp_asns.insert(truth().ixp_asns.begin(), truth().ixp_asns.end());
  for (auto _ : state) {
    auto result = paths::sanitize(raw_corpus(), config);
    benchmark::DoNotOptimize(result.stats.output_records);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(raw_corpus().size()));
}
BENCHMARK(BM_Sanitize);

void BM_DegreesCompute(benchmark::State& state) {
  for (auto _ : state) {
    auto degrees = core::Degrees::compute(clean_corpus());
    benchmark::DoNotOptimize(degrees.ranked().size());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(clean_corpus().size()));
}
BENCHMARK(BM_DegreesCompute);

void BM_CliqueInference(benchmark::State& state) {
  const auto degrees = core::Degrees::compute(clean_corpus());
  for (auto _ : state) {
    auto clique = core::infer_clique(clean_corpus(), degrees, core::CliqueConfig{});
    benchmark::DoNotOptimize(clique.size());
  }
}
BENCHMARK(BM_CliqueInference);

void BM_FullInference(benchmark::State& state) {
  core::InferenceConfig config;
  config.sanitizer.ixp_asns.insert(truth().ixp_asns.begin(), truth().ixp_asns.end());
  const core::AsRankInference inference(config);
  for (auto _ : state) {
    auto result = inference.run(raw_corpus());
    benchmark::DoNotOptimize(result.graph.link_count());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(raw_corpus().size()));
}
BENCHMARK(BM_FullInference);

const core::InferenceResult& inference_result() {
  static const auto result = [] {
    core::InferenceConfig config;
    config.sanitizer.ixp_asns.insert(truth().ixp_asns.begin(), truth().ixp_asns.end());
    return core::AsRankInference(config).run(raw_corpus());
  }();
  return result;
}

void BM_RecursiveCone(benchmark::State& state) {
  for (auto _ : state) {
    auto cones = core::recursive_cone(inference_result().graph);
    benchmark::DoNotOptimize(cones.size());
  }
}
BENCHMARK(BM_RecursiveCone);

void BM_PpdcCone(benchmark::State& state) {
  for (auto _ : state) {
    auto cones = core::provider_peer_observed_cone(inference_result().graph,
                                                   inference_result().sanitized);
    benchmark::DoNotOptimize(cones.size());
  }
}
BENCHMARK(BM_PpdcCone);

void BM_MrtEncode(benchmark::State& state) {
  const auto dump = bgpsim::to_rib_dump(observation());
  for (auto _ : state) {
    std::ostringstream stream;
    mrt::write_table_dump_v2(dump, stream);
    benchmark::DoNotOptimize(stream.tellp());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(dump.rib.size()));
}
BENCHMARK(BM_MrtEncode);

void BM_MrtDecode(benchmark::State& state) {
  const auto dump = bgpsim::to_rib_dump(observation());
  std::ostringstream encoded;
  mrt::write_table_dump_v2(dump, encoded);
  const std::string bytes = encoded.str();
  for (auto _ : state) {
    std::istringstream stream(bytes);
    auto parsed = mrt::read_table_dump_v2(stream);
    benchmark::DoNotOptimize(parsed.rib.size());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(dump.rib.size()));
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(bytes.size()));
}
BENCHMARK(BM_MrtDecode);

// ---------------------------------------------------------------------------
// Dense-representation microbenches (TopologyView substrate)
// ---------------------------------------------------------------------------

const std::vector<Asn>& corpus_hops() {
  static const auto hops = [] {
    std::vector<Asn> all;
    for (const auto& record : clean_corpus().records()) {
      const auto path = record.path.hops();
      all.insert(all.end(), path.begin(), path.end());
    }
    return all;
  }();
  return hops;
}

void BM_InternerBuild(benchmark::State& state) {
  for (auto _ : state) {
    auto interner = topology::AsnInterner::from_asns(corpus_hops());
    benchmark::DoNotOptimize(interner.size());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(corpus_hops().size()));
}
BENCHMARK(BM_InternerBuild);

void BM_TopologyFreeze(benchmark::State& state) {
  for (auto _ : state) {
    auto view = inference_result().graph.freeze(inference_result().clique);
    benchmark::DoNotOptimize(view.link_count());
  }
}
BENCHMARK(BM_TopologyFreeze);

void BM_RecursiveConeDense(benchmark::State& state) {
  const auto view = inference_result().graph.freeze();
  for (auto _ : state) {
    auto cones = core::recursive_cone(view, 1);
    benchmark::DoNotOptimize(cones.size());
  }
}
BENCHMARK(BM_RecursiveConeDense);

// ----------------------------------------------- BENCH_topology_view.json --
// Before/after comparison of the dense CSR kernels against the hash-map
// implementations they replaced, written as a side artifact so the
// BENCH_*.json trajectory tracks the representation change across PRs.

/// The pre-refactor cone closure: memoized post-order DFS merging
/// unordered_sets keyed by ASN.
std::size_t hash_cone_closure(const AsGraph& graph) {
  std::unordered_map<Asn, std::unordered_set<Asn>> cones;
  cones.reserve(graph.ases().size());
  std::size_t total = 0;
  struct Frame {
    Asn node;
    std::size_t next = 0;
  };
  std::vector<Frame> stack;
  for (const Asn root : graph.ases()) {
    if (cones.contains(root)) {
      total += cones.at(root).size();
      continue;
    }
    stack.push_back({root});
    while (!stack.empty()) {
      Frame& top = stack.back();
      const auto customers = graph.customers(top.node);
      if (top.next < customers.size()) {
        const Asn child = customers[top.next++];
        if (!cones.contains(child)) stack.push_back({child});
        continue;
      }
      std::unordered_set<Asn> cone{top.node};
      for (const Asn child : customers) {
        const auto& sub = cones.at(child);
        cone.insert(sub.begin(), sub.end());
      }
      cones.emplace(top.node, std::move(cone));
      stack.pop_back();
    }
    total += cones.at(root).size();
  }
  return total;
}

/// Valley-free sweep on flat translated hop arrays with precomputed per-hop
/// RelView codes — the dense counterpart of the per-hop hash lookups in
/// TorLocalSearch::violations.
std::size_t dense_valley_sweep(std::span<const std::uint8_t> codes,
                               std::span<const std::size_t> offsets) {
  constexpr std::uint8_t kNoRel = 0xff;
  std::size_t violations = 0;
  for (std::size_t p = 0; p + 1 < offsets.size(); ++p) {
    int state = 0;
    bool ok = true;
    for (std::size_t i = offsets[p]; ok && i < offsets[p + 1]; ++i) {
      switch (codes[i]) {
        case static_cast<std::uint8_t>(RelView::kProvider):
          ok = state == 0;
          break;
        case static_cast<std::uint8_t>(RelView::kPeer):
          ok = state == 0;
          state = 1;
          break;
        case static_cast<std::uint8_t>(RelView::kCustomer):
          state = 1;
          break;
        case static_cast<std::uint8_t>(RelView::kSibling):
          break;
        case kNoRel:
        default:
          ok = false;
          break;
      }
    }
    if (!ok) ++violations;
  }
  return violations;
}

template <typename Fn>
double min_time_ms(int reps, Fn&& fn) {
  double best = 0.0;
  for (int rep = 0; rep < reps; ++rep) {
    const auto start = std::chrono::steady_clock::now();
    fn();
    const double elapsed = std::chrono::duration<double, std::milli>(
                               std::chrono::steady_clock::now() - start)
                               .count();
    if (rep == 0 || elapsed < best) best = elapsed;
  }
  return best;
}

void write_topology_view_json(const std::string& path) {
  constexpr int kReps = 3;
  constexpr int kSweeps = 8;  // fixpoint-style repeated evaluation
  constexpr std::uint8_t kNoRel = 0xff;

  const AsGraph& graph = inference_result().graph;
  const paths::PathCorpus& corpus = inference_result().sanitized;
  const auto view = graph.freeze();

  const double interner_ms = min_time_ms(kReps, [] {
    auto interner = topology::AsnInterner::from_asns(corpus_hops());
    benchmark::DoNotOptimize(interner.size());
  });
  const double freeze_ms = min_time_ms(kReps, [&graph] {
    auto frozen = graph.freeze();
    benchmark::DoNotOptimize(frozen.link_count());
  });

  const double cone_dense_ms = min_time_ms(kReps, [&view] {
    auto cones = core::recursive_cone(view, 1);
    benchmark::DoNotOptimize(cones.size());
  });
  const double cone_hash_ms = min_time_ms(kReps, [&graph] {
    benchmark::DoNotOptimize(hash_cone_closure(graph));
  });

  // Valley-free fixpoint shape: the hash path re-resolves every hop per
  // sweep; the dense path translates once, then sweeps flat arrays.
  const double valley_hash_ms = min_time_ms(kReps, [&] {
    std::size_t total = 0;
    for (int sweep = 0; sweep < kSweeps; ++sweep) {
      total += baselines::TorLocalSearch::violations(graph, corpus);
    }
    benchmark::DoNotOptimize(total);
  });
  const double valley_dense_ms = min_time_ms(kReps, [&] {
    std::vector<std::uint8_t> codes;
    std::vector<std::size_t> offsets{0};
    std::vector<topology::NodeId> ids;
    for (const auto& record : corpus.records()) {
      view.interner().translate(record.path.hops(), ids);
      for (std::size_t i = 1; i < ids.size(); ++i) {
        std::uint8_t code = kNoRel;
        if (ids[i - 1] != topology::kNoNode && ids[i] != topology::kNoNode) {
          if (const auto rel = view.relationship(ids[i - 1], ids[i])) {
            code = static_cast<std::uint8_t>(*rel);
          }
        }
        codes.push_back(code);
      }
      offsets.push_back(codes.size());
    }
    std::size_t total = 0;
    for (int sweep = 0; sweep < kSweeps; ++sweep) {
      total += dense_valley_sweep(codes, offsets);
    }
    benchmark::DoNotOptimize(total);
  });

  std::ofstream os(path);
  os << "{\n  \"bench\": \"topology_view\",\n";
  os << "  \"ases\": " << view.node_count() << ",\n";
  os << "  \"links\": " << view.link_count() << ",\n";
  os << "  \"corpus_paths\": " << corpus.size() << ",\n";
  os << "  \"interner_build_ms\": " << interner_ms << ",\n";
  os << "  \"csr_freeze_ms\": " << freeze_ms << ",\n";
  os << "  \"cone_closure\": {\"dense_ms\": " << cone_dense_ms
     << ", \"hash_ms\": " << cone_hash_ms << ", \"speedup\": "
     << (cone_dense_ms > 0.0 ? cone_hash_ms / cone_dense_ms : 0.0) << "},\n";
  os << "  \"valley_free_fixpoint\": {\"dense_ms\": " << valley_dense_ms
     << ", \"hash_ms\": " << valley_hash_ms << ", \"speedup\": "
     << (valley_dense_ms > 0.0 ? valley_hash_ms / valley_dense_ms : 0.0)
     << "}\n}\n";
  std::cout << "wrote " << path << "\n";
}

// ----------------------------------------------- BENCH_snapshot_mmap.json --
// Zero-copy load path and blocked-bitset cone kernels, measured against the
// representations they replace: heap parse vs mmap open on a large synthetic
// snapshot, and sorted-merge vs word-AND cone intersection on its biggest
// cones.  Written as a side artifact so the speedups are tracked across PRs.

/// A complete binary p2c tree: provider of AS i is AS i/2.  Acyclic by
/// construction, with provider cones spanning whole subtrees — so the top
/// of the hierarchy has the collector-scale cones (cone(1) = everything,
/// cone(2) and cone(3) ≈ n/2) that make both load validation and cone
/// intersection expensive, without paying a topogen+inference run at this
/// size.
AsGraph make_provider_tree(std::uint32_t ases) {
  AsGraph graph;
  for (std::uint32_t i = 2; i <= ases; ++i) graph.add_p2c(Asn(i / 2), Asn(i));
  return graph;
}

void write_snapshot_mmap_json(const std::string& path) {
  constexpr int kReps = 5;
  constexpr std::uint32_t kAses = 120000;

  const auto graph = make_provider_tree(kAses);
  const auto cones = core::recursive_cone(graph);
  std::size_t cone_members = 0;
  for (const auto& [as, members] : cones) cone_members += members.size();
  const std::unordered_map<Asn, std::size_t> no_tdeg;
  const auto index =
      snapshot::build_snapshot(graph, no_tdeg, cones, {Asn(1)});

  const std::string file = "bench_snapshot_mmap.tmp.asrk";
  snapshot::write_snapshot_file(index, file);
  std::size_t file_bytes = 0;
  {
    std::ifstream in(file, std::ios::binary | std::ios::ate);
    file_bytes = static_cast<std::size_t>(in.tellg());
  }

  // Open latency: fully re-validating heap parse vs zero-copy mmap.  Both
  // loaders end in a ready-to-query index; min over reps discards cold
  // page-cache effects for the comparison both paths share.
  const double heap_open_ms = min_time_ms(kReps, [&file] {
    auto loaded = snapshot::try_read_snapshot_file(file);
    benchmark::DoNotOptimize(loaded.value().as_count());
  });
  const double mmap_open_ms = min_time_ms(kReps, [&file] {
    auto mapped = snapshot::try_map_snapshot_file(file);
    benchmark::DoNotOptimize(mapped.value().as_count());
  });

  // Cone intersection: sorted-merge kernel vs bitset AND+popcount, over all
  // pairs of the largest cones (the subtree roots near the top of the
  // hierarchy — exactly the pairs a serving workload hits hardest).
  auto mapped = snapshot::try_map_snapshot_file(file).value();
  const core::ConeBitset bits(mapped.ases(), mapped.cone_offsets(),
                              mapped.cone_members(), {1024});
  std::vector<std::uint32_t> top_ids;
  for (std::uint32_t asn = 1; asn <= 9 && asn <= kAses; ++asn) {
    top_ids.push_back(*mapped.node_id(Asn(asn)));
  }
  const double sorted_intersect_ms = min_time_ms(kReps, [&] {
    std::size_t total = 0;
    std::vector<Asn> out;
    for (const auto a : top_ids) {
      const auto cone_a = mapped.cone(mapped.asn_at(a));
      for (const auto b : top_ids) {
        const auto cone_b = mapped.cone(mapped.asn_at(b));
        out.clear();
        std::set_intersection(cone_a.begin(), cone_a.end(), cone_b.begin(),
                              cone_b.end(), std::back_inserter(out));
        total += out.size();
      }
    }
    benchmark::DoNotOptimize(total);
  });
  const double bitset_intersect_ms = min_time_ms(kReps, [&] {
    std::size_t total = 0;
    for (const auto a : top_ids) {
      for (const auto b : top_ids) {
        total += bits.intersect_ids(a, b).size();
      }
    }
    benchmark::DoNotOptimize(total);
  });
  std::remove(file.c_str());

  std::ofstream os(path);
  os << "{\n  \"bench\": \"snapshot_mmap\",\n";
  os << "  \"hardware_threads\": " << std::thread::hardware_concurrency()
     << ",\n";
  os << "  \"ases\": " << mapped.as_count() << ",\n";
  os << "  \"links\": " << mapped.link_count() << ",\n";
  os << "  \"cone_members\": " << cone_members << ",\n";
  os << "  \"file_bytes\": " << file_bytes << ",\n";
  os << "  \"open\": {\"heap_ms\": " << heap_open_ms
     << ", \"mmap_ms\": " << mmap_open_ms << ", \"speedup\": "
     << (mmap_open_ms > 0.0 ? heap_open_ms / mmap_open_ms : 0.0) << "},\n";
  os << "  \"cone_intersect\": {\"sorted_ms\": " << sorted_intersect_ms
     << ", \"bitset_ms\": " << bitset_intersect_ms << ", \"bitset_rows\": "
     << bits.row_count() << ", \"bitset_bytes\": " << bits.memory_bytes()
     << ", \"speedup\": "
     << (bitset_intersect_ms > 0.0 ? sorted_intersect_ms / bitset_intersect_ms
                                   : 0.0)
     << "}\n}\n";
  std::cout << "wrote " << path << "\n";
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  write_topology_view_json("BENCH_topology_view.json");
  write_snapshot_mmap_json("BENCH_snapshot_mmap.json");
  return 0;
}
