// E3 — paper Table 3 analogue: PPV of ASRank inferences per validation
// source and relationship type.  The paper's headline numbers are 99.6%
// (c2p) and 98.7% (p2p) over the assembled corpus; the simulator substrate
// additionally allows exact scoring against full ground truth.
#include "bench_common.h"

#include "validation/synthesize.h"

int main(int argc, char** argv) {
  using namespace asrank;
  const auto options = bench::parse_options(argc, argv);
  bench::header("E3 PPV of ASRank inferences (paper Table 3)", options);
  bench::paper_shape(
      "c2p PPV ~99.6% and p2p PPV ~98.7% against the validation corpus; the "
      "corpus-based estimate tracks the exact ground-truth PPV closely");

  const auto world = bench::make_world(options);
  const auto synth = validation::synthesize_validation(world.truth, world.observation,
                                                       validation::SynthesisParams{});
  const auto ppv = validation::evaluate_ppv(world.result.graph, synth.corpus);

  util::TableWriter table({"source", "c2p PPV", "c2p n", "p2p PPV", "p2p n"});
  auto row = [&](validation::Source source) {
    const auto& c2p = ppv.cells[static_cast<std::size_t>(source)][0];
    const auto& p2p = ppv.cells[static_cast<std::size_t>(source)][1];
    table.add_row({std::string(to_string(source)), util::fmt_pct(c2p.ppv()),
                   util::fmt_count(c2p.validated), util::fmt_pct(p2p.ppv()),
                   util::fmt_count(p2p.validated)});
  };
  row(validation::Source::kDirectReport);
  row(validation::Source::kCommunities);
  row(validation::Source::kRpsl);
  table.add_row({"all sources", util::fmt_pct(ppv.c2p.ppv()), util::fmt_count(ppv.c2p.validated),
                 util::fmt_pct(ppv.p2p.ppv()), util::fmt_count(ppv.p2p.validated)});

  const auto truth = validation::evaluate_against_truth(world.result.graph, world.truth.graph);
  table.add_row({"exact ground truth", util::fmt_pct(truth.c2p.ppv()),
                 util::fmt_count(truth.c2p.validated), util::fmt_pct(truth.p2p.ppv()),
                 util::fmt_count(truth.p2p.validated)});
  table.render(std::cout);

  std::cout << "paper reference: c2p 99.6%, p2p 98.7% (IMC 2013 corpus)\n";
  std::cout << "direction flips among c2p errors: " << truth.direction_errors << "\n";
  std::cout << "sibling links excluded from scoring: " << truth.s2s_links << "\n";
  return 0;
}
