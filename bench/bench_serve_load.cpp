// Serving-runtime load comparison: drives asrankd's two runtimes
// (RuntimeMode::kTask vs the thread-per-worker kBlocking baseline) with the
// same socket workload — many concurrent keep-alive connections, each
// cycling connect → k binary CONE_SIZE requests → close — and records
// per-request latency percentiles and throughput into BENCH_serve_load.json.
// Not a paper artefact: this is the engineering harness for the task runtime
// (src/runtime + src/serve/server.cpp); the BENCH trajectory tracks serving
// tail latency across PRs.
//
//     bench_serve_load [connections] [duration_ms] [json_out] [total_ases]
//
// Defaults: 1000 2000 BENCH_serve_load.json 5000
//
// The load generator is single-threaded and non-blocking on purpose — it
// reuses runtime::Reactor, so thousands of in-flight connections cost one
// generator thread and the measured process is the server, not the bench.
// Request latency is stamped from connect() initiation for a connection's
// first request (admission/adoption wait is part of serving latency) and
// from just before the write for subsequent requests on the same
// connection. Connections the server never got to within the window are
// reported as `unanswered` rather than silently dropped from the stats.
//
// Exits non-zero if the task runtime loses to the blocking baseline on p99
// — enforced only with >= 2 hardware threads AND >= 512 connections (on a
// single core the reactor has no parallelism to win with; the JSON records
// whether the gate was enforced).
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/resource.h>
#include <sys/socket.h>

#include <arpa/inet.h>
#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <memory>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "core/cones.h"
#include "obs/metrics.h"
#include "runtime/reactor.h"
#include "serve/protocol.h"
#include "serve/server.h"
#include "serve/snapshot_registry.h"
#include "snapshot/snapshot.h"
#include "topogen/topogen.h"

namespace {

using namespace asrank;
using Clock = std::chrono::steady_clock;

constexpr int kRequestsPerConnection = 8;

double to_micros(Clock::duration d) {
  return std::chrono::duration<double, std::micro>(d).count();
}

/// One binary CONE_SIZE frame, ready to write: marker + u32 LE len + payload.
std::vector<std::uint8_t> cone_size_frame(Asn as) {
  serve::WireWriter writer;
  writer.u8(static_cast<std::uint8_t>(serve::Op::kConeSize));
  writer.u32(as.value());
  const auto payload = writer.take();
  std::vector<std::uint8_t> frame;
  frame.reserve(5 + payload.size());
  frame.push_back(serve::kBinaryMarker);
  const auto len = static_cast<std::uint32_t>(payload.size());
  frame.push_back(static_cast<std::uint8_t>(len & 0xFF));
  frame.push_back(static_cast<std::uint8_t>((len >> 8) & 0xFF));
  frame.push_back(static_cast<std::uint8_t>((len >> 16) & 0xFF));
  frame.push_back(static_cast<std::uint8_t>((len >> 24) & 0xFF));
  frame.insert(frame.end(), payload.begin(), payload.end());
  return frame;
}

struct LoadStats {
  std::vector<double> latencies_us;  ///< one sample per completed exchange
  std::uint64_t responses = 0;
  std::uint64_t connects = 0;
  std::uint64_t errors = 0;
  std::uint64_t unanswered = 0;  ///< requests in flight when the window closed
};

/// A virtual client: non-blocking connect, then a closed loop of
/// kRequestsPerConnection request/response exchanges, then reconnect.
class LoadConn final : public runtime::IoHandler {
 public:
  LoadConn(runtime::Reactor& reactor, std::uint16_t port,
           const std::vector<std::vector<std::uint8_t>>& frames,
           std::size_t frame_seed, LoadStats& stats, const Clock::time_point& deadline)
      : reactor_(reactor),
        port_(port),
        frames_(frames),
        next_frame_(frame_seed % frames.size()),
        stats_(stats),
        deadline_(deadline) {}

  ~LoadConn() { teardown(/*count_inflight=*/false); }

  void start() { connect(); }

  /// Close out at the end of the measurement window; an exchange that never
  /// completed is tallied as unanswered, not as a latency sample.
  void finish() { teardown(/*count_inflight=*/true); }

  void on_io(std::uint32_t events) override {
    if (fd_ < 0) return;
    if (state_ == State::kConnecting && (events & runtime::Reactor::kWrite) != 0) {
      int err = 0;
      socklen_t len = sizeof err;
      ::getsockopt(fd_, SOL_SOCKET, SO_ERROR, &err, &len);
      if (err != 0) {
        fail();
        return;
      }
      ++stats_.connects;
      state_ = State::kSending;
      reactor_.modify(fd_, runtime::Reactor::kRead);
      begin_request(/*first_on_connection=*/true);
      return;
    }
    if (state_ == State::kSending && (events & runtime::Reactor::kWrite) != 0) {
      pump_write();
    }
    if (state_ == State::kReceiving && (events & runtime::Reactor::kRead) != 0) {
      pump_read();
    }
  }

 private:
  enum class State { kIdle, kConnecting, kSending, kReceiving };

  void connect() {
    fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK, 0);
    if (fd_ < 0) {
      ++stats_.errors;
      return;
    }
    int one = 1;
    ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port_);
    ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    // First-request latency includes connect + admission + adoption: the
    // queue wait a real client would feel is part of serving latency.
    t0_ = Clock::now();
    const int rc = ::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr);
    if (rc != 0 && errno != EINPROGRESS) {
      fail();
      return;
    }
    state_ = State::kConnecting;
    requests_done_ = 0;
    if (!reactor_.add(fd_, runtime::Reactor::kWrite, this)) fail();
  }

  void begin_request(bool first_on_connection) {
    if (!first_on_connection) t0_ = Clock::now();
    wbuf_ = &frames_[next_frame_];
    next_frame_ = (next_frame_ + 1) % frames_.size();
    wpos_ = 0;
    rbuf_.clear();
    state_ = State::kSending;
    inflight_ = true;
    pump_write();
  }

  void pump_write() {
    while (wpos_ < wbuf_->size()) {
      const ssize_t n =
          ::write(fd_, wbuf_->data() + wpos_, wbuf_->size() - wpos_);
      if (n > 0) {
        wpos_ += static_cast<std::size_t>(n);
        continue;
      }
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
        reactor_.modify(fd_, runtime::Reactor::kRead | runtime::Reactor::kWrite);
        return;
      }
      fail();
      return;
    }
    state_ = State::kReceiving;
    reactor_.modify(fd_, runtime::Reactor::kRead);
    pump_read();  // the response may already be readable
  }

  void pump_read() {
    char buf[4096];
    while (true) {
      const ssize_t n = ::read(fd_, buf, sizeof buf);
      if (n > 0) {
        rbuf_.insert(rbuf_.end(), buf, buf + n);
        continue;
      }
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
      fail();  // EOF or error mid-response
      return;
    }
    if (rbuf_.size() < 5) return;
    const std::uint32_t len = static_cast<std::uint32_t>(rbuf_[1]) |
                              (static_cast<std::uint32_t>(rbuf_[2]) << 8) |
                              (static_cast<std::uint32_t>(rbuf_[3]) << 16) |
                              (static_cast<std::uint32_t>(rbuf_[4]) << 24);
    if (rbuf_.size() < 5u + len) return;

    inflight_ = false;
    ++stats_.responses;
    stats_.latencies_us.push_back(to_micros(Clock::now() - t0_));
    ++requests_done_;

    if (Clock::now() >= deadline_) {
      teardown(/*count_inflight=*/false);
      return;
    }
    if (requests_done_ >= kRequestsPerConnection) {
      // Cycle the connection so the blocking baseline's per-connection
      // workers hand their slot to the next queued client.
      teardown(/*count_inflight=*/false);
      connect();
      return;
    }
    begin_request(/*first_on_connection=*/false);
  }

  void fail() {
    ++stats_.errors;
    teardown(/*count_inflight=*/false);
  }

  void teardown(bool count_inflight) {
    if (count_inflight && (inflight_ || state_ == State::kConnecting)) {
      ++stats_.unanswered;
    }
    inflight_ = false;
    if (fd_ >= 0) {
      reactor_.remove(fd_);
      ::close(fd_);
      fd_ = -1;
    }
    state_ = State::kIdle;
  }

  runtime::Reactor& reactor_;
  std::uint16_t port_;
  const std::vector<std::vector<std::uint8_t>>& frames_;
  std::size_t next_frame_;
  LoadStats& stats_;
  const Clock::time_point& deadline_;

  int fd_ = -1;
  State state_ = State::kIdle;
  const std::vector<std::uint8_t>* wbuf_ = nullptr;
  std::size_t wpos_ = 0;
  std::vector<std::uint8_t> rbuf_;
  Clock::time_point t0_{};
  int requests_done_ = 0;
  bool inflight_ = false;
};

double percentile(std::vector<double>& sorted, double p) {
  if (sorted.empty()) return 0.0;
  const auto idx = static_cast<std::size_t>(p * (sorted.size() - 1));
  return sorted[idx];
}

struct ModeResult {
  LoadStats stats;
  double seconds = 0.0;
  double p50 = 0.0, p99 = 0.0, p999 = 0.0;
  [[nodiscard]] double qps() const {
    return seconds > 0.0 ? stats.responses / seconds : 0.0;
  }
};

ModeResult run_mode(serve::SnapshotRegistry& snapshots, serve::RuntimeMode mode,
                    std::size_t connections, int duration_ms,
                    const std::vector<std::vector<std::uint8_t>>& frames) {
  serve::ServerConfig config;
  config.port = 0;  // ephemeral
  config.threads = 0;  // hardware concurrency
  config.backlog = static_cast<int>(std::max<std::size_t>(connections, 256));
  config.idle_timeout_ms = 60000;
  config.query_deadline_ms = 30000;
  config.max_connections = 0;  // the bench controls concurrency, not shedding
  config.runtime = mode;
  serve::Server server(snapshots, config);
  std::thread server_thread([&server] { server.run(); });

  runtime::Reactor reactor;
  LoadStats stats;
  stats.latencies_us.reserve(connections * 64);
  Clock::time_point deadline = Clock::now() + std::chrono::milliseconds(duration_ms);

  std::vector<std::unique_ptr<LoadConn>> conns;
  conns.reserve(connections);
  const auto start = Clock::now();
  deadline = start + std::chrono::milliseconds(duration_ms);
  for (std::size_t i = 0; i < connections; ++i) {
    conns.push_back(std::make_unique<LoadConn>(reactor, server.port(), frames, i,
                                               stats, deadline));
    conns.back()->start();
    // Interleave connect bursts with event processing so the SYN flood
    // cannot outrun the accept loop.
    if (i % 64 == 63) reactor.poll_once(0);
  }
  while (Clock::now() < deadline) {
    const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
                          deadline - Clock::now())
                          .count();
    reactor.poll_once(static_cast<int>(std::clamp<long long>(left, 1, 50)));
  }
  for (auto& conn : conns) conn->finish();
  const auto elapsed = std::chrono::duration<double>(Clock::now() - start);

  server.stop();
  server_thread.join();

  ModeResult result;
  result.stats = std::move(stats);
  result.seconds = elapsed.count();
  std::sort(result.stats.latencies_us.begin(), result.stats.latencies_us.end());
  result.p50 = percentile(result.stats.latencies_us, 0.50);
  result.p99 = percentile(result.stats.latencies_us, 0.99);
  result.p999 = percentile(result.stats.latencies_us, 0.999);
  return result;
}

void emit_mode(std::ostream& os, const std::string& name, const ModeResult& r,
               bool& first) {
  if (!first) os << ",\n";
  first = false;
  os << "    \"" << name << "\": {\"responses\": " << r.stats.responses
     << ", \"connects\": " << r.stats.connects
     << ", \"errors\": " << r.stats.errors
     << ", \"unanswered\": " << r.stats.unanswered
     << ", \"qps\": " << static_cast<std::uint64_t>(r.qps())
     << ", \"p50_us\": " << r.p50 << ", \"p99_us\": " << r.p99
     << ", \"p999_us\": " << r.p999 << "}";
}

}  // namespace

int main(int argc, char** argv) {
  std::size_t connections = 1000;
  int duration_ms = 2000;
  std::string json_out = "BENCH_serve_load.json";
  std::size_t total_ases = 5000;
  if (argc > 1) connections = std::strtoull(argv[1], nullptr, 10);
  if (argc > 2) duration_ms = static_cast<int>(std::strtol(argv[2], nullptr, 10));
  if (argc > 3) json_out = argv[3];
  if (argc > 4) total_ases = std::strtoull(argv[4], nullptr, 10);

  // Thousands of sockets (bench side + server side) live in this process.
  rlimit nofile{};
  if (::getrlimit(RLIMIT_NOFILE, &nofile) == 0 && nofile.rlim_cur < nofile.rlim_max) {
    nofile.rlim_cur = nofile.rlim_max;
    ::setrlimit(RLIMIT_NOFILE, &nofile);
  }

  const unsigned hardware_threads = std::max(1u, std::thread::hardware_concurrency());

  auto params = topogen::GenParams::preset("medium");
  params.total_ases = total_ases;
  params.seed = 42;
  const auto truth = topogen::generate(params);
  const auto& graph = truth.graph;
  std::unordered_map<Asn, std::size_t> tdeg;
  for (const Asn as : graph.ases()) tdeg[as] = graph.customers(as).size();
  auto index =
      snapshot::build_snapshot(graph, tdeg, core::recursive_cone(graph),
                               graph.provider_free_ases());
  const std::vector<Asn> all(index.ases().begin(), index.ases().end());

  obs::Registry metrics;
  serve::SnapshotRegistry snapshots({}, &metrics);
  if (!snapshots.install("bench", std::move(index)).ok()) {
    std::cerr << "FAIL: snapshot install failed\n";
    return 1;
  }

  // A deterministic pool of prebuilt request frames the connections rotate
  // through (uniform ASes — CONE_SIZE is a direct index lookup, so the bench
  // measures the runtime, not the query).
  std::mt19937_64 rng(42);
  std::vector<std::vector<std::uint8_t>> frames;
  frames.reserve(1024);
  for (int i = 0; i < 1024; ++i) {
    frames.push_back(cone_size_frame(all[rng() % all.size()]));
  }

  std::cout << "== serve load (" << connections << " connections, " << duration_ms
            << " ms per mode, " << graph.as_count() << " ASes, "
            << hardware_threads << " hardware threads) ==\n";

  const auto blocking =
      run_mode(snapshots, serve::RuntimeMode::kBlocking, connections, duration_ms, frames);
  std::cout << "blocking: " << blocking.stats.responses << " responses, "
            << static_cast<std::uint64_t>(blocking.qps()) << " qps, p50 "
            << blocking.p50 << " us, p99 " << blocking.p99 << " us, p999 "
            << blocking.p999 << " us (" << blocking.stats.unanswered
            << " unanswered)\n";

  const auto task =
      run_mode(snapshots, serve::RuntimeMode::kTask, connections, duration_ms, frames);
  std::cout << "task:     " << task.stats.responses << " responses, "
            << static_cast<std::uint64_t>(task.qps()) << " qps, p50 " << task.p50
            << " us, p99 " << task.p99 << " us, p999 " << task.p999 << " us ("
            << task.stats.unanswered << " unanswered)\n";

  const bool gate_enforced = hardware_threads >= 2 && connections >= 512;
  std::string gate = gate_enforced ? "enforced"
                     : hardware_threads < 2
                         ? "skipped (single hardware thread)"
                         : "skipped (low concurrency)";

  std::ofstream json(json_out);
  json << "{\n  \"bench\": \"serve_load\",\n";
  json << "  \"hardware_threads\": " << hardware_threads << ",\n";
  json << "  \"connections\": " << connections << ",\n";
  json << "  \"requests_per_connection\": " << kRequestsPerConnection << ",\n";
  json << "  \"duration_ms\": " << duration_ms << ",\n";
  json << "  \"ases\": " << graph.as_count() << ",\n";
  json << "  \"p99_gate\": \"" << gate << "\",\n";
  json << "  \"modes\": {\n";
  bool first = true;
  emit_mode(json, "blocking", blocking, first);
  emit_mode(json, "task", task, first);
  json << "\n  }\n}\n";
  std::cout << "wrote " << json_out << "\n";

  if (blocking.stats.responses == 0 || task.stats.responses == 0) {
    std::cerr << "FAIL: a runtime served zero responses\n";
    return 1;
  }
  if (gate_enforced && task.p99 > blocking.p99) {
    std::cerr << "FAIL: task runtime p99 (" << task.p99
              << " us) worse than blocking baseline (" << blocking.p99 << " us)\n";
    return 1;
  }
  std::cout << "p99 gate: " << gate << "\n";
  return 0;
}
