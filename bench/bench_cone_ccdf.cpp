// E7 — paper §5 figure analogue: CCDF of customer-cone sizes under the
// three cone definitions.  The paper finds heavy-tailed cone sizes with the
// recursive cone over-counting relative to the provider/peer observed cone,
// and the directly-observed cone smallest.
#include "bench_common.h"

#include "core/cones.h"
#include "util/stats.h"

int main(int argc, char** argv) {
  using namespace asrank;
  const auto options = bench::parse_options(argc, argv);
  bench::header("E7 customer-cone size CCDF, three definitions (paper Fig. 5-style)",
                options);
  bench::paper_shape(
      "cone sizes are heavy-tailed; recursive >= provider/peer observed >= "
      "BGP observed in total mass; the three curves converge at the tail "
      "(the largest transit providers)");

  const auto world = bench::make_world(options);
  const auto recursive = core::recursive_cone(world.result.graph);
  const auto ppdc =
      core::provider_peer_observed_cone(world.result.graph, world.result.sanitized);
  const auto observed = core::bgp_observed_cone(world.result.graph, world.result.sanitized);

  auto sizes = [](const ConeMap& cones) {
    std::vector<double> out;
    out.reserve(cones.size());
    for (const auto& [as, members] : cones) out.push_back(static_cast<double>(members.size()));
    return out;
  };
  const auto recursive_sizes = sizes(recursive);
  const auto ppdc_sizes = sizes(ppdc);
  const auto observed_sizes = sizes(observed);

  // CCDF sampled at round cone sizes.
  util::TableWriter table({"cone size >=", "recursive", "ppdc", "bgp-observed"});
  auto fraction_at = [](const std::vector<util::CcdfPoint>& ccdf, double x) {
    double fraction = 0.0;
    for (const auto& point : ccdf) {
      if (point.value >= x) {
        fraction = point.fraction;
        break;
      }
    }
    return fraction;
  };
  const auto r = util::ccdf(recursive_sizes);
  const auto p = util::ccdf(ppdc_sizes);
  const auto o = util::ccdf(observed_sizes);
  for (const double x : {1.0, 2.0, 5.0, 10.0, 20.0, 50.0, 100.0, 200.0, 500.0}) {
    table.add_row({util::fmt(x, 0), util::fmt(fraction_at(r, x), 4),
                   util::fmt(fraction_at(p, x), 4), util::fmt(fraction_at(o, x), 4)});
  }
  table.render(std::cout);

  auto total = [](const std::vector<double>& v) {
    double sum = 0;
    for (double x : v) sum += x;
    return sum;
  };
  std::cout << "total cone mass: recursive " << util::fmt(total(recursive_sizes), 0)
            << ", ppdc " << util::fmt(total(ppdc_sizes), 0) << ", bgp-observed "
            << util::fmt(total(observed_sizes), 0) << "\n";
  const auto summary = util::summarize(recursive_sizes);
  std::cout << "recursive cone sizes: median " << util::fmt(summary.median, 1) << ", p90 "
            << util::fmt(summary.p90, 1) << ", max " << util::fmt(summary.max, 0)
            << " (heavy tail)\n";
  return 0;
}
