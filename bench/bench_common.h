// Shared setup for the experiment harness binaries (see DESIGN.md §5).
//
// Every bench binary accepts the same optional positional arguments:
//     <binary> [preset] [seed]
// and prints a `# paper-shape:` annotation stating the qualitative claim
// from the paper it reproduces, followed by the table/series itself.
#pragma once

#include <cstdlib>
#include <iostream>
#include <string>

#include "bgpsim/observation.h"
#include "core/asrank.h"
#include "paths/corpus.h"
#include "topogen/topogen.h"
#include "util/table.h"
#include "validation/ppv.h"

namespace asrank::bench {

struct Options {
  std::string preset = "medium";
  std::uint64_t seed = 42;
  std::size_t full_vps = 30;
  std::size_t partial_vps = 10;
};

inline Options parse_options(int argc, char** argv) {
  Options options;
  if (argc > 1) options.preset = argv[1];
  if (argc > 2) options.seed = std::strtoull(argv[2], nullptr, 10);
  return options;
}

struct World {
  topogen::GroundTruth truth;
  bgpsim::Observation observation;
  core::InferenceResult result;
};

inline core::InferenceConfig config_for(const topogen::GroundTruth& truth) {
  core::InferenceConfig config;
  config.sanitizer.ixp_asns.insert(truth.ixp_asns.begin(), truth.ixp_asns.end());
  return config;
}

inline World make_world(const Options& options) {
  auto gen = topogen::GenParams::preset(options.preset);
  gen.seed = options.seed;
  World world{topogen::generate(gen), {}, {}};
  bgpsim::ObservationParams obs;
  obs.seed = options.seed + 1;
  obs.full_vps = options.full_vps;
  obs.partial_vps = options.partial_vps;
  obs.threads = 0;  // identical results at any thread count (per-dest RNG)
  world.observation = bgpsim::observe(world.truth, obs);
  world.result = core::AsRankInference(config_for(world.truth))
                     .run(paths::PathCorpus::from_records(world.observation.routes));
  return world;
}

inline void paper_shape(const std::string& claim) {
  std::cout << "# paper-shape: " << claim << "\n";
}

inline void header(const std::string& experiment, const Options& options) {
  std::cout << "== " << experiment << " (preset " << options.preset << ", seed "
            << options.seed << ") ==\n";
}

}  // namespace asrank::bench
