// Serving-layer throughput: lookups/sec per query type against a frozen
// snapshot, with the derived (LRU-cached) queries measured cold vs warm.
// Not a paper artefact — this is the engineering harness for src/snapshot +
// src/serve: it freezes a topogen graph into an ASRK1 snapshot, drives a
// QueryEngine with a deterministic query mix, verifies a sample of answers
// against the direct graph computation, and emits machine-readable JSON so
// the BENCH_*.json trajectory tracks serving performance across PRs.
//
//     bench_query_serving [total_ases] [seed] [json_out]
//
// Defaults: 20000 42 BENCH_query_serving.json
// Exits non-zero if the LRU-warm derived queries are not at least 10x
// faster than cold (the serving layer's headline contract).
#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <map>
#include <utility>
#include <fstream>
#include <functional>
#include <iostream>
#include <random>
#include <sstream>
#include <string>
#include <vector>

#include "core/cones.h"
#include "obs/metrics.h"
#include "serve/query_engine.h"
#include "snapshot/snapshot.h"
#include "topogen/topogen.h"

namespace {

using namespace asrank;

struct Throughput {
  std::size_t ops = 0;
  double seconds = 0.0;
  [[nodiscard]] double per_sec() const { return seconds > 0.0 ? ops / seconds : 0.0; }
};

Throughput measure(std::size_t ops, const std::function<void(std::size_t)>& op) {
  const auto start = std::chrono::steady_clock::now();
  for (std::size_t i = 0; i < ops; ++i) op(i);
  const auto elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start);
  return {ops, elapsed.count()};
}

void emit(std::ostream& os, const std::string& name, const Throughput& t,
          bool& first) {
  if (!first) os << ",\n";
  first = false;
  os << "    \"" << name << "\": {\"ops\": " << t.ops
     << ", \"lookups_per_sec\": " << static_cast<std::uint64_t>(t.per_sec()) << "}";
}

}  // namespace

int main(int argc, char** argv) {
  std::size_t total_ases = 20000;
  std::uint64_t seed = 42;
  std::string json_out = "BENCH_query_serving.json";
  if (argc > 1) total_ases = std::strtoull(argv[1], nullptr, 10);
  if (argc > 2) seed = std::strtoull(argv[2], nullptr, 10);
  if (argc > 3) json_out = argv[3];

  auto params = topogen::GenParams::preset("large");
  params.total_ases = total_ases;
  params.seed = seed;
  const auto truth = topogen::generate(params);
  const auto& graph = truth.graph;

  std::unordered_map<Asn, std::size_t> tdeg;
  for (const Asn as : graph.ases()) tdeg[as] = graph.customers(as).size();
  const auto cones = core::recursive_cone(graph);
  const auto clique = graph.provider_free_ases();

  // Freeze, serialize, and reload — timing the snapshot lifecycle too.
  const auto t0 = std::chrono::steady_clock::now();
  const auto built = snapshot::build_snapshot(graph, tdeg, cones, clique);
  const auto t1 = std::chrono::steady_clock::now();
  std::stringstream bytes(std::ios::in | std::ios::out | std::ios::binary);
  snapshot::write_snapshot(built, bytes);
  const auto t2 = std::chrono::steady_clock::now();
  const std::size_t snapshot_bytes = bytes.str().size();
  auto index = snapshot::read_snapshot(bytes);
  const auto t3 = std::chrono::steady_clock::now();
  const auto ms = [](auto a, auto b) {
    return std::chrono::duration<double, std::milli>(b - a).count();
  };

  std::cout << "== query serving (" << graph.as_count() << " ASes, "
            << graph.link_count() << " links, seed " << seed << ") ==\n";
  std::cout << "snapshot: build " << ms(t0, t1) << " ms, write " << ms(t1, t2)
            << " ms (" << snapshot_bytes << " bytes), load+validate "
            << ms(t2, t3) << " ms\n";

  // Deterministic query mix: uniform ASes plus link endpoints for the
  // relationship lookups, heavy (large-cone) ASes for the derived queries.
  std::mt19937_64 rng(seed);
  const std::vector<Asn> all(index.ases().begin(), index.ases().end());
  const auto links = graph.links();
  std::vector<Asn> heavy;
  for (const auto& entry : index.top(64)) heavy.push_back(entry.as);

  // Spot-check correctness before trusting the numbers.
  for (std::size_t i = 0; i < 1000; ++i) {
    const auto& link = links[rng() % links.size()];
    if (index.relationship(link.a, link.b) != graph.view(link.a, link.b)) {
      std::cerr << "FAIL: snapshot disagrees with graph on " << link.a.str()
                << "|" << link.b.str() << "\n";
      return 1;
    }
  }

  // A bench-local registry keeps the measured engine's metric series out of
  // the process-global registry (and vice versa).
  obs::Registry registry;
  serve::QueryEngine engine(std::move(index), /*cache_capacity=*/4096, &registry);
  const std::size_t n_direct = 200000;

  std::map<std::string, Throughput> direct;
  direct["relationship"] = measure(n_direct, [&](std::size_t i) {
    const auto& link = links[(i * 2654435761u) % links.size()];
    (void)engine.relationship(link.a, link.b);
  });
  direct["rank"] = measure(n_direct, [&](std::size_t i) {
    (void)engine.rank(all[(i * 2654435761u) % all.size()]);
  });
  direct["cone_size"] = measure(n_direct, [&](std::size_t i) {
    (void)engine.cone_size(all[(i * 2654435761u) % all.size()]);
  });
  direct["in_cone"] = measure(n_direct, [&](std::size_t i) {
    (void)engine.in_cone(heavy[i % heavy.size()], all[(i * 40503u) % all.size()]);
  });
  direct["neighbor_set"] = measure(n_direct / 4, [&](std::size_t i) {
    (void)engine.providers(all[(i * 2654435761u) % all.size()]);
  });

  // Derived queries: cold = always-new operands (every call computes),
  // warm = a small hot set that stays resident in the LRU.  Operands are the
  // expensive, representative cases — intersections of large cones and
  // clique paths from multihomed ASes (the queries worth caching at all).
  const std::size_t n_derived = 2000;
  std::vector<std::pair<Asn, Asn>> heavy_pairs;
  for (std::size_t i = 0; i < heavy.size() && heavy_pairs.size() < n_derived; ++i) {
    for (std::size_t j = i + 1; j < heavy.size() && heavy_pairs.size() < n_derived; ++j) {
      heavy_pairs.emplace_back(heavy[i], heavy[j]);
    }
  }
  std::vector<Asn> multihomed(all);
  std::sort(multihomed.begin(), multihomed.end(), [&](Asn a, Asn b) {
    const auto pa = graph.providers(a).size(), pb = graph.providers(b).size();
    return pa != pb ? pa > pb : a < b;
  });
  multihomed.resize(std::min<std::size_t>(n_derived, multihomed.size()));

  const auto cold_intersect = measure(heavy_pairs.size(), [&](std::size_t i) {
    (void)engine.cone_intersection(heavy_pairs[i].first, heavy_pairs[i].second);
  });
  const auto warm_intersect = measure(n_derived, [&](std::size_t i) {
    (void)engine.cone_intersection(heavy_pairs[i % 8].first, heavy_pairs[i % 8].second);
  });
  const auto cold_path = measure(multihomed.size(), [&](std::size_t i) {
    (void)engine.path_to_clique(multihomed[i]);
  });
  const auto warm_path = measure(n_derived, [&](std::size_t i) {
    (void)engine.path_to_clique(multihomed[i % 8]);
  });

  const double intersect_speedup =
      cold_intersect.per_sec() > 0 ? warm_intersect.per_sec() / cold_intersect.per_sec() : 0;
  const double path_speedup =
      cold_path.per_sec() > 0 ? warm_path.per_sec() / cold_path.per_sec() : 0;
  const bool warm_ok = intersect_speedup >= 10.0 && path_speedup >= 10.0;

  for (const auto& [name, t] : direct) {
    std::cout << "  " << name << ": " << static_cast<std::uint64_t>(t.per_sec())
              << " lookups/sec\n";
  }
  std::cout << "  cone_intersect: cold "
            << static_cast<std::uint64_t>(cold_intersect.per_sec()) << "/s, warm "
            << static_cast<std::uint64_t>(warm_intersect.per_sec()) << "/s ("
            << intersect_speedup << "x)\n";
  std::cout << "  path_to_clique: cold "
            << static_cast<std::uint64_t>(cold_path.per_sec()) << "/s, warm "
            << static_cast<std::uint64_t>(warm_path.per_sec()) << "/s ("
            << path_speedup << "x)\n";
  std::cout << "LRU-warm >= 10x cold: " << (warm_ok ? "yes" : "NO") << "\n";

  std::ofstream json(json_out);
  json << "{\n  \"bench\": \"query_serving\",\n";
  json << "  \"total_ases\": " << graph.as_count() << ",\n";
  json << "  \"links\": " << graph.link_count() << ",\n";
  json << "  \"seed\": " << seed << ",\n";
  json << "  \"snapshot\": {\"bytes\": " << snapshot_bytes
       << ", \"build_ms\": " << ms(t0, t1) << ", \"write_ms\": " << ms(t1, t2)
       << ", \"load_ms\": " << ms(t2, t3) << "},\n";
  json << "  \"query_types\": {\n";
  bool first = true;
  for (const auto& [name, t] : direct) emit(json, name, t, first);
  json << ",\n    \"cone_intersect\": {\"cold_per_sec\": "
       << static_cast<std::uint64_t>(cold_intersect.per_sec())
       << ", \"warm_per_sec\": " << static_cast<std::uint64_t>(warm_intersect.per_sec())
       << ", \"warm_speedup\": " << intersect_speedup << "}";
  json << ",\n    \"path_to_clique\": {\"cold_per_sec\": "
       << static_cast<std::uint64_t>(cold_path.per_sec())
       << ", \"warm_per_sec\": " << static_cast<std::uint64_t>(warm_path.per_sec())
       << ", \"warm_speedup\": " << path_speedup << "}";
  json << "\n  },\n  \"warm_speedup_ok\": " << (warm_ok ? "true" : "false")
       << "\n}\n";
  std::cout << "wrote " << json_out << "\n";

  return warm_ok ? 0 : 1;
}
