// Cluster serving scale-out: the same synthetic topology served by 1, 2,
// and 4 asrankd members behind a serve::ClusterClient, measuring routed
// (single-shard) query throughput/latency and scatter-gather (TOP cover
// fan-out) latency per configuration.  Results land in BENCH_cluster.json;
// the trajectory tracks what consistent-hash routing and bounded fan-out
// cost relative to one monolithic server.
//
//     bench_cluster [total_ases] [duration_ms] [threads] [json_out]
//
// Defaults: 5000 400 4 BENCH_cluster.json
//
// Every member serves the full snapshot (the cluster replicates for load
// and availability, not data partitioning), so all configurations answer
// identically and the deltas are pure serving-path cost.  Each load thread
// owns one ClusterClient (the client is single-caller by contract); routed
// work is uniform random per-AS CONE_SIZE queries, fan-out work is TOP-10.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <memory>
#include <optional>
#include <random>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/cones.h"
#include "obs/metrics.h"
#include "serve/cluster_client.h"
#include "serve/cluster_map.h"
#include "serve/query_scope.h"
#include "serve/server.h"
#include "serve/snapshot_registry.h"
#include "snapshot/snapshot.h"
#include "topogen/topogen.h"

namespace {

using namespace asrank;
using Clock = std::chrono::steady_clock;

double to_micros(Clock::duration d) {
  return std::chrono::duration<double, std::micro>(d).count();
}

double percentile(std::vector<double>& values, double p) {
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  const auto rank = static_cast<std::size_t>(p * (values.size() - 1));
  return values[rank];
}

// One in-process cluster member: registry + server thread.  The index is
// rehydrated from the shared serialized image (SnapshotIndex is move-only).
struct Member {
  explicit Member(const std::string& image) {
    snapshots.emplace(serve::SnapshotRegistryConfig{}, &metrics);
    std::stringstream bytes(image,
                            std::ios::in | std::ios::out | std::ios::binary);
    auto installed = snapshots->install("bench", snapshot::read_snapshot(bytes));
    if (!installed.ok()) {
      std::cerr << "install failed: " << installed.error().message() << "\n";
      std::exit(1);
    }
    serve::ServerConfig config;
    config.port = 0;
    server.emplace(*snapshots, config);
    thread = std::thread([this] { server->run(); });
  }

  ~Member() {
    server->stop();
    thread.join();
  }

  obs::Registry metrics;
  std::optional<serve::SnapshotRegistry> snapshots;
  std::optional<serve::Server> server;
  std::thread thread;
};

struct ShardResult {
  std::size_t shards = 0;
  std::uint64_t routed_requests = 0;
  double routed_qps = 0;
  double routed_p50_micros = 0;
  double routed_p99_micros = 0;
  std::uint64_t fanout_requests = 0;
  double fanout_p50_micros = 0;
  double fanout_p99_micros = 0;
};

}  // namespace

int main(int argc, char** argv) {
  std::size_t total_ases = 5000;
  int duration_ms = 400;
  std::size_t threads = 4;
  std::string json_out = "BENCH_cluster.json";
  if (argc > 1) total_ases = std::strtoull(argv[1], nullptr, 10);
  if (argc > 2) duration_ms = static_cast<int>(std::strtol(argv[2], nullptr, 10));
  if (argc > 3) threads = std::strtoull(argv[3], nullptr, 10);
  if (argc > 4) json_out = argv[4];

  auto params = topogen::GenParams::preset("large");
  params.total_ases = total_ases;
  params.seed = 42;
  const auto truth = topogen::generate(params);
  const auto& graph = truth.graph;
  std::unordered_map<Asn, std::size_t> tdeg;
  for (const Asn as : graph.ases()) tdeg[as] = graph.customers(as).size();
  const auto index = snapshot::build_snapshot(
      graph, tdeg, core::recursive_cone(graph), graph.provider_free_ases());
  std::stringstream image_bytes(std::ios::in | std::ios::out | std::ios::binary);
  snapshot::write_snapshot(index, image_bytes);
  const std::string image = image_bytes.str();
  std::vector<Asn> ases(graph.ases().begin(), graph.ases().end());

  std::cout << "== cluster serving (" << graph.as_count() << " ASes, "
            << graph.link_count() << " links, " << threads
            << " load threads, " << duration_ms << " ms per config) ==\n";

  std::vector<ShardResult> results;
  for (const std::size_t shards : {1u, 2u, 4u}) {
    std::vector<std::unique_ptr<Member>> members;
    std::vector<serve::ClusterEndpoint> endpoints;
    for (std::size_t i = 0; i < shards; ++i) {
      members.push_back(std::make_unique<Member>(image));
      endpoints.push_back({"127.0.0.1", members.back()->server->port()});
    }
    serve::ClusterMapConfig map_config;
    map_config.slots = 64;
    map_config.replication = std::min<std::size_t>(2, shards);
    auto map = serve::ClusterMap::make(endpoints, map_config);
    if (!map.ok()) {
      std::cerr << "cluster map: " << map.error().message() << "\n";
      return 1;
    }

    // Routed load: `threads` clients hammering random per-AS queries.
    std::atomic<bool> stop{false};
    std::vector<std::uint64_t> counts(threads, 0);
    std::vector<std::vector<double>> latencies(threads);
    std::vector<std::thread> workers;
    for (std::size_t t = 0; t < threads; ++t) {
      workers.emplace_back([&, t] {
        obs::Registry metrics;
        serve::ClusterClientConfig config;
        config.metrics = &metrics;
        serve::ClusterClient client(map.value(), std::move(config));
        std::mt19937_64 rng(17 + t);
        std::uniform_int_distribution<std::size_t> pick(0, ases.size() - 1);
        while (!stop.load(std::memory_order_relaxed)) {
          const auto start = Clock::now();
          const auto result =
              client.try_cone_size(ases[pick(rng)], serve::QueryScope{});
          if (!result.ok()) {
            std::cerr << "routed query failed: " << result.error().message()
                      << "\n";
            std::exit(1);
          }
          latencies[t].push_back(to_micros(Clock::now() - start));
          ++counts[t];
        }
      });
    }
    const auto window_start = Clock::now();
    std::this_thread::sleep_for(std::chrono::milliseconds(duration_ms));
    stop.store(true);
    for (auto& worker : workers) worker.join();
    const double window_s =
        std::chrono::duration<double>(Clock::now() - window_start).count();

    ShardResult row;
    row.shards = shards;
    std::vector<double> routed;
    for (std::size_t t = 0; t < threads; ++t) {
      row.routed_requests += counts[t];
      routed.insert(routed.end(), latencies[t].begin(), latencies[t].end());
    }
    row.routed_qps = static_cast<double>(row.routed_requests) / window_s;
    row.routed_p50_micros = percentile(routed, 0.50);
    row.routed_p99_micros = percentile(routed, 0.99);

    // Scatter fan-out: TOP-10 across the slot cover, single caller.
    {
      obs::Registry metrics;
      serve::ClusterClientConfig config;
      config.metrics = &metrics;
      serve::ClusterClient client(map.value(), std::move(config));
      std::vector<double> fanout;
      const auto fan_deadline =
          Clock::now() + std::chrono::milliseconds(duration_ms);
      while (Clock::now() < fan_deadline) {
        const auto start = Clock::now();
        const auto top = client.try_top(10, serve::QueryScope{});
        if (!top.ok()) {
          std::cerr << "fan-out query failed: " << top.error().message() << "\n";
          return 1;
        }
        fanout.push_back(to_micros(Clock::now() - start));
      }
      row.fanout_requests = fanout.size();
      row.fanout_p50_micros = percentile(fanout, 0.50);
      row.fanout_p99_micros = percentile(fanout, 0.99);
    }

    std::cout << "  " << shards << " shard(s): " << static_cast<std::uint64_t>(
                     row.routed_qps) << " routed qps (p50 "
              << row.routed_p50_micros << "us, p99 " << row.routed_p99_micros
              << "us), fan-out p50 " << row.fanout_p50_micros << "us p99 "
              << row.fanout_p99_micros << "us over " << row.fanout_requests
              << " TOP scatters\n";
    results.push_back(row);
  }

  std::ofstream json(json_out);
  json << "{\n  \"bench\": \"cluster\",\n";
  json << "  \"total_ases\": " << graph.as_count() << ",\n";
  json << "  \"duration_ms\": " << duration_ms << ",\n";
  json << "  \"load_threads\": " << threads << ",\n";
  json << "  \"hardware_threads\": " << std::thread::hardware_concurrency()
       << ",\n";
  json << "  \"configs\": [";
  for (std::size_t i = 0; i < results.size(); ++i) {
    const auto& row = results[i];
    if (i != 0) json << ", ";
    json << "{\"shards\": " << row.shards
         << ", \"routed_requests\": " << row.routed_requests
         << ", \"routed_qps\": " << static_cast<std::uint64_t>(row.routed_qps)
         << ", \"routed_p50_micros\": " << row.routed_p50_micros
         << ", \"routed_p99_micros\": " << row.routed_p99_micros
         << ", \"fanout_requests\": " << row.fanout_requests
         << ", \"fanout_p50_micros\": " << row.fanout_p50_micros
         << ", \"fanout_p99_micros\": " << row.fanout_p99_micros << "}";
  }
  json << "]\n}\n";
  std::cout << "wrote " << json_out << "\n";
  return 0;
}
