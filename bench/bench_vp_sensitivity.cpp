// E9 — paper §6.2-style analysis: inference quality as a function of the
// number of vantage points.  The paper observes that link visibility —
// especially of p2p links — is the binding constraint; accuracy saturates
// once the big transit providers host VPs.
#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace asrank;
  auto options = bench::parse_options(argc, argv);
  bench::header("E9 sensitivity to vantage-point count (paper Fig. 7-style)", options);
  bench::paper_shape(
      "p2p visibility grows near-linearly with VPs while c2p visibility "
      "saturates early; PPV rises with VP count and flattens");

  auto gen = topogen::GenParams::preset(options.preset);
  gen.seed = options.seed;
  const auto truth = topogen::generate(gen);
  const auto true_counts = truth.graph.link_counts();

  util::TableWriter table({"VPs (full+partial)", "links seen", "p2c vis", "p2p vis",
                           "c2p PPV", "p2p PPV", "clique found"});
  const std::pair<std::size_t, std::size_t> sweeps[] = {{2, 1},   {5, 2},   {10, 3},
                                                        {20, 6},  {30, 10}, {50, 15}};
  for (const auto& [full, partial] : sweeps) {
    bgpsim::ObservationParams obs;
    obs.seed = options.seed + 1;
    obs.full_vps = full;
    obs.partial_vps = partial;
    const auto observation = bgpsim::observe(truth, obs);
    const auto result = core::AsRankInference(bench::config_for(truth))
                            .run(paths::PathCorpus::from_records(observation.routes));
    std::size_t p2c_seen = 0, p2p_seen = 0;
    for (const Link& link : truth.graph.links()) {
      if (!result.graph.has_link(link.a, link.b)) continue;
      if (link.type == LinkType::kP2C) ++p2c_seen;
      if (link.type == LinkType::kP2P) ++p2p_seen;
    }
    const auto accuracy = validation::evaluate_against_truth(result.graph, truth.graph);
    std::size_t recovered = 0;
    for (const Asn as : result.clique) {
      if (std::binary_search(truth.clique.begin(), truth.clique.end(), as)) ++recovered;
    }
    table.add_row(
        {std::to_string(full) + "+" + std::to_string(partial),
         util::fmt_count(result.graph.link_count()),
         util::fmt_pct(static_cast<double>(p2c_seen) / static_cast<double>(true_counts.p2c)),
         util::fmt_pct(static_cast<double>(p2p_seen) / static_cast<double>(true_counts.p2p)),
         util::fmt_pct(accuracy.c2p.ppv()), util::fmt_pct(accuracy.p2p.ppv()),
         std::to_string(recovered) + "/" + std::to_string(truth.clique.size())});
  }
  table.render(std::cout);
  return 0;
}
