// E5 — paper figure analogue: inferred clique membership across topology
// snapshots.  The paper tracks the clique over years of BGP data and finds
// it stable (size ~10-20) with occasional membership churn; here the
// topology evolves via topogen::evolve and the inferred clique should track
// the (stable) ground-truth clique at every step.
#include "bench_common.h"

#include <algorithm>

int main(int argc, char** argv) {
  using namespace asrank;
  auto options = bench::parse_options(argc, argv);
  bench::header("E5 clique evolution across snapshots (paper Fig. 2-style)", options);
  bench::paper_shape(
      "the inferred clique is stable across snapshots and matches the "
      "ground-truth tier-1 mesh (paper: sizes 10-20, little churn)");

  auto gen = topogen::GenParams::preset(options.preset);
  gen.seed = options.seed;
  auto truth = topogen::generate(gen);
  util::Rng rng(options.seed + 100);

  util::TableWriter table(
      {"snapshot", "ASes", "links", "true clique", "inferred", "recovered", "false"});
  for (int snapshot = 0; snapshot < 8; ++snapshot) {
    if (snapshot > 0) {
      topogen::EvolveParams evolve_params;
      evolve_params.new_stubs = truth.graph.as_count() / 40;
      evolve_params.new_peerings = truth.graph.link_count() / 80;
      topogen::evolve(truth, rng, evolve_params);
    }
    bgpsim::ObservationParams obs;
    obs.seed = options.seed + 1;
    obs.full_vps = options.full_vps;
    obs.partial_vps = options.partial_vps;
    const auto observation = bgpsim::observe(truth, obs);
    const auto result = core::AsRankInference(bench::config_for(truth))
                            .run(paths::PathCorpus::from_records(observation.routes));
    std::size_t recovered = 0;
    for (const Asn as : result.clique) {
      if (std::binary_search(truth.clique.begin(), truth.clique.end(), as)) ++recovered;
    }
    table.add_row({std::to_string(snapshot), util::fmt_count(truth.graph.as_count()),
                   util::fmt_count(truth.graph.link_count()),
                   std::to_string(truth.clique.size()),
                   std::to_string(result.clique.size()), std::to_string(recovered),
                   std::to_string(result.clique.size() - recovered)});
  }
  table.render(std::cout);
  return 0;
}
