// E12 — link visibility by relationship type (paper §6.2's argument made
// quantitative): the number of VPs observing each link, split by the link's
// ground-truth type.  Peering visibility concentrates at few VPs; transit
// links are near-universally visible.
#include "bench_common.h"

#include "core/visibility.h"

int main(int argc, char** argv) {
  using namespace asrank;
  const auto options = bench::parse_options(argc, argv);
  bench::header("E12 link visibility by relationship type", options);
  bench::paper_shape(
      "most p2p links are observed by very few VPs (only those inside a "
      "peer's cone) while most p2c links are seen by nearly all VPs; "
      "peak-only position is the p2p signature");

  const auto world = bench::make_world(options);
  const auto corpus = paths::PathCorpus::from_records(world.observation.routes);
  const auto visibility = core::link_visibility(corpus);

  // Split per ground-truth type.
  struct Bucket {
    std::vector<std::size_t> vp_counts;
    std::size_t interior = 0;
    std::size_t total = 0;
  };
  Bucket p2c, p2p;
  for (const auto& [key, link] : visibility) {
    const Asn a(static_cast<std::uint32_t>(key >> 32));
    const Asn b(static_cast<std::uint32_t>(key));
    const auto true_link = world.truth.graph.link(a, b);
    if (!true_link || true_link->type == LinkType::kS2S) continue;
    Bucket& bucket = true_link->type == LinkType::kP2C ? p2c : p2p;
    bucket.vp_counts.push_back(link.vp_count);
    bucket.interior += link.interior();
    ++bucket.total;
  }

  const std::size_t total_vps = world.observation.vps.size();
  util::TableWriter table({"observed by >= k VPs", "p2c links", "p2c share",
                           "p2p links", "p2p share"});
  for (const std::size_t k : {std::size_t{1}, std::size_t{2}, std::size_t{5},
                              std::size_t{10}, total_vps / 2, total_vps}) {
    std::size_t p2c_at = 0, p2p_at = 0;
    for (const auto count : p2c.vp_counts) p2c_at += count >= k;
    for (const auto count : p2p.vp_counts) p2p_at += count >= k;
    table.add_row({std::to_string(k), util::fmt_count(p2c_at),
                   util::fmt_pct(static_cast<double>(p2c_at) /
                                 static_cast<double>(std::max<std::size_t>(p2c.total, 1))),
                   util::fmt_count(p2p_at),
                   util::fmt_pct(static_cast<double>(p2p_at) /
                                 static_cast<double>(std::max<std::size_t>(p2p.total, 1)))});
  }
  table.render(std::cout);

  auto interior_share = [](const Bucket& bucket) {
    return bucket.total == 0
               ? 0.0
               : static_cast<double>(bucket.interior) / static_cast<double>(bucket.total);
  };
  std::cout << "interior (mid-path) observation share: p2c "
            << util::fmt_pct(interior_share(p2c)) << ", p2p "
            << util::fmt_pct(interior_share(p2p))
            << "  <- peering's peak-only signature\n";
  return 0;
}
