// E10 — ablation of the pipeline's design choices (paper §4 discussion):
// disable one stage at a time and measure the damage.  Quantifies why each
// step exists, including the reconstruction-specific choice to defer rather
// than degree-guess peak-adjacent links.
#include "bench_common.h"

#include "validation/synthesize.h"

int main(int argc, char** argv) {
  using namespace asrank;
  const auto options = bench::parse_options(argc, argv);
  bench::header("E10 pipeline ablation", options);
  bench::paper_shape(
      "every stage earns its keep: removing sanitization or poisoned-path "
      "discard corrupts the graph; skipping the fixpoint strands descents; "
      "degree-guessing at peaks trades c2p PPV for p2p coverage");

  auto gen = topogen::GenParams::preset(options.preset);
  gen.seed = options.seed;
  const auto truth = topogen::generate(gen);
  bgpsim::ObservationParams obs;
  obs.seed = options.seed + 1;
  obs.full_vps = options.full_vps;
  obs.partial_vps = options.partial_vps;
  const auto observation = bgpsim::observe(truth, obs);
  const auto corpus = paths::PathCorpus::from_records(observation.routes);

  util::TableWriter table(
      {"variant", "c2p PPV", "p2p PPV", "overall", "links", "phantom", "acyclic"});
  auto run = [&](const std::string& name, core::InferenceConfig config) {
    const auto result = core::AsRankInference(std::move(config)).run(corpus);
    const auto accuracy = validation::evaluate_against_truth(result.graph, truth.graph);
    // Phantom links — links in the inferred graph that do not exist at all —
    // are the real damage done by unsanitized artifacts; PPV alone misses
    // them because they match no ground-truth link.
    table.add_row({name, util::fmt_pct(accuracy.c2p.ppv()), util::fmt_pct(accuracy.p2p.ppv()),
                   util::fmt_pct(accuracy.accuracy()),
                   util::fmt_count(result.graph.link_count()),
                   util::fmt_count(accuracy.unknown_links),
                   result.audit.p2c_acyclic ? "yes" : "NO"});
  };

  const auto base = bench::config_for(truth);
  run("full pipeline", base);
  {
    auto config = base;
    config.sanitizer.strip_ixp_asns = false;
    run("- IXP stripping", config);
  }
  {
    auto config = base;
    config.sanitizer.discard_loops = false;
    run("- loop discard", config);
  }
  {
    auto config = base;
    config.discard_poisoned = false;
    run("- poisoned-path discard", config);
  }
  {
    auto config = base;
    config.partial_vp_threshold = 0.0;
    run("- partial-VP detection", config);
  }
  {
    auto config = base;
    config.triplet_fixpoint = false;
    run("- valley-free fixpoint", config);
  }
  {
    auto config = base;
    config.provider_less_repair = false;
    config.stub_clique_pass = false;
    run("- repair passes (7/8)", config);
  }
  {
    auto config = base;
    config.apex_degree_gap = 4.0;
    run("+ degree-guess at peaks (gap 4)", config);
  }
  {
    auto config = base;
    config.clique.reject_customer_evidence = false;
    run("- clique customer-evidence", config);
  }
  {
    auto config = base;
    config.clique.max_missing_links = 0;
    run("- clique adjacency tolerance", config);
  }
  table.render(std::cout);
  return 0;
}
