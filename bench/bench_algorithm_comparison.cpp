// E4 — paper Table 4 analogue: ASRank vs Gao (2001) vs the naive degree
// heuristic on identical corpora, scored against exact ground truth and the
// synthesized validation corpus.
#include "bench_common.h"

#include <chrono>

#include "algo/registry.h"
#include "paths/sanitizer.h"
#include "validation/synthesize.h"

int main(int argc, char** argv) {
  using namespace asrank;
  const auto options = bench::parse_options(argc, argv);
  bench::header("E4 algorithm comparison (paper Table 4)", options);
  bench::paper_shape(
      "ASRank beats Gao on both relationship types; the gap is largest for "
      "p2p links, where degree-based reasoning misfires; the naive degree "
      "heuristic trails both");

  const auto world = bench::make_world(options);
  // All algorithms consume the same sanitized corpus, so differences are
  // algorithmic rather than hygiene.
  paths::SanitizerConfig sanitizer;
  sanitizer.ixp_asns.insert(world.truth.ixp_asns.begin(), world.truth.ixp_asns.end());
  const auto sanitized =
      paths::sanitize(paths::PathCorpus::from_records(world.observation.routes), sanitizer);
  const auto synth = validation::synthesize_validation(world.truth, world.observation,
                                                       validation::SynthesisParams{});

  util::TableWriter table({"algorithm", "c2p PPV", "p2p PPV", "overall", "corpus PPV",
                           "links", "runtime ms"});
  for (const std::string_view name : algo::names()) {
    auto made = algo::create(name);
    if (!made.ok()) {
      std::cerr << made.error().message() << "\n";
      return 1;
    }
    const auto algorithm = std::move(made).value();
    const auto start = std::chrono::steady_clock::now();
    const auto graph = algorithm->infer(sanitized.corpus);
    const auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
                             std::chrono::steady_clock::now() - start)
                             .count();
    const auto truth = validation::evaluate_against_truth(graph, world.truth.graph);
    const auto corpus_ppv = validation::evaluate_ppv(graph, synth.corpus);
    table.add_row({algorithm->name(), util::fmt_pct(truth.c2p.ppv()),
                   util::fmt_pct(truth.p2p.ppv()), util::fmt_pct(truth.accuracy()),
                   util::fmt_pct(corpus_ppv.overall.ppv()),
                   util::fmt_count(graph.link_count()), std::to_string(elapsed)});
  }
  table.render(std::cout);
  return 0;
}
