// E13 — AS Rank stability across snapshots (paper §5.4 discussion): the top
// of the ranking should be stable under organic growth, with churn
// concentrated in the long tail; top cones overlap heavily snapshot to
// snapshot.
#include "bench_common.h"

#include "core/cones.h"
#include "core/hierarchy.h"
#include "core/ranking.h"

int main(int argc, char** argv) {
  using namespace asrank;
  auto options = bench::parse_options(argc, argv);
  bench::header("E13 AS Rank stability across snapshots", options);
  bench::paper_shape(
      "ranked by recursive cone, top-10 membership is nearly constant and "
      "churn grows with rank depth; the provider/peer-observed cone ranking "
      "is noisier because its evidence depends on which equal-cost routes "
      "the substrate happens to pick each snapshot");

  auto gen = topogen::GenParams::preset(options.preset);
  gen.seed = options.seed;
  auto truth = topogen::generate(gen);
  util::Rng rng(options.seed + 300);

  std::vector<Asn> previous_ranked;        // recursive-cone ranking (inferred)
  std::vector<Asn> previous_ppdc_ranked;   // ppdc ranking, for contrast
  std::vector<Asn> previous_true_ranked;   // recursive cones over ground truth
  ConeMap previous_cones;

  util::TableWriter table({"snapshot", "top10 kept", "churn@10", "churn@50", "churn@200",
                           "ppdc churn@10", "TRUE churn@10", "cone jaccard top10"});
  for (int snapshot = 0; snapshot < 6; ++snapshot) {
    if (snapshot > 0) {
      topogen::EvolveParams evolve_params;
      evolve_params.new_stubs = truth.graph.as_count() / 50;
      evolve_params.new_peerings = truth.graph.link_count() / 60;
      topogen::evolve(truth, rng, evolve_params);
    }
    bgpsim::ObservationParams obs;
    obs.seed = options.seed + 1;
    obs.full_vps = options.full_vps;
    obs.partial_vps = options.partial_vps;
    const auto observation = bgpsim::observe(truth, obs);
    const auto result = core::AsRankInference(bench::config_for(truth))
                            .run(paths::PathCorpus::from_records(observation.routes));
    const auto cones = core::recursive_cone(result.graph);
    const auto ppdc_cones =
        core::provider_peer_observed_cone(result.graph, result.sanitized);
    const auto true_cones = core::recursive_cone(truth.graph);
    std::vector<Asn> ranked, ppdc_ranked, true_ranked;
    for (const auto& entry : core::rank_by_cone(cones, result.degrees)) {
      ranked.push_back(entry.as);
    }
    for (const auto& entry : core::rank_by_cone(ppdc_cones, result.degrees)) {
      ppdc_ranked.push_back(entry.as);
    }
    for (const auto& entry : core::rank_by_cone(true_cones, result.degrees)) {
      true_ranked.push_back(entry.as);
    }

    if (snapshot == 0) {
      table.add_row({"0", "-", "-", "-", "-", "-", "-", "-"});
    } else {
      std::size_t kept = 0;
      for (std::size_t i = 0; i < std::min<std::size_t>(10, ranked.size()); ++i) {
        for (std::size_t j = 0; j < std::min<std::size_t>(10, previous_ranked.size()); ++j) {
          if (ranked[i] == previous_ranked[j]) {
            ++kept;
            break;
          }
        }
      }
      double jaccard_sum = 0;
      std::size_t jaccard_n = 0;
      for (std::size_t i = 0; i < std::min<std::size_t>(10, previous_ranked.size()); ++i) {
        const auto before = previous_cones.find(previous_ranked[i]);
        const auto after = cones.find(previous_ranked[i]);
        if (before == previous_cones.end() || after == cones.end()) continue;
        jaccard_sum += core::cone_jaccard(before->second, after->second);
        ++jaccard_n;
      }
      table.add_row(
          {std::to_string(snapshot), std::to_string(kept) + "/10",
           util::fmt(core::mean_rank_change(previous_ranked, ranked, 10), 2),
           util::fmt(core::mean_rank_change(previous_ranked, ranked, 50), 2),
           util::fmt(core::mean_rank_change(previous_ranked, ranked, 200), 2),
           util::fmt(core::mean_rank_change(previous_ppdc_ranked, ppdc_ranked, 10), 2),
           util::fmt(core::mean_rank_change(previous_true_ranked, true_ranked, 10), 2),
           jaccard_n ? util::fmt(jaccard_sum / static_cast<double>(jaccard_n), 3) : "-"});
    }
    previous_ranked = std::move(ranked);
    previous_ppdc_ranked = std::move(ppdc_ranked);
    previous_true_ranked = std::move(true_ranked);
    previous_cones = std::move(cones);
  }
  table.render(std::cout);
  return 0;
}
