// Parallel scaling of the deterministic thread pool across the pipeline's
// hot stages: cone closure, degree tally, link visibility, and the full
// inference run.  Not a paper artefact — this is the engineering harness for
// the util::ThreadPool engine: it measures wall-clock speedup at 1/2/4/8
// workers on a topogen graph (default 50k ASes), verifies that every stage's
// output is identical to the single-threaded run, and emits machine-readable
// JSON so the BENCH_*.json trajectory tracks scaling across PRs.
//
//     bench_parallel_scaling [total_ases] [seed] [json_out]
//
// Defaults: 50000 42 BENCH_parallel_scaling.json
#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <fstream>
#include <functional>
#include <iostream>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "core/asrank.h"
#include "core/cones.h"
#include "core/degrees.h"
#include "core/visibility.h"
#include "paths/corpus.h"
#include "topogen/topogen.h"

namespace {

using namespace asrank;

constexpr std::size_t kThreadCounts[] = {1, 2, 4, 8};
constexpr int kReps = 2;  // min-of-reps damps scheduler noise

/// Synthetic observation corpus that exercises the tally stages without a
/// full route simulation (O(n^2) at 50k ASes): every AS contributes its
/// provider-ascent chain as an observed path, which yields transit-position
/// hops for degrees/visibility and realistic vote sweeps for inference.
paths::PathCorpus ascent_corpus(const topogen::GroundTruth& truth) {
  paths::PathCorpus corpus;
  for (const Asn as : truth.graph.ases()) {
    std::vector<Asn> hops{as};
    Asn cursor = as;
    while (hops.size() < 6) {
      const auto providers = truth.graph.providers(cursor);
      if (providers.empty()) break;
      cursor = providers.front();
      hops.push_back(cursor);
    }
    if (hops.size() < 2) continue;
    const Prefix prefix = Prefix::v4(hops.back().value() << 8, 24);
    corpus.add(as, prefix, AsPath(std::move(hops)));
  }
  return corpus;
}

double time_ms(const std::function<void()>& fn) {
  double best = 0.0;
  for (int rep = 0; rep < kReps; ++rep) {
    const auto start = std::chrono::steady_clock::now();
    fn();
    const auto elapsed = std::chrono::duration<double, std::milli>(
        std::chrono::steady_clock::now() - start);
    if (rep == 0 || elapsed.count() < best) best = elapsed.count();
  }
  return best;
}

void write_json(std::ostream& os, std::size_t ases, std::uint64_t seed,
                const std::map<std::string, std::map<std::size_t, double>>& timings,
                bool identical) {
  os << "{\n  \"bench\": \"parallel_scaling\",\n";
  os << "  \"total_ases\": " << ases << ",\n  \"seed\": " << seed << ",\n";
  os << "  \"hardware_threads\": " << std::thread::hardware_concurrency() << ",\n";
  os << "  \"outputs_identical\": " << (identical ? "true" : "false") << ",\n";
  os << "  \"stages\": {\n";
  bool first_stage = true;
  for (const auto& [stage, by_threads] : timings) {
    if (!first_stage) os << ",\n";
    first_stage = false;
    os << "    \"" << stage << "\": {\"ms\": {";
    bool first = true;
    for (const auto& [threads, ms] : by_threads) {
      if (!first) os << ", ";
      first = false;
      os << "\"" << threads << "\": " << ms;
    }
    os << "}, \"speedup\": {";
    const double base = by_threads.at(1);
    first = true;
    for (const auto& [threads, ms] : by_threads) {
      if (!first) os << ", ";
      first = false;
      os << "\"" << threads << "\": " << (ms > 0.0 ? base / ms : 0.0);
    }
    os << "}}";
  }
  os << "\n  }\n}\n";
}

}  // namespace

int main(int argc, char** argv) {
  std::size_t total_ases = 50000;
  std::uint64_t seed = 42;
  std::string json_out = "BENCH_parallel_scaling.json";
  if (argc > 1) total_ases = std::strtoull(argv[1], nullptr, 10);
  if (argc > 2) seed = std::strtoull(argv[2], nullptr, 10);
  if (argc > 3) json_out = argv[3];

  std::cout << "== parallel scaling (" << total_ases << " ASes, seed " << seed
            << ", " << std::thread::hardware_concurrency() << " hardware threads) ==\n";

  auto params = topogen::GenParams::preset("large");
  params.total_ases = total_ases;
  params.seed = seed;
  const auto truth = topogen::generate(params);
  const auto corpus = ascent_corpus(truth);
  std::cout << "graph: " << truth.graph.as_count() << " ASes, "
            << truth.graph.link_count() << " links; corpus: " << corpus.size()
            << " paths\n";

  core::InferenceConfig base_config;
  std::map<std::string, std::map<std::size_t, double>> timings;
  bool identical = true;

  // Single-threaded reference outputs for the identity check.
  const auto ref_cones = core::recursive_cone(truth.graph, 1);
  const auto ref_degrees = core::Degrees::compute(corpus, 1);
  const auto ref_visibility = core::link_visibility(corpus, 1);

  for (const std::size_t threads : kThreadCounts) {
    timings["cone_closure"][threads] =
        time_ms([&] { (void)core::recursive_cone(truth.graph, threads); });
    timings["degrees"][threads] =
        time_ms([&] { (void)core::Degrees::compute(corpus, threads); });
    timings["visibility"][threads] =
        time_ms([&] { (void)core::link_visibility(corpus, threads); });
    timings["inference"][threads] = time_ms([&] {
      auto config = base_config;
      config.threads = threads;
      (void)core::AsRankInference(config).run(corpus);
    });

    if (threads != 1) {
      identical = identical && core::recursive_cone(truth.graph, threads) == ref_cones &&
                  core::Degrees::compute(corpus, threads).ranked() == ref_degrees.ranked();
      const auto visibility = core::link_visibility(corpus, threads);
      identical = identical && visibility.size() == ref_visibility.size();
      for (const auto& [key, link] : ref_visibility) {
        const auto it = visibility.find(key);
        identical = identical && it != visibility.end() &&
                    it->second.vp_count == link.vp_count &&
                    it->second.observations == link.observations;
      }
    }

    std::cout << threads << " thread(s): cone "
              << timings["cone_closure"][threads] << " ms, degrees "
              << timings["degrees"][threads] << " ms, visibility "
              << timings["visibility"][threads] << " ms, inference "
              << timings["inference"][threads] << " ms\n";
  }

  const double cone_speedup_4t =
      timings["cone_closure"][1] / std::max(timings["cone_closure"][4], 1e-9);
  std::cout << "cone-closure speedup at 4 threads: " << cone_speedup_4t << "x\n";
  std::cout << "outputs identical across thread counts: "
            << (identical ? "yes" : "NO — BUG") << "\n";

  // Speedup assertion, gated on real parallel hardware: on a single-core
  // runner every multi-threaded run legitimately loses to the sequential
  // path, so only the determinism check is meaningful there.
  bool speedup_ok = true;
  if (std::thread::hardware_concurrency() >= 2) {
    const double inference_speedup_2t =
        timings["inference"][1] / std::max(timings["inference"][2], 1e-9);
    speedup_ok = inference_speedup_2t > 1.05;
    std::cout << "inference speedup at 2 threads: " << inference_speedup_2t
              << "x (assert > 1.05x: " << (speedup_ok ? "pass" : "FAIL") << ")\n";
  } else {
    std::cout << "single hardware thread: speedup assertion skipped\n";
  }

  write_json(std::cout, total_ases, seed, timings, identical);
  std::ofstream file(json_out);
  write_json(file, total_ases, seed, timings, identical);
  std::cout << "wrote " << json_out << "\n";

  return identical && speedup_ok ? 0 : 1;
}
