// E6 — paper figure analogue: the relationship-type mix of the inferred
// graph across snapshots of a flattening Internet.  As IXP-driven peering
// grows, the p2p share of visible links rises while c2p visibility stays
// near-total (the paper observes the p2p fraction of the AS graph growing
// year over year).
#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace asrank;
  auto options = bench::parse_options(argc, argv);
  bench::header("E6 link-type mix under flattening (paper Fig. 1-style)", options);
  bench::paper_shape(
      "the p2p share of both the true and the inferred graph grows "
      "monotonically as peering densifies; inferred mix tracks truth");

  auto gen = topogen::GenParams::preset(options.preset);
  gen.seed = options.seed;
  auto truth = topogen::generate(gen);
  util::Rng rng(options.seed + 200);

  util::TableWriter table({"snapshot", "true p2c", "true p2p", "true p2p share",
                           "inferred p2c", "inferred p2p", "inferred p2p share"});
  for (int snapshot = 0; snapshot < 8; ++snapshot) {
    if (snapshot > 0) {
      topogen::EvolveParams evolve_params;
      evolve_params.new_stubs = truth.graph.as_count() / 100;
      evolve_params.new_peerings = truth.graph.link_count() / 25;  // aggressive flattening
      topogen::evolve(truth, rng, evolve_params);
    }
    bgpsim::ObservationParams obs;
    obs.seed = options.seed + 1;
    obs.full_vps = options.full_vps;
    obs.partial_vps = options.partial_vps;
    const auto observation = bgpsim::observe(truth, obs);
    const auto result = core::AsRankInference(bench::config_for(truth))
                            .run(paths::PathCorpus::from_records(observation.routes));
    const auto true_counts = truth.graph.link_counts();
    const auto inferred_counts = result.graph.link_counts();
    const double true_share = static_cast<double>(true_counts.p2p) /
                              static_cast<double>(true_counts.p2p + true_counts.p2c);
    const double inferred_share =
        static_cast<double>(inferred_counts.p2p) /
        static_cast<double>(inferred_counts.p2p + inferred_counts.p2c);
    table.add_row({std::to_string(snapshot), util::fmt_count(true_counts.p2c),
                   util::fmt_count(true_counts.p2p), util::fmt_pct(true_share),
                   util::fmt_count(inferred_counts.p2c),
                   util::fmt_count(inferred_counts.p2p), util::fmt_pct(inferred_share)});
  }
  table.render(std::cout);
  std::cout << "note: inferred p2p share is depressed by visibility (peering links\n"
               "are observable only from inside either peer's customer cone).\n";
  return 0;
}
