// Streaming-ingest throughput: the engineering harness for src/ingest.
// Three questions the conveyor's operators care about:
//
//   1. How fast does UpdateApplier absorb a BGP4MP feed (updates/sec)?
//   2. What does an epoch cost end to end (p50/p99 build latency over a
//      replayed stream, incremental cone path enabled)?
//   3. Where is the incremental-vs-full-closure crossover — at what dirty
//      fraction does recomputing only invalidated cones stop paying for
//      itself?  (This calibrates EpochBuilderConfig::full_closure_threshold.)
//
//     bench_ingest [preset] [seed] [json_out]
//
// Defaults: medium 42 BENCH_ingest.json.  Emits machine-readable JSON
// (stamped with hardware_threads like the other BENCH_*.json artefacts) so
// the trajectory tracks ingest performance across PRs.
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "bgpsim/observation.h"
#include "bgpsim/update_stream.h"
#include "core/cones.h"
#include "ingest/epoch_builder.h"
#include "ingest/update_applier.h"
#include "obs/metrics.h"
#include "paths/corpus.h"
#include "topogen/topogen.h"
#include "util/rng.h"

namespace {

using namespace asrank;

double percentile(std::vector<std::uint64_t> values, double p) {
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  const auto rank = static_cast<std::size_t>(p * (values.size() - 1) + 0.5);
  return static_cast<double>(values[std::min(rank, values.size() - 1)]);
}

}  // namespace

int main(int argc, char** argv) {
  std::string preset = "medium";
  std::uint64_t seed = 42;
  std::string json_out = "BENCH_ingest.json";
  if (argc > 1) preset = argv[1];
  if (argc > 2) seed = std::strtoull(argv[2], nullptr, 10);
  if (argc > 3) json_out = argv[3];

  auto params = topogen::GenParams::preset(preset);
  params.seed = seed;

  // ---- 1. applier absorption rate over a generated multi-step stream ----
  auto stream_truth = topogen::generate(params);
  bgpsim::ObservationParams obs_params;
  obs_params.seed = seed + 1;
  bgpsim::UpdateStreamParams stream_params;
  stream_params.steps = 6;
  stream_params.seed = seed + 1000;
  stream_params.evolve.new_stubs = stream_truth.graph.as_count() / 50;
  stream_params.evolve.new_peerings = stream_truth.graph.link_count() / 40;
  const auto stream =
      bgpsim::generate_update_stream(stream_truth, obs_params, stream_params);

  obs::Registry apply_metrics;
  ingest::UpdateApplier applier(apply_metrics);
  std::size_t messages = 0;
  const auto apply_start = std::chrono::steady_clock::now();
  for (const auto& step : stream) {
    for (const auto& update : step.updates) applier.apply(update);
    messages += step.updates.size();
  }
  const double apply_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - apply_start)
          .count();
  const double updates_per_sec = apply_seconds > 0 ? messages / apply_seconds : 0.0;

  std::cout << "== ingest (" << preset << ", seed " << seed << ") ==\n";
  std::cout << "applier: " << messages << " updates in " << apply_seconds << " s ("
            << static_cast<std::uint64_t>(updates_per_sec) << " updates/sec), table "
            << applier.route_count() << " routes\n";

  // ---- 2. per-epoch build latency over the same replayed stream ----
  obs::Registry build_metrics;
  ingest::EpochBuilderConfig builder_config;
  builder_config.full_closure_threshold = 1.1;  // measure the incremental path
  ingest::EpochBuilder builder(builder_config, build_metrics);
  obs::Registry replay_metrics;
  ingest::UpdateApplier replay_applier(replay_metrics);
  std::vector<std::uint64_t> build_micros;
  for (const auto& step : stream) {
    for (const auto& update : step.updates) replay_applier.apply(update);
    ingest::EpochBuildInfo info;
    auto built = builder.build(replay_applier.corpus(), &info);
    if (!built.ok()) {
      std::cerr << "FAIL: epoch build: " << built.error().context << "\n";
      return 1;
    }
    build_micros.push_back(info.build_micros);
  }
  const double p50 = percentile(build_micros, 0.50);
  const double p99 = percentile(build_micros, 0.99);
  std::cout << "epoch build: " << build_micros.size() << " epochs, p50 "
            << p50 / 1000.0 << " ms, p99 " << p99 / 1000.0 << " ms\n";

  // ---- 3. incremental vs full-closure crossover -------------------------
  // Evolve ever harder between epochs so the dirty fraction sweeps upward;
  // at each vintage time the incremental closure (forced, no fallback)
  // against a from-scratch full closure of the same graph.
  struct CrossoverPoint {
    double dirty_fraction;
    double incremental_ms;
    double full_ms;
  };
  std::vector<CrossoverPoint> sweep;
  double crossover = -1.0;
  {
    // Closure-vs-closure, apples to apples: inference cost is identical on
    // both sides of the threshold decision, so only the cone stage matters.
    auto truth = topogen::generate(params);
    util::Rng rng(seed + 7);
    const core::AsRankInference inference(builder_config.inference);
    auto prev_result = inference.run(paths::PathCorpus::from_records(
        bgpsim::observe(truth, obs_params).routes));
    ConeMap prev_cones = core::recursive_cone(prev_result.graph);

    topogen::EvolveParams evolve;
    evolve.new_stubs = std::max<std::size_t>(2, truth.graph.as_count() / 200);
    evolve.new_peerings = std::max<std::size_t>(1, truth.graph.link_count() / 200);
    for (int round = 0; round < 6; ++round) {
      topogen::evolve(truth, rng, evolve);
      evolve.new_stubs *= 2;
      evolve.new_peerings *= 2;
      evolve.rehome_fraction = std::min(0.5, evolve.rehome_fraction * 2);
      auto result = inference.run(paths::PathCorpus::from_records(
          bgpsim::observe(truth, obs_params).routes));

      core::IncrementalConeStats stats;
      const auto inc_start = std::chrono::steady_clock::now();
      auto inc_cones = core::recursive_cone_incremental(
          prev_result.graph, prev_cones, result.graph,
          /*full_threshold=*/1.1, /*threads=*/1, &stats);
      const double inc_ms = std::chrono::duration<double, std::milli>(
                                std::chrono::steady_clock::now() - inc_start)
                                .count();

      const auto full_start = std::chrono::steady_clock::now();
      const auto full_cones = core::recursive_cone(result.graph);
      const double full_ms = std::chrono::duration<double, std::milli>(
                                 std::chrono::steady_clock::now() - full_start)
                                 .count();
      if (inc_cones != full_cones) {
        std::cerr << "FAIL: incremental closure diverged from full closure\n";
        return 1;
      }

      sweep.push_back({stats.dirty_fraction, inc_ms, full_ms});
      if (crossover < 0 && inc_ms >= full_ms) {
        crossover = stats.dirty_fraction;
      }
      std::cout << "  dirty " << stats.dirty_fraction << ": incremental closure "
                << inc_ms << " ms vs full closure " << full_ms << " ms\n";

      prev_result = std::move(result);
      prev_cones = std::move(inc_cones);
    }
  }
  if (crossover >= 0) {
    std::cout << "incremental stops paying at dirty fraction ~" << crossover << "\n";
  } else {
    std::cout << "incremental stayed cheaper than a full closure across the sweep\n";
  }

  std::ofstream json(json_out);
  json << "{\n  \"bench\": \"ingest\",\n";
  json << "  \"preset\": \"" << preset << "\",\n";
  json << "  \"seed\": " << seed << ",\n";
  json << "  \"hardware_threads\": " << std::thread::hardware_concurrency() << ",\n";
  json << "  \"stream\": {\"steps\": " << stream.size()
       << ", \"messages\": " << messages << ", \"routes\": " << applier.route_count()
       << "},\n";
  json << "  \"updates_per_sec\": " << static_cast<std::uint64_t>(updates_per_sec)
       << ",\n";
  json << "  \"epoch_build_micros\": {\"count\": " << build_micros.size()
       << ", \"p50\": " << p50 << ", \"p99\": " << p99 << "},\n";
  json << "  \"dirty_sweep\": [";
  for (std::size_t i = 0; i < sweep.size(); ++i) {
    if (i != 0) json << ", ";
    json << "{\"dirty_fraction\": " << sweep[i].dirty_fraction
         << ", \"incremental_ms\": " << sweep[i].incremental_ms
         << ", \"full_closure_ms\": " << sweep[i].full_ms << "}";
  }
  json << "],\n";
  json << "  \"crossover_dirty_fraction\": " << crossover << "\n";
  json << "}\n";
  std::cout << "wrote " << json_out << "\n";
  return 0;
}
