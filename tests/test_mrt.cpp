#include <gtest/gtest.h>

#include <span>
#include <sstream>

#include "mrt/bgp4mp.h"
#include "mrt/bgp_attrs.h"
#include "mrt/bytes.h"
#include "mrt/table_dump_v2.h"
#include "mrt/text_table.h"

namespace asrank::mrt {
namespace {

// --------------------------------------------------------------- bytes ----

TEST(Bytes, WriterBigEndian) {
  ByteWriter w;
  w.put_u8(0x01);
  w.put_u16(0x0203);
  w.put_u32(0x04050607);
  const auto& b = w.bytes();
  ASSERT_EQ(b.size(), 7u);
  EXPECT_EQ(b[0], 0x01);
  EXPECT_EQ(b[1], 0x02);
  EXPECT_EQ(b[2], 0x03);
  EXPECT_EQ(b[3], 0x04);
  EXPECT_EQ(b[6], 0x07);
}

TEST(Bytes, ReaderRoundTrip) {
  ByteWriter w;
  w.put_u32(0xdeadbeef);
  w.put_u16(0xcafe);
  w.put_u8(0x42);
  w.put_string("hi");
  ByteReader r(w.bytes());
  EXPECT_EQ(r.get_u32(), 0xdeadbeefu);
  EXPECT_EQ(r.get_u16(), 0xcafeu);
  EXPECT_EQ(r.get_u8(), 0x42u);
  EXPECT_EQ(r.get_string(2), "hi");
  EXPECT_TRUE(r.done());
}

TEST(Bytes, ReaderUnderrunThrows) {
  const std::vector<std::uint8_t> data{1, 2};
  ByteReader r(data);
  EXPECT_EQ(r.get_u16(), 0x0102u);
  EXPECT_THROW((void)r.get_u8(), DecodeError);
}

TEST(Bytes, SubReaderConsumes) {
  const std::vector<std::uint8_t> data{1, 2, 3, 4};
  ByteReader r(data);
  ByteReader sub = r.sub(2);
  EXPECT_EQ(sub.get_u16(), 0x0102u);
  EXPECT_EQ(r.get_u16(), 0x0304u);
  EXPECT_THROW((void)r.sub(1), DecodeError);
}

TEST(Bytes, PatchBackfillsLength) {
  ByteWriter w;
  w.put_u16(0);
  w.put_u32(0);
  w.patch_u16(0, 0xaabb);
  w.patch_u32(2, 0x11223344);
  ByteReader r(w.bytes());
  EXPECT_EQ(r.get_u16(), 0xaabbu);
  EXPECT_EQ(r.get_u32(), 0x11223344u);
  EXPECT_THROW(w.patch_u16(100, 0), std::out_of_range);
}

// --------------------------------------------------------------- attrs ----

BgpAttributes sample_attrs() {
  BgpAttributes attrs;
  attrs.origin = Origin::kEgp;
  attrs.as_path = AsPath{701, 174, 3356};
  attrs.next_hop = 0xc0000201;
  attrs.communities = {Community{3356, 100}, Community{701, 666}};
  return attrs;
}

TEST(Attrs, RoundTrip) {
  const auto attrs = sample_attrs();
  const auto wire = encode_attributes(attrs);
  ByteReader r(wire);
  const auto decoded = decode_attributes(r);
  EXPECT_EQ(decoded, attrs);
}

TEST(Attrs, MinimalPathOnly) {
  BgpAttributes attrs;
  attrs.as_path = AsPath{65000};
  const auto wire = encode_attributes(attrs);
  ByteReader r(wire);
  const auto decoded = decode_attributes(r);
  EXPECT_EQ(decoded.as_path, attrs.as_path);
  EXPECT_FALSE(decoded.next_hop);
  EXPECT_TRUE(decoded.communities.empty());
}

TEST(Attrs, LongPathSplitsSegments) {
  std::vector<Asn> hops;
  for (std::uint32_t i = 1; i <= 300; ++i) hops.emplace_back(i);
  BgpAttributes attrs;
  attrs.as_path = AsPath(hops);
  const auto wire = encode_attributes(attrs);
  ByteReader r(wire);
  EXPECT_EQ(decode_attributes(r).as_path.size(), 300u);
}

TEST(Attrs, AsSetDecodes) {
  // Hand-craft an AS_PATH with an AS_SET segment {30,10,20} after seq [1].
  ByteWriter body;
  body.put_u8(2);  // AS_SEQUENCE
  body.put_u8(1);
  body.put_u32(1);
  body.put_u8(1);  // AS_SET
  body.put_u8(3);
  body.put_u32(30);
  body.put_u32(10);
  body.put_u32(20);
  ByteWriter w;
  w.put_u8(0x40);  // transitive
  w.put_u8(2);     // AS_PATH
  w.put_u8(static_cast<std::uint8_t>(body.size()));
  w.put_bytes(body.bytes());
  ByteReader r(w.bytes());
  const auto decoded = decode_attributes(r);
  EXPECT_TRUE(decoded.has_as_set);
  EXPECT_EQ(decoded.as_path, (AsPath{1, 10, 20, 30}));  // set sorted
  EXPECT_THROW((void)encode_attributes(decoded), std::invalid_argument);
}

TEST(Attrs, UnknownAttributeRoundTripsOpaque) {
  BgpAttributes attrs;
  attrs.as_path = AsPath{1};
  attrs.opaque.push_back(OpaqueAttr{0xc0, 32, {1, 2, 3}});  // LARGE_COMMUNITY-ish
  const auto wire = encode_attributes(attrs);
  ByteReader r(wire);
  const auto decoded = decode_attributes(r);
  ASSERT_EQ(decoded.opaque.size(), 1u);
  EXPECT_EQ(decoded.opaque[0], attrs.opaque[0]);
}

TEST(Attrs, MalformedInputsThrow) {
  {
    ByteWriter w;  // ORIGIN with wrong length
    w.put_u8(0x40);
    w.put_u8(1);
    w.put_u8(2);
    w.put_u16(0);
    ByteReader r(w.bytes());
    EXPECT_THROW((void)decode_attributes(r), DecodeError);
  }
  {
    ByteWriter w;  // no AS_PATH at all
    w.put_u8(0x40);
    w.put_u8(1);
    w.put_u8(1);
    w.put_u8(0);
    ByteReader r(w.bytes());
    EXPECT_THROW((void)decode_attributes(r), DecodeError);
  }
  {
    ByteWriter w;  // truncated attribute body
    w.put_u8(0x40);
    w.put_u8(2);
    w.put_u8(10);  // claims 10 bytes, provides none
    ByteReader r(w.bytes());
    EXPECT_THROW((void)decode_attributes(r), DecodeError);
  }
}

TEST(Attrs, CommunityRawConversion) {
  const Community c{3356, 100};
  EXPECT_EQ(c.raw(), (3356u << 16) | 100u);
  EXPECT_EQ(Community::from_raw(c.raw()), c);
}

// ------------------------------------------------------- table dump v2 ----

RibDump sample_dump() {
  RibDump dump;
  dump.collector_bgp_id = 0xc0000201;
  dump.view_name = "test-view";
  dump.timestamp = 1367193600;
  dump.peers.push_back(PeerEntry{0x0a000001, 0x0a000001, Asn(701)});
  dump.peers.push_back(PeerEntry{0x0a000002, 0x0a000002, Asn(3356)});

  RibEntry entry;
  entry.prefix = *Prefix::parse("192.0.2.0/24");
  RibRoute route;
  route.peer_index = 0;
  route.originated_time = 1367000000;
  route.attrs = sample_attrs();
  entry.routes.push_back(route);
  route.peer_index = 1;
  route.attrs.as_path = AsPath{3356, 64500};
  entry.routes.push_back(route);
  dump.rib.push_back(entry);

  RibEntry entry2;
  entry2.prefix = *Prefix::parse("198.51.100.0/25");  // non-octet-aligned length
  RibRoute route2;
  route2.peer_index = 1;
  route2.attrs.as_path = AsPath{3356};
  entry2.routes.push_back(route2);
  dump.rib.push_back(entry2);
  return dump;
}

TEST(TableDumpV2, RoundTrip) {
  const auto dump = sample_dump();
  std::stringstream stream;
  write_table_dump_v2(dump, stream);
  const auto parsed = read_table_dump_v2(stream);
  EXPECT_EQ(parsed, dump);
}

TEST(TableDumpV2, EmptyRibRoundTrips) {
  RibDump dump;
  dump.view_name = "empty";
  dump.peers.push_back(PeerEntry{1, 1, Asn(1)});
  std::stringstream stream;
  write_table_dump_v2(dump, stream);
  const auto parsed = read_table_dump_v2(stream);
  EXPECT_EQ(parsed.peers.size(), 1u);
  EXPECT_TRUE(parsed.rib.empty());
}

TEST(TableDumpV2, MissingPeerTableThrows) {
  std::stringstream empty;
  EXPECT_THROW((void)read_table_dump_v2(empty), DecodeError);
}

TEST(TableDumpV2, TruncatedBodyThrows) {
  const auto dump = sample_dump();
  std::stringstream stream;
  write_table_dump_v2(dump, stream);
  std::string text = stream.str();
  text.resize(text.size() - 5);
  std::stringstream truncated(text);
  EXPECT_THROW((void)read_table_dump_v2(truncated), DecodeError);
}

// -------------------------------------------------------------- bgp4mp ----

TEST(Bgp4mp, UpdateRoundTrip) {
  UpdateMessage update;
  update.timestamp = 1367193600;
  update.peer_as = Asn(701);
  update.local_as = Asn(6447);
  update.peer_ip = 0x0a000001;
  update.local_ip = 0x0a0000fe;
  update.announced = {*Prefix::parse("192.0.2.0/24"), *Prefix::parse("10.0.0.0/8")};
  update.withdrawn = {*Prefix::parse("198.51.100.0/24")};
  update.attrs = sample_attrs();

  std::stringstream stream;
  write_update(update, stream);
  const auto parsed = read_updates(stream);
  ASSERT_EQ(parsed.size(), 1u);
  EXPECT_EQ(parsed[0], update);
}

TEST(Bgp4mp, WithdrawOnlyUpdate) {
  UpdateMessage update;
  update.peer_as = Asn(1);
  update.local_as = Asn(2);
  update.withdrawn = {*Prefix::parse("192.0.2.0/24")};
  std::stringstream stream;
  write_update(update, stream);
  const auto parsed = read_updates(stream);
  ASSERT_EQ(parsed.size(), 1u);
  EXPECT_TRUE(parsed[0].announced.empty());
  EXPECT_EQ(parsed[0].withdrawn.size(), 1u);
}

TEST(Bgp4mp, MultipleMessagesStream) {
  std::stringstream stream;
  for (std::uint32_t i = 1; i <= 5; ++i) {
    UpdateMessage update;
    update.timestamp = i;
    update.peer_as = Asn(i);
    update.local_as = Asn(100);
    update.announced = {Prefix::v4(i << 8, 24)};
    update.attrs.as_path = AsPath{i, i + 1};
    write_update(update, stream);
  }
  const auto parsed = read_updates(stream);
  ASSERT_EQ(parsed.size(), 5u);
  for (std::uint32_t i = 0; i < 5; ++i) EXPECT_EQ(parsed[i].timestamp, i + 1);
}

TEST(Bgp4mp, SkipsForeignRecordTypes) {
  // A TABLE_DUMP_V2 record interleaved in an updates stream is skipped.
  std::stringstream stream;
  RibDump dump;
  dump.peers.push_back(PeerEntry{1, 1, Asn(1)});
  write_table_dump_v2(dump, stream);
  UpdateMessage update;
  update.peer_as = Asn(1);
  update.local_as = Asn(2);
  update.announced = {*Prefix::parse("192.0.2.0/24")};
  update.attrs.as_path = AsPath{1};
  write_update(update, stream);
  const auto parsed = read_updates(stream);
  EXPECT_EQ(parsed.size(), 1u);
}

TEST(Bgp4mp, PrependedPathRoundTripsAndDedups) {
  // Prepending survives the codec untouched; dedup is the sanitizer's
  // explicit compress_prepending step, not a decode side effect.
  UpdateMessage update;
  update.peer_as = Asn(701);
  update.local_as = Asn(6447);
  update.announced = {*Prefix::parse("192.0.2.0/24")};
  update.attrs.as_path = AsPath{701, 701, 701, 174, 174, 13335};
  std::stringstream stream;
  write_update(update, stream);
  const auto parsed = read_updates(stream);
  ASSERT_EQ(parsed.size(), 1u);
  EXPECT_EQ(parsed[0].attrs.as_path, (AsPath{701, 701, 701, 174, 174, 13335}));
  EXPECT_TRUE(parsed[0].attrs.as_path.has_prepending());
  EXPECT_EQ(parsed[0].attrs.as_path.compress_prepending(), (AsPath{701, 174, 13335}));
}

// Hand-assemble one BGP4MP_MESSAGE_AS4 record whose UPDATE carries the given
// raw path-attribute bytes (write_update cannot produce AS_SET attributes).
void write_raw_update_record(std::ostream& os, std::span<const std::uint8_t> attrs,
                             const Prefix& announced) {
  ByteWriter msg;
  for (int i = 0; i < 16; ++i) msg.put_u8(0xff);  // BGP marker
  const std::size_t len_slot = msg.size();
  msg.put_u16(0);
  msg.put_u8(2);   // UPDATE
  msg.put_u16(0);  // no withdrawals
  msg.put_u16(static_cast<std::uint16_t>(attrs.size()));
  msg.put_bytes(attrs);
  msg.put_u8(announced.length());
  const auto addr = static_cast<std::uint32_t>(announced.bits());
  for (unsigned i = 0; i < (announced.length() + 7u) / 8u; ++i) {
    msg.put_u8(static_cast<std::uint8_t>(addr >> (24 - 8 * i)));
  }
  msg.patch_u16(len_slot, static_cast<std::uint16_t>(msg.size()));

  ByteWriter body;
  body.put_u32(64512);  // peer AS
  body.put_u32(6447);   // local AS
  body.put_u16(0);      // interface index
  body.put_u16(1);      // AFI IPv4
  body.put_u32(0x0a000001);
  body.put_u32(0x0a0000fe);
  body.put_bytes(msg.bytes());
  ByteWriter header;
  header.put_u32(1367193600);
  header.put_u16(16);  // BGP4MP
  header.put_u16(4);   // MESSAGE_AS4
  header.put_u32(static_cast<std::uint32_t>(body.size()));
  os.write(reinterpret_cast<const char*>(header.bytes().data()),
           static_cast<std::streamsize>(header.size()));
  os.write(reinterpret_cast<const char*>(body.bytes().data()),
           static_cast<std::streamsize>(body.size()));
}

TEST(Bgp4mp, AsSetUpdateDecodesFlaggedAndRefusesReencode) {
  ByteWriter path;
  path.put_u8(2);  // AS_SEQUENCE [65000]
  path.put_u8(1);
  path.put_u32(65000);
  path.put_u8(1);  // AS_SET {20, 10}
  path.put_u8(2);
  path.put_u32(20);
  path.put_u32(10);
  ByteWriter attrs;
  attrs.put_u8(0x40);  // transitive
  attrs.put_u8(2);     // AS_PATH
  attrs.put_u8(static_cast<std::uint8_t>(path.size()));
  attrs.put_bytes(path.bytes());

  std::stringstream stream;
  write_raw_update_record(stream, attrs.bytes(), *Prefix::parse("192.0.2.0/24"));
  const auto parsed = read_updates(stream);
  ASSERT_EQ(parsed.size(), 1u);
  EXPECT_TRUE(parsed[0].attrs.has_as_set);
  EXPECT_EQ(parsed[0].attrs.as_path, (AsPath{65000, 10, 20}));  // set sorted
  // Aggregated paths never re-enter a sanitized corpus: re-encoding rejects.
  std::stringstream reencoded;
  EXPECT_THROW(write_update(parsed[0], reencoded), std::invalid_argument);
}

// One record of every skippable kind around a single good UPDATE: nothing
// aborts the stream and every skip is attributed to a counter.
TEST(Bgp4mp, ReaderCountsSkippedRecords) {
  std::stringstream stream;
  const auto put_record = [&stream](std::uint16_t type, std::uint16_t subtype,
                                    std::span<const std::uint8_t> body) {
    ByteWriter header;
    header.put_u32(7);
    header.put_u16(type);
    header.put_u16(subtype);
    header.put_u32(static_cast<std::uint32_t>(body.size()));
    stream.write(reinterpret_cast<const char*>(header.bytes().data()),
                 static_cast<std::streamsize>(header.size()));
    stream.write(reinterpret_cast<const char*>(body.data()),
                 static_cast<std::streamsize>(body.size()));
  };

  const std::vector<std::uint8_t> junk = {1, 2, 3, 4};
  put_record(12, 0, junk);  // unknown MRT type (TABLE_DUMP v1 era)
  put_record(16, 1, junk);  // BGP4MP, unknown subtype (STATE_CHANGE)

  ByteWriter v6;  // BGP4MP_MESSAGE_AS4 on an IPv6 session
  v6.put_u32(1);
  v6.put_u32(2);
  v6.put_u16(0);
  v6.put_u16(2);  // AFI IPv6
  put_record(16, 4, v6.bytes());

  ByteWriter keepalive;  // valid session header, BGP KEEPALIVE message
  keepalive.put_u32(1);
  keepalive.put_u32(2);
  keepalive.put_u16(0);
  keepalive.put_u16(1);  // AFI IPv4
  keepalive.put_u32(0);
  keepalive.put_u32(0);
  for (int i = 0; i < 16; ++i) keepalive.put_u8(0xff);
  keepalive.put_u16(19);
  keepalive.put_u8(4);  // KEEPALIVE
  put_record(16, 4, keepalive.bytes());

  UpdateMessage update;
  update.peer_as = Asn(1);
  update.local_as = Asn(2);
  update.announced = {*Prefix::parse("192.0.2.0/24")};
  update.attrs.as_path = AsPath{1, 3};
  write_update(update, stream);

  UpdateReaderStats stats;
  auto parsed = try_read_updates(stream, &stats);
  ASSERT_TRUE(parsed.ok());
  ASSERT_EQ(parsed.value().size(), 1u);
  EXPECT_EQ(parsed.value()[0].attrs.as_path, (AsPath{1, 3}));
  EXPECT_EQ(stats.records, 5u);
  EXPECT_EQ(stats.updates, 1u);
  EXPECT_EQ(stats.unknown_type, 1u);
  EXPECT_EQ(stats.unknown_subtype, 1u);
  EXPECT_EQ(stats.non_ipv4, 1u);
  EXPECT_EQ(stats.non_update, 1u);
  EXPECT_EQ(stats.skipped(), 4u);
}

TEST(Bgp4mp, ReaderResumesAfterTruncationOnceBytesArrive) {
  // The tail-follow contract: a mid-record EOF is kTruncated, the stream may
  // be cleared and rewound to the record start, and the same reader picks up
  // once the writer finishes the record.
  UpdateMessage update;
  update.peer_as = Asn(3356);
  update.local_as = Asn(6447);
  update.announced = {*Prefix::parse("10.0.0.0/8")};
  update.attrs.as_path = AsPath{3356, 1299};
  std::stringstream full(std::ios::in | std::ios::out | std::ios::binary);
  write_update(update, full);
  const std::string bytes = full.str();

  std::stringstream feed(std::ios::in | std::ios::out | std::ios::binary);
  feed.str(bytes.substr(0, bytes.size() - 3));  // writer mid-record
  UpdateReader reader(feed);
  const std::streampos start = feed.tellg();
  auto first = reader.next();
  ASSERT_FALSE(first.ok());
  EXPECT_EQ(first.error().code, ErrorCode::kTruncated);

  feed.clear();
  feed.seekp(0, std::ios::end);
  feed.write(bytes.data() + (bytes.size() - 3), 3);  // writer catches up
  feed.seekg(start);
  auto second = reader.next();
  ASSERT_TRUE(second.ok());
  ASSERT_TRUE(second.value().has_value());
  EXPECT_EQ(*second.value(), update);
  EXPECT_EQ(reader.stats().updates, 1u);

  auto eof = reader.next();
  ASSERT_TRUE(eof.ok());
  EXPECT_FALSE(eof.value().has_value());
}

// ---------------------------------------------------------- text table ----

TEST(TextTable, ParseCiscoStyle) {
  std::stringstream text(
      "BGP table version is 1, local router ID is 192.0.2.1\n"
      "   Network          Next Hop            Metric LocPrf Weight Path\n"
      "*> 1.0.0.0/24       203.0.113.1              0 100 0 701 174 13335 i\n"
      "*  1.0.0.0/24       198.51.100.7             0 100 0 3356 13335 i\n");
  const auto routes = parse_show_ip_bgp(text);
  ASSERT_EQ(routes.size(), 2u);
  EXPECT_TRUE(routes[0].best);
  EXPECT_FALSE(routes[1].best);
  EXPECT_EQ(routes[0].path, (AsPath{701, 174, 13335}));
  EXPECT_EQ(routes[0].prefix.str(), "1.0.0.0/24");
}

TEST(TextTable, ContinuationLinesInheritNetwork) {
  std::stringstream text(
      "*> 1.0.0.0/24       203.0.113.1 0 100 0 701 i\n"
      "*  198.51.100.7 0 100 0 3356 i\n");
  const auto routes = parse_show_ip_bgp(text);
  ASSERT_EQ(routes.size(), 2u);
  EXPECT_EQ(routes[1].prefix.str(), "1.0.0.0/24");
  EXPECT_EQ(routes[1].path, (AsPath{3356}));
}

TEST(TextTable, ShowIpBgpRoundTrip) {
  std::vector<TextRoute> routes{
      {*Prefix::parse("1.0.0.0/24"), AsPath{701, 174}, true},
      {*Prefix::parse("2.0.0.0/16"), AsPath{3356}, false},
  };
  std::stringstream text;
  write_show_ip_bgp(routes, text);
  const auto parsed = parse_show_ip_bgp(text);
  EXPECT_EQ(parsed, routes);
}

TEST(TextTable, ParseRejectsMalformed) {
  std::stringstream no_origin("*> 1.0.0.0/24 203.0.113.1 0 100 0 701\n");
  EXPECT_THROW((void)parse_show_ip_bgp(no_origin), std::runtime_error);
  std::stringstream continuation_first("*  198.51.100.7 0 100 0 3356 i\n");
  EXPECT_THROW((void)parse_show_ip_bgp(continuation_first), std::runtime_error);
  std::stringstream bad_hop("*> 1.0.0.0/24 203.0.113.1 0 100 0 70x1 i\n");
  EXPECT_THROW((void)parse_show_ip_bgp(bad_hop), std::runtime_error);
}

TEST(TextTable, PipeTableRoundTrip) {
  std::vector<TextRoute> routes{
      {*Prefix::parse("1.0.0.0/24"), AsPath{701, 174}, true},
      {*Prefix::parse("2001:db8::/32"), AsPath{3356, 64500}, true},
  };
  std::stringstream text;
  write_pipe_table(routes, text);
  const auto parsed = parse_pipe_table(text);
  EXPECT_EQ(parsed, routes);
}

TEST(TextTable, PipeTableSkipsCommentsRejectsJunk) {
  std::stringstream ok("# comment\n1.0.0.0/24|701 174\n");
  EXPECT_EQ(parse_pipe_table(ok).size(), 1u);
  std::stringstream bad("1.0.0.0/24|701|extra\n");
  EXPECT_THROW((void)parse_pipe_table(bad), std::runtime_error);
}

}  // namespace
}  // namespace asrank::mrt
