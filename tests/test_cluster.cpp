// Cluster serving tests: ClusterMap hashing, the scoped client surface,
// circuit breakers, epoch consistency, and — the core contract — that a
// ClusterClient over N asrankd processes answers byte-identically to one
// monolithic server holding the same snapshots.
//
// The multi-process integration and chaos tests fork real server processes
// (port reported over a pipe) and run last in this file; every fork happens
// before the parent spawns its own reference-server thread for that test.
#include <gtest/gtest.h>

#include <csignal>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <optional>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "core/cones.h"
#include "obs/metrics.h"
#include "serve/client.h"
#include "serve/cluster_client.h"
#include "serve/cluster_map.h"
#include "serve/query_scope.h"
#include "serve/server.h"
#include "serve/snapshot_registry.h"
#include "serve/transport.h"
#include "snapshot/snapshot.h"
#include "util/rng.h"

namespace asrank::serve {
namespace {

// Same seed topology as test_serve: clique {1,2}, 3 multihomed, chain to 4,
// peering 4-5, siblings 6-7.
AsGraph make_graph() {
  AsGraph graph;
  graph.add_p2p(Asn(1), Asn(2));
  graph.add_p2c(Asn(1), Asn(3));
  graph.add_p2c(Asn(2), Asn(3));
  graph.add_p2c(Asn(3), Asn(4));
  graph.add_p2c(Asn(1), Asn(5));
  graph.add_p2p(Asn(4), Asn(5));
  graph.add_p2c(Asn(2), Asn(6));
  graph.add_s2s(Asn(6), Asn(7));
  return graph;
}

snapshot::SnapshotIndex make_index() {
  const auto graph = make_graph();
  const std::unordered_map<Asn, std::size_t> tdeg = {
      {Asn(1), 3}, {Asn(2), 3}, {Asn(3), 2}};
  return snapshot::build_snapshot(graph, tdeg, core::recursive_cone(graph),
                                  {Asn(1), Asn(2)});
}

// Older vintage: 4 and 5 gone, 8 appeared under 3.
snapshot::SnapshotIndex make_index_b() {
  AsGraph graph;
  graph.add_p2p(Asn(1), Asn(2));
  graph.add_p2c(Asn(1), Asn(3));
  graph.add_p2c(Asn(2), Asn(3));
  graph.add_p2c(Asn(3), Asn(8));
  graph.add_p2c(Asn(2), Asn(6));
  graph.add_s2s(Asn(6), Asn(7));
  const std::unordered_map<Asn, std::size_t> tdeg = {
      {Asn(1), 2}, {Asn(2), 2}, {Asn(3), 1}};
  return snapshot::build_snapshot(graph, tdeg, core::recursive_cone(graph),
                                  {Asn(1), Asn(2)});
}

// A second algorithm's view: 1->5 gone, 4-5 peering inverted to 5->4.
snapshot::SnapshotIndex make_variant_index() {
  AsGraph graph;
  graph.add_p2p(Asn(1), Asn(2));
  graph.add_p2c(Asn(1), Asn(3));
  graph.add_p2c(Asn(2), Asn(3));
  graph.add_p2c(Asn(3), Asn(4));
  graph.add_p2c(Asn(5), Asn(4));
  graph.add_p2c(Asn(2), Asn(6));
  graph.add_s2s(Asn(6), Asn(7));
  const std::unordered_map<Asn, std::size_t> tdeg = {
      {Asn(1), 3}, {Asn(2), 3}, {Asn(3), 2}};
  return snapshot::build_snapshot(graph, tdeg, core::recursive_cone(graph),
                                  {Asn(1), Asn(2)});
}

snapshot::SnapshotIndex make_multi_index() {
  std::vector<std::pair<std::string, snapshot::SnapshotIndex>> parts;
  parts.emplace_back("asrank", make_index());
  parts.emplace_back("gao2001", make_variant_index());
  auto combined = snapshot::combine_snapshots(std::move(parts));
  EXPECT_TRUE(combined.ok());
  return std::move(combined).value();
}

std::vector<Asn> sweep_ases() {
  return {Asn(1), Asn(2), Asn(3), Asn(4), Asn(5),
          Asn(6), Asn(7), Asn(8), Asn(99)};
}

// One in-process asrankd: registry + server thread on an ephemeral port.
// `install` populates the epochs before the listener accepts queries.
class MemberServer {
 public:
  template <typename InstallFn>
  explicit MemberServer(InstallFn&& install, std::size_t retention = 4) {
    SnapshotRegistryConfig config;
    config.retention = retention;
    snapshots_.emplace(config, &metrics_);
    install(*snapshots_);
    ServerConfig server_config;
    server_config.port = 0;
    server_config.threads = 2;
    server_.emplace(*snapshots_, server_config);
    thread_ = std::thread([this] { server_->run(); });
  }

  ~MemberServer() {
    server_->stop();
    thread_.join();
  }

  [[nodiscard]] std::uint16_t port() const { return server_->port(); }
  [[nodiscard]] SnapshotRegistry& snapshots() { return *snapshots_; }

 private:
  obs::Registry metrics_;
  std::optional<SnapshotRegistry> snapshots_;
  std::optional<Server> server_;
  std::thread thread_;
};

ClusterEndpoint loopback(std::uint16_t port) {
  return ClusterEndpoint{"127.0.0.1", port};
}

// ------------------------------------------------------------ cluster map --

TEST(ClusterMap, ParseBuildsDeterministicSlotTable) {
  auto map = ClusterMap::parse("a:1,b:2,c:3", {.slots = 16, .replication = 2});
  ASSERT_TRUE(map.ok()) << map.error().message();
  EXPECT_EQ(map.value().endpoints().size(), 3u);
  EXPECT_EQ(map.value().slot_count(), 16u);
  EXPECT_EQ(map.value().replication(), 2u);
  for (std::size_t slot = 0; slot < 16; ++slot) {
    const auto replicas = map.value().replicas(slot);
    ASSERT_EQ(replicas.size(), 2u);
    EXPECT_NE(replicas[0], replicas[1]);
  }
  // The same spec builds the identical table: routing needs no coordination.
  auto again = ClusterMap::parse("a:1,b:2,c:3", {.slots = 16, .replication = 2});
  ASSERT_TRUE(again.ok());
  for (std::size_t slot = 0; slot < 16; ++slot) {
    const auto lhs = map.value().replicas(slot);
    const auto rhs = again.value().replicas(slot);
    EXPECT_TRUE(std::equal(lhs.begin(), lhs.end(), rhs.begin(), rhs.end()));
  }
  // slot_of is a pure function of the ASN.
  EXPECT_EQ(map.value().slot_of(Asn(3356)), map.value().slot_of(Asn(3356)));
  EXPECT_LT(map.value().slot_of(Asn(3356)), 16u);
}

TEST(ClusterMap, ReplicationClampsToClusterSize) {
  auto map = ClusterMap::parse("a:1,b:2", {.slots = 8, .replication = 5});
  ASSERT_TRUE(map.ok());
  EXPECT_EQ(map.value().replication(), 2u);
}

TEST(ClusterMap, RejectsMalformedSpecs) {
  EXPECT_EQ(ClusterMap::parse("", {}).error().code, ErrorCode::kInvalidArgument);
  EXPECT_EQ(ClusterMap::parse("hostonly", {}).error().code,
            ErrorCode::kInvalidArgument);
  EXPECT_EQ(ClusterMap::parse("a:0", {}).error().code,
            ErrorCode::kInvalidArgument);
  EXPECT_EQ(ClusterMap::parse("a:1,a:1", {}).error().code,
            ErrorCode::kInvalidArgument);
  EXPECT_EQ(ClusterMap::make({loopback(1)}, {.slots = 0, .replication = 1})
                .error()
                .code,
            ErrorCode::kInvalidArgument);
}

TEST(ClusterMap, RendezvousKeepsPrimariesStableUnderMembershipChange) {
  // Removing one endpoint must only reassign the slots it served: every
  // slot whose first choice survives keeps that first choice.
  const ClusterMapConfig config{.slots = 64, .replication = 1};
  auto three = ClusterMap::make({{"h", 1}, {"h", 2}, {"h", 3}}, config);
  auto two = ClusterMap::make({{"h", 1}, {"h", 2}}, config);
  ASSERT_TRUE(three.ok());
  ASSERT_TRUE(two.ok());
  for (std::size_t slot = 0; slot < 64; ++slot) {
    const auto before =
        three.value().endpoints()[three.value().replicas(slot)[0]].label();
    const auto after =
        two.value().endpoints()[two.value().replicas(slot)[0]].label();
    if (before != "h:3") EXPECT_EQ(after, before) << "slot " << slot;
  }
}

// ----------------------------------------------------- scoped client API --

TEST(QueryScopeApi, ScopedAndLegacyCallsAgree) {
  MemberServer member(
      [](SnapshotRegistry& s) { ASSERT_TRUE(s.install("cur", make_multi_index()).ok()); });
  Client client = Client::dial("127.0.0.1", member.port()).value();

  const QueryScope plain{};
  EXPECT_EQ(client.try_cone(Asn(1), plain).value(),
            client.try_cone(Asn(1)).value());
  EXPECT_EQ(client.try_top(3, plain).value(), client.try_top(3).value());

  // An explicit scope is used exactly as given, ignoring mutable state.
  client.set_algorithm("gao2001");
  const QueryScope primary{"", "asrank"};
  EXPECT_EQ(client.try_cone_size(Asn(1), primary).value(), 4u);
  // The bound scope flows through legacy calls: gao2001 drops 5 from cone(1).
  EXPECT_EQ(client.try_cone_size(Asn(1)).value(), 3u);
  // And scoped calls for the variant agree with the legacy path.
  const QueryScope variant{"", "gao2001"};
  EXPECT_EQ(client.try_cone(Asn(1), variant).value(),
            client.try_cone(Asn(1)).value());

  // with_scope binds a default for legacy calls without mutation elsewhere.
  client.with_scope(QueryScope{"cur", "asrank"});
  EXPECT_EQ(client.try_cone_size(Asn(1)).value(), 4u);
  EXPECT_EQ(client.scope().epoch, "cur");
}

TEST(QueryScopeApi, AlgosListsSectionsPrimaryFirst) {
  MemberServer member([](SnapshotRegistry& s) {
    ASSERT_TRUE(s.install("old", make_index_b()).ok());
    ASSERT_TRUE(s.install("cur", make_multi_index()).ok());
  });
  Client client = Client::dial("127.0.0.1", member.port()).value();
  const std::vector<std::string> multi = {"asrank", "gao2001"};
  EXPECT_EQ(client.try_algos(QueryScope{}).value(), multi);
  EXPECT_EQ(client.try_algos(QueryScope{"cur", ""}).value(), multi);
  // The older epoch has a single unnamed-primary section.
  EXPECT_EQ(client.try_algos(QueryScope{"old", ""}).value().size(), 1u);
  EXPECT_EQ(client.try_algos(QueryScope{"nope", ""}).error().code,
            ErrorCode::kUnknownEpoch);
}

TEST(QueryScopeApi, AmbiguousEpochLabelsAreRejectedAtInstall) {
  obs::Registry metrics;
  SnapshotRegistry snapshots({}, &metrics);
  // A registered algorithm name cannot label an epoch.
  const auto clash = snapshots.install("asrank", make_index());
  ASSERT_FALSE(clash.ok());
  EXPECT_EQ(clash.error().code, ErrorCode::kInvalidArgument);
  EXPECT_NE(clash.error().context.find("ambiguous epoch label"),
            std::string::npos);
  // Nor can a section name of a resident epoch (gao2001 is also registered;
  // sanity-check the resident-section arm with the snapshot's own sections).
  ASSERT_TRUE(snapshots.install("cur", make_multi_index()).ok());
  const auto resident = snapshots.install("gao2001", make_index());
  ASSERT_FALSE(resident.ok());
  EXPECT_EQ(resident.error().code, ErrorCode::kInvalidArgument);
  // Valid labels still install.
  EXPECT_TRUE(snapshots.install("cur-2", make_index()).ok());
}

TEST(TransportSeam, ClassifiesServerErrorsAndBoundsBackoff) {
  EXPECT_EQ(classify_server_error("unknown epoch 'x'"), ErrorCode::kUnknownEpoch);
  EXPECT_EQ(classify_server_error("unknown algorithm 'x'"),
            ErrorCode::kUnknownAlgorithm);
  EXPECT_EQ(classify_server_error("bad frame"), ErrorCode::kProtocol);
  util::Rng rng(7);
  for (int attempt = 0; attempt < 8; ++attempt) {
    const auto delay = backoff_delay_ms(attempt, 50, 400, rng);
    const auto cap = std::min<std::uint64_t>(400, 50ull << attempt);
    EXPECT_GE(delay, cap / 2);
    EXPECT_LE(delay, cap);
  }
}

// -------------------------------------------------------- circuit breaker --

TEST(ClusterBreaker, OpensAfterThresholdAndCoolsDownOnFakeClock) {
  // Nothing listens on 127.0.0.1:1 — every dial is refused.
  auto map = ClusterMap::make({loopback(1)}, {.slots = 4, .replication = 1});
  ASSERT_TRUE(map.ok());
  std::atomic<std::uint64_t> clock{1000};
  obs::Registry metrics;
  ClusterClientConfig config;
  config.failure_threshold = 2;
  config.now_ms = [&clock] { return clock.load(); };
  config.metrics = &metrics;
  ClusterClient client(std::move(map).value(), std::move(config));

  EXPECT_EQ(client.try_ping().error().code, ErrorCode::kUnavailable);
  EXPECT_EQ(client.endpoint_state(0), HealthState::kClosed);
  EXPECT_EQ(client.try_ping().error().code, ErrorCode::kUnavailable);
  EXPECT_EQ(client.endpoint_state(0), HealthState::kOpen);

  // While open, requests are rejected without touching the wire.
  auto& fanout = metrics.counter("asrank_cluster_fanout_requests_total");
  const auto dispatched = fanout.value();
  const auto rejected = client.try_ping();
  EXPECT_EQ(rejected.error().code, ErrorCode::kUnavailable);
  EXPECT_NE(rejected.error().context.find("circuit breaker open"),
            std::string::npos);
  EXPECT_EQ(fanout.value(), dispatched);

  // Past the cool-down (first open window is at most open_base_ms), the
  // breaker admits one half-open probe; its failure re-opens immediately.
  clock += 1000;
  EXPECT_EQ(client.try_ping().error().code, ErrorCode::kUnavailable);
  EXPECT_EQ(fanout.value(), dispatched + 1);
  EXPECT_EQ(client.endpoint_state(0), HealthState::kOpen);
  EXPECT_EQ(metrics
                .counter("asrank_cluster_endpoint_opens_total", "",
                         {{"endpoint", "127.0.0.1:1"}})
                .value(),
            2u);
}

TEST(ClusterBreaker, SuccessesKeepBreakerClosed) {
  // The half-open -> closed recovery transition is exercised end to end by
  // ClusterProcess.ChaosSigkillTypedErrorsAndRecovery.
  MemberServer member(
      [](SnapshotRegistry& s) { ASSERT_TRUE(s.install("seed", make_index()).ok()); });
  auto map = ClusterMap::make({loopback(member.port())},
                              {.slots = 4, .replication = 1});
  ASSERT_TRUE(map.ok());
  obs::Registry metrics;
  ClusterClientConfig config;
  config.metrics = &metrics;
  ClusterClient client(std::move(map).value(), std::move(config));
  for (int i = 0; i < 5; ++i) ASSERT_TRUE(client.try_ping().ok());
  EXPECT_EQ(client.endpoint_state(0), HealthState::kClosed);
  EXPECT_EQ(metrics.counter("asrank_cluster_unavailable_total").value(), 0u);
}

// ------------------------------------------- cluster vs monolith equality --

void install_two_epochs(SnapshotRegistry& snapshots) {
  ASSERT_TRUE(snapshots.install("old", make_index_b()).ok());
  ASSERT_TRUE(snapshots.install("cur", make_multi_index()).ok());
}

// Every query answered by the cluster must be byte-identical to the
// monolithic answer, including cross-shard scatter ops, under the default
// scope, a pinned epoch, and a non-primary algorithm.
void expect_cluster_matches_monolith(ClusterClient& cluster, Client& mono) {
  const std::vector<QueryScope> scopes = {
      QueryScope{},
      QueryScope{"cur", ""},
      QueryScope{"old", ""},
      QueryScope{"", "gao2001"},
      QueryScope{"cur", "gao2001"},
  };
  for (const auto& scope : scopes) {
    // gao2001 only exists in epoch "cur".
    if (scope.algorithm == "gao2001" && scope.epoch == "old") continue;
    SCOPED_TRACE("scope epoch='" + scope.epoch + "' algo='" + scope.algorithm +
                 "'");
    for (const Asn as : sweep_ases()) {
      EXPECT_EQ(cluster.try_rank(as, scope).value(),
                mono.try_rank(as, scope).value());
      EXPECT_EQ(cluster.try_cone_size(as, scope).value(),
                mono.try_cone_size(as, scope).value());
      EXPECT_EQ(cluster.try_cone(as, scope).value(),
                mono.try_cone(as, scope).value());
      EXPECT_EQ(cluster.try_providers(as, scope).value(),
                mono.try_providers(as, scope).value());
      EXPECT_EQ(cluster.try_customers(as, scope).value(),
                mono.try_customers(as, scope).value());
      EXPECT_EQ(cluster.try_peers(as, scope).value(),
                mono.try_peers(as, scope).value());
      EXPECT_EQ(cluster.try_path_to_clique(as, scope).value(),
                mono.try_path_to_clique(as, scope).value());
      for (const Asn other : sweep_ases()) {
        EXPECT_EQ(cluster.try_relationship(as, other, scope).value(),
                  mono.try_relationship(as, other, scope).value());
        EXPECT_EQ(cluster.try_in_cone(as, other, scope).value(),
                  mono.try_in_cone(as, other, scope).value());
        // Operand pairs land on different shards for most pairs: this is
        // the client-side set_intersection path.
        EXPECT_EQ(cluster.try_cone_intersection(as, other, scope).value(),
                  mono.try_cone_intersection(as, other, scope).value());
      }
    }
    for (const std::uint32_t n : {0u, 1u, 3u, 100u}) {
      EXPECT_EQ(cluster.try_top(n, scope).value(), mono.try_top(n, scope).value())
          << "top " << n;
    }
    EXPECT_EQ(cluster.try_clique(scope).value(), mono.try_clique(scope).value());
    EXPECT_EQ(cluster.try_algos(scope).value(), mono.try_algos(scope).value());
  }
  EXPECT_EQ(cluster.try_epochs().value(), mono.try_epochs().value());
  EXPECT_EQ(cluster.try_disagree("asrank", "gao2001", 0, QueryScope{}).value(),
            mono.try_disagree("asrank", "gao2001", 0, QueryScope{}).value());
  EXPECT_EQ(cluster.try_disagree("asrank", "gao2001", 1, QueryScope{}).value(),
            mono.try_disagree("asrank", "gao2001", 1, QueryScope{}).value());
  EXPECT_EQ(cluster.try_cone_diff(Asn(1), "old", "cur").value(),
            mono.try_cone_diff(Asn(1), "old", "cur").value());
  // Stats is runtime state, not snapshot state: shape only.
  EXPECT_EQ(cluster.try_stats_text(QueryScope{}).value().rfind("query_type", 0),
            0u);
}

TEST(ClusterEquality, ThreeMembersMatchMonolith) {
  MemberServer a(install_two_epochs);
  MemberServer b(install_two_epochs);
  MemberServer c(install_two_epochs);
  MemberServer mono_member(install_two_epochs);

  auto map = ClusterMap::make(
      {loopback(a.port()), loopback(b.port()), loopback(c.port())},
      {.slots = 16, .replication = 2});
  ASSERT_TRUE(map.ok());
  obs::Registry metrics;
  ClusterClientConfig config;
  config.metrics = &metrics;
  ClusterClient cluster(std::move(map).value(), std::move(config));
  Client mono = Client::dial("127.0.0.1", mono_member.port()).value();

  expect_cluster_matches_monolith(cluster, mono);
  EXPECT_EQ(cluster.try_resolved_epoch().value(), "cur");
  EXPECT_EQ(metrics.counter("asrank_cluster_epoch_skew_total").value(), 0u);
}

TEST(ClusterEquality, SingleMemberClusterIsAPlainClient) {
  MemberServer member(install_two_epochs);
  auto map = ClusterMap::make({loopback(member.port())}, {});
  ASSERT_TRUE(map.ok());
  obs::Registry metrics;
  ClusterClientConfig config;
  config.metrics = &metrics;
  ClusterClient cluster(std::move(map).value(), std::move(config));
  Client mono = Client::dial("127.0.0.1", member.port()).value();
  expect_cluster_matches_monolith(cluster, mono);
}

// -------------------------------------------------------- epoch consistency --

TEST(ClusterEpoch, ResolvesNewestCommonLabel) {
  MemberServer a([](SnapshotRegistry& s) {
    ASSERT_TRUE(s.install("seed", make_index()).ok());
    ASSERT_TRUE(s.install("next", make_index()).ok());
  });
  MemberServer b(
      [](SnapshotRegistry& s) { ASSERT_TRUE(s.install("seed", make_index()).ok()); });
  auto map = ClusterMap::make({loopback(a.port()), loopback(b.port())},
                              {.slots = 16, .replication = 2});
  ASSERT_TRUE(map.ok());
  obs::Registry metrics;
  ClusterClientConfig config;
  config.metrics = &metrics;
  ClusterClient cluster(std::move(map).value(), std::move(config));
  // "next" is only on a; the newest label every member carries is "seed".
  EXPECT_EQ(cluster.try_resolved_epoch().value(), "seed");
  EXPECT_EQ(cluster.try_cone_size(Asn(1), QueryScope{}).value(), 4u);
  // An explicit scope bypasses resolution: "next" is served where resident,
  // kUnknownEpoch where not — never silently answered from another vintage.
  std::size_t served = 0;
  std::size_t unknown = 0;
  for (const Asn as : sweep_ases()) {
    const auto result = cluster.try_cone_size(as, QueryScope{"next", ""});
    if (result.ok()) {
      ++served;
    } else {
      EXPECT_EQ(result.error().code, ErrorCode::kUnknownEpoch);
      ++unknown;
    }
  }
  EXPECT_GT(served + unknown, 0u);
}

TEST(ClusterEpoch, SkewIsTypedAndRecovers) {
  // Retention 1: installing a new epoch evicts the old one.
  MemberServer a(
      [](SnapshotRegistry& s) { ASSERT_TRUE(s.install("seed", make_index()).ok()); },
      /*retention=*/1);
  MemberServer b(
      [](SnapshotRegistry& s) { ASSERT_TRUE(s.install("seed", make_index()).ok()); },
      /*retention=*/1);
  auto map = ClusterMap::make({loopback(a.port()), loopback(b.port())},
                              {.slots = 16, .replication = 2});
  ASSERT_TRUE(map.ok());
  obs::Registry metrics;
  ClusterClientConfig config;
  config.metrics = &metrics;
  ClusterClient cluster(std::move(map).value(), std::move(config));
  EXPECT_EQ(cluster.try_resolved_epoch().value(), "seed");
  EXPECT_TRUE(cluster.try_top(3, QueryScope{}).ok());

  // Half the cluster moves on: "seed" is evicted from a, and the members no
  // longer share any label.  Pinned fan-outs must fail typed kEpochSkew —
  // the per-AS routed ops too, once their sub-request lands on a.
  ASSERT_TRUE(a.snapshots().install("next", make_index()).ok());
  std::size_t skews = 0;
  for (int round = 0; round < 2; ++round) {
    for (const Asn as : sweep_ases()) {
      const auto result = cluster.try_cone_size(as, QueryScope{});
      if (result.ok()) continue;
      EXPECT_EQ(result.error().code, ErrorCode::kEpochSkew)
          << result.error().message();
      ++skews;
    }
    const auto top = cluster.try_top(3, QueryScope{});
    if (!top.ok()) {
      EXPECT_EQ(top.error().code, ErrorCode::kEpochSkew)
          << top.error().message();
      ++skews;
    }
  }
  EXPECT_GT(skews, 0u);
  EXPECT_GT(metrics.counter("asrank_cluster_epoch_skew_total").value(), 0u);
  const auto resolved = cluster.try_resolved_epoch();
  ASSERT_FALSE(resolved.ok());
  EXPECT_EQ(resolved.error().code, ErrorCode::kEpochSkew);

  // The laggard catches up: the next resolution converges on "next" and
  // every query serves again.
  ASSERT_TRUE(b.snapshots().install("next", make_index()).ok());
  EXPECT_EQ(cluster.try_resolved_epoch().value(), "next");
  for (const Asn as : sweep_ases()) {
    EXPECT_TRUE(cluster.try_cone_size(as, QueryScope{}).ok());
  }
  EXPECT_TRUE(cluster.try_top(3, QueryScope{}).ok());
}

// --------------------------------------------- multi-process integration --

struct ChildServer {
  pid_t pid = -1;
  std::uint16_t port = 0;
};

// Fork a real asrankd process serving the two-epoch fixture (or the plain
// seed fixture), reporting its ephemeral port back over a pipe.  fixed_port
// nonzero rebinds a specific port (chaos-test restart).
ChildServer spawn_member(bool two_epochs, std::uint16_t fixed_port = 0) {
  int fds[2] = {-1, -1};
  EXPECT_EQ(::pipe(fds), 0);
  const pid_t pid = ::fork();
  if (pid == 0) {
    ::close(fds[0]);
    obs::Registry metrics;
    SnapshotRegistryConfig registry_config;
    registry_config.retention = 4;
    SnapshotRegistry snapshots(registry_config, &metrics);
    bool ok = true;
    if (two_epochs) {
      ok = snapshots.install("old", make_index_b()).ok() &&
           snapshots.install("cur", make_multi_index()).ok();
    } else {
      ok = snapshots.install("seed", make_index()).ok();
    }
    if (!ok) ::_exit(3);
    ServerConfig server_config;
    server_config.port = fixed_port;
    server_config.threads = 2;
    Server server(snapshots, server_config);
    server.install_signal_handlers();
    const std::uint16_t port = server.port();
    if (::write(fds[1], &port, sizeof port) != sizeof port) ::_exit(4);
    ::close(fds[1]);
    server.run();
    ::_exit(0);
  }
  ::close(fds[1]);
  ChildServer child;
  child.pid = pid;
  EXPECT_EQ(::read(fds[0], &child.port, sizeof child.port),
            static_cast<ssize_t>(sizeof child.port));
  ::close(fds[0]);
  return child;
}

void reap(ChildServer& child, int signal = SIGTERM) {
  if (child.pid <= 0) return;
  ::kill(child.pid, signal);
  int status = 0;
  ::waitpid(child.pid, &status, 0);
  child.pid = -1;
}

TEST(ClusterProcess, FourProcessesMatchMonolith) {
  // Fork all members before the parent spawns its reference-server thread.
  std::vector<ChildServer> members;
  for (int i = 0; i < 4; ++i) members.push_back(spawn_member(true));
  {
    MemberServer mono_member(install_two_epochs);
    Client mono = Client::dial("127.0.0.1", mono_member.port()).value();
    std::vector<ClusterEndpoint> endpoints;
    for (const auto& member : members) endpoints.push_back(loopback(member.port));
    auto map = ClusterMap::make(endpoints, {.slots = 16, .replication = 2});
    ASSERT_TRUE(map.ok());
    obs::Registry metrics;
    ClusterClientConfig config;
    config.metrics = &metrics;
    ClusterClient cluster(std::move(map).value(), std::move(config));
    expect_cluster_matches_monolith(cluster, mono);
  }
  for (auto& member : members) reap(member);
}

TEST(ClusterProcess, ChaosSigkillTypedErrorsAndRecovery) {
  std::vector<ChildServer> members;
  for (int i = 0; i < 3; ++i) members.push_back(spawn_member(false));

  std::vector<ClusterEndpoint> endpoints;
  for (const auto& member : members) endpoints.push_back(loopback(member.port));
  auto map = ClusterMap::make(endpoints, {.slots = 16, .replication = 2});
  ASSERT_TRUE(map.ok());
  std::atomic<std::uint64_t> clock{1000};
  obs::Registry metrics;
  ClusterClientConfig config;
  config.failure_threshold = 2;
  config.now_ms = [&clock] { return clock.load(); };
  config.metrics = &metrics;
  ClusterClient cluster(std::move(map).value(), std::move(config));

  ASSERT_EQ(cluster.try_resolved_epoch().value(), "seed");
  for (const Asn as : sweep_ases()) {
    ASSERT_TRUE(cluster.try_cone_size(as, QueryScope{}).ok());
  }

  // SIGKILL one member mid-serving.  Every subsequent failure must be typed
  // kUnavailable (or transparently failed over) — never a raw socket error.
  const std::uint16_t killed_port = members[0].port;
  reap(members[0], SIGKILL);
  std::size_t failures = 0;
  for (int round = 0; round < 4; ++round) {
    // 1..64 covers every slot, so the dead endpoint is some query's first
    // replica: the failover path is guaranteed to run.
    for (std::uint32_t value = 1; value <= 64; ++value) {
      const auto size = cluster.try_cone_size(Asn(value), QueryScope{});
      if (!size.ok()) {
        EXPECT_EQ(size.error().code, ErrorCode::kUnavailable)
            << size.error().message();
        ++failures;
      }
    }
    const auto top = cluster.try_top(3, QueryScope{});
    if (!top.ok()) {
      EXPECT_EQ(top.error().code, ErrorCode::kUnavailable)
          << top.error().message();
      ++failures;
    }
  }
  // Replication 2 rode through the loss for routed queries; scatter may
  // have lost cover until the breaker opened.
  EXPECT_EQ(cluster.endpoint_state(0), HealthState::kOpen);
  EXPECT_GT(metrics.counter("asrank_cluster_failovers_total").value(), 0u);
  EXPECT_EQ(metrics
                .gauge("asrank_cluster_endpoint_state", "",
                       {{"endpoint", endpoints[0].label()}})
                .value(),
            2);
  // With the breaker open, everything — including scatter — serves again.
  for (const Asn as : sweep_ases()) {
    EXPECT_TRUE(cluster.try_cone_size(as, QueryScope{}).ok());
  }
  EXPECT_TRUE(cluster.try_top(3, QueryScope{}).ok());

  // Restart the member on its old port (SO_REUSEADDR); past the cool-down
  // the half-open probe succeeds and the breaker closes.
  members[0] = spawn_member(false, killed_port);
  ASSERT_NE(members[0].port, 0);
  clock += 60'000;
  bool recovered = false;
  for (int attempt = 0; attempt < 50 && !recovered; ++attempt) {
    for (const Asn as : sweep_ases()) {
      (void)cluster.try_cone_size(as, QueryScope{});
    }
    recovered = cluster.endpoint_state(0) == HealthState::kClosed;
    if (!recovered) {
      clock += 60'000;
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
  }
  EXPECT_TRUE(recovered);
  for (const Asn as : sweep_ases()) {
    EXPECT_TRUE(cluster.try_cone_size(as, QueryScope{}).ok());
  }
  const auto status = cluster.probe_endpoints();
  ASSERT_EQ(status.size(), 3u);
  for (const auto& row : status) EXPECT_TRUE(row.reachable) << row.endpoint;

  for (auto& member : members) reap(member);
}

}  // namespace
}  // namespace asrank::serve
