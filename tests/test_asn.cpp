#include <gtest/gtest.h>

#include "asn/as_path.h"
#include "asn/asn.h"
#include "asn/prefix.h"

namespace asrank {
namespace {

// ----------------------------------------------------------------- Asn ----

TEST(Asn, DefaultIsInvalidAs0) {
  EXPECT_FALSE(Asn{}.valid());
  EXPECT_TRUE(Asn{}.reserved());
  EXPECT_TRUE(Asn(65000).valid());
}

TEST(Asn, ParsePlainAndPrefixed) {
  EXPECT_EQ(Asn::parse("65000")->value(), 65000u);
  EXPECT_EQ(Asn::parse("AS65000")->value(), 65000u);
  EXPECT_EQ(Asn::parse("as65000")->value(), 65000u);
  EXPECT_EQ(Asn::parse(" 7018 ")->value(), 7018u);
}

TEST(Asn, ParseAsdot) {
  EXPECT_EQ(Asn::parse("1.0")->value(), 65536u);
  EXPECT_EQ(Asn::parse("2.5")->value(), 2u * 65536 + 5);
  EXPECT_EQ(Asn::parse("AS1.1")->value(), 65537u);
}

TEST(Asn, ParseRejectsMalformed) {
  EXPECT_FALSE(Asn::parse(""));
  EXPECT_FALSE(Asn::parse("AS"));
  EXPECT_FALSE(Asn::parse("12x"));
  EXPECT_FALSE(Asn::parse("-3"));
  EXPECT_FALSE(Asn::parse("1.2.3"));
  EXPECT_FALSE(Asn::parse("70000.1"));     // asdot high > 16 bit
  EXPECT_FALSE(Asn::parse("4294967296"));  // > 32 bit
}

struct ReservedCase {
  std::uint32_t value;
  bool reserved;
};

class AsnReservedTest : public ::testing::TestWithParam<ReservedCase> {};

TEST_P(AsnReservedTest, MatchesIanaRegistry) {
  EXPECT_EQ(Asn(GetParam().value).reserved(), GetParam().reserved)
      << "ASN " << GetParam().value;
}

INSTANTIATE_TEST_SUITE_P(
    IanaSpecialRegistry, AsnReservedTest,
    ::testing::Values(
        ReservedCase{0, true},            // RFC 7607
        ReservedCase{1, false},           //
        ReservedCase{23455, false},       //
        ReservedCase{23456, true},        // AS_TRANS, RFC 6793
        ReservedCase{23457, false},       //
        ReservedCase{64495, false},       //
        ReservedCase{64496, true},        // documentation, RFC 5398
        ReservedCase{64511, true},        //
        ReservedCase{64512, true},        // private use, RFC 6996
        ReservedCase{65534, true},        //
        ReservedCase{65535, true},        // reserved, RFC 7300
        ReservedCase{65536, true},        // documentation, RFC 5398
        ReservedCase{65551, true},        //
        ReservedCase{65552, false},       //
        ReservedCase{4199999999, false},  //
        ReservedCase{4200000000, true},   // private use, RFC 6996
        ReservedCase{4294967294, true},   //
        ReservedCase{4294967295, true}    // reserved, RFC 7300
        ));

TEST(Asn, PrivateUseSubset) {
  EXPECT_TRUE(Asn(64512).private_use());
  EXPECT_TRUE(Asn(4200000000U).private_use());
  EXPECT_FALSE(Asn(23456).private_use());  // reserved but not private
  EXPECT_FALSE(Asn(64496).private_use());
}

TEST(Asn, OrderingAndHash) {
  EXPECT_LT(Asn(1), Asn(2));
  EXPECT_EQ(Asn(7), Asn(7));
  EXPECT_NE(std::hash<Asn>{}(Asn(1)), std::hash<Asn>{}(Asn(2)));
}

// -------------------------------------------------------------- Prefix ----

TEST(Prefix, ParseV4) {
  const auto p = Prefix::parse("10.0.0.0/8");
  ASSERT_TRUE(p);
  EXPECT_EQ(p->family(), Prefix::Family::kIpv4);
  EXPECT_EQ(p->length(), 8);
  EXPECT_EQ(static_cast<std::uint32_t>(p->bits()), 0x0a000000u);
  EXPECT_EQ(p->str(), "10.0.0.0/8");
}

TEST(Prefix, ParseCanonicalizesHostBits) {
  const auto p = Prefix::parse("10.1.2.3/8");
  ASSERT_TRUE(p);
  EXPECT_EQ(p->str(), "10.0.0.0/8");
  EXPECT_EQ(*p, *Prefix::parse("10.0.0.0/8"));
}

TEST(Prefix, ParseRejectsMalformedV4) {
  EXPECT_FALSE(Prefix::parse("10.0.0.0"));       // no length
  EXPECT_FALSE(Prefix::parse("10.0.0/8"));       // 3 octets
  EXPECT_FALSE(Prefix::parse("10.0.0.256/8"));   // octet overflow
  EXPECT_FALSE(Prefix::parse("10.0.0.0/33"));    // length too long
  EXPECT_FALSE(Prefix::parse("10.0.0.0/"));      //
  EXPECT_FALSE(Prefix::parse("a.b.c.d/8"));      //
}

TEST(Prefix, ParseV6) {
  const auto p = Prefix::parse("2001:db8::/32");
  ASSERT_TRUE(p);
  EXPECT_EQ(p->family(), Prefix::Family::kIpv6);
  EXPECT_EQ(p->length(), 32);
  EXPECT_EQ(static_cast<std::uint64_t>(p->bits() >> 64), 0x20010db800000000ULL);
}

TEST(Prefix, ParseV6Forms) {
  EXPECT_TRUE(Prefix::parse("::/0"));
  EXPECT_TRUE(Prefix::parse("::1/128"));
  EXPECT_TRUE(Prefix::parse("1:2:3:4:5:6:7:8/128"));
  EXPECT_FALSE(Prefix::parse("1:2:3/64"));         // too few groups, no ::
  EXPECT_FALSE(Prefix::parse("1::2::3/64"));       // double elision
  EXPECT_FALSE(Prefix::parse("2001:db8::/129"));   // bad length
  EXPECT_FALSE(Prefix::parse("1:2:3:4:5:6:7:8:9/128"));
  EXPECT_FALSE(Prefix::parse("12345::/16"));       // group too wide
}

TEST(Prefix, V6RoundTrip) {
  const auto p = Prefix::parse("2001:db8:1::/48");
  ASSERT_TRUE(p);
  const auto q = Prefix::parse(p->str());
  ASSERT_TRUE(q);
  EXPECT_EQ(*p, *q);
}

TEST(Prefix, Contains) {
  const auto eight = *Prefix::parse("10.0.0.0/8");
  const auto sixteen = *Prefix::parse("10.1.0.0/16");
  const auto other = *Prefix::parse("11.0.0.0/16");
  EXPECT_TRUE(eight.contains(sixteen));
  EXPECT_TRUE(eight.contains(eight));
  EXPECT_FALSE(sixteen.contains(eight));
  EXPECT_FALSE(eight.contains(other));
  const auto v6 = *Prefix::parse("2001:db8::/32");
  EXPECT_FALSE(eight.contains(v6));  // cross-family
  EXPECT_TRUE(Prefix::parse("::/0")->contains(v6));
}

TEST(Prefix, OrderingIsTotal) {
  const auto a = *Prefix::parse("10.0.0.0/8");
  const auto b = *Prefix::parse("10.0.0.0/16");
  const auto c = *Prefix::parse("11.0.0.0/8");
  EXPECT_LT(a, b);  // same bits, shorter first
  EXPECT_LT(a, c);
  EXPECT_LT(b, c);
}

TEST(Prefix, V4ConstructorClampsLength) {
  const auto p = Prefix::v4(0x0a000000, 40);
  EXPECT_EQ(p.length(), 32);
}

TEST(Prefix, HashDistinguishes) {
  const std::hash<Prefix> h;
  EXPECT_NE(h(*Prefix::parse("10.0.0.0/8")), h(*Prefix::parse("10.0.0.0/9")));
  EXPECT_EQ(h(*Prefix::parse("10.9.9.9/8")), h(*Prefix::parse("10.0.0.0/8")));
}

// -------------------------------------------------------------- AsPath ----

TEST(AsPath, BasicAccessors) {
  const AsPath p{701, 174, 3356};
  EXPECT_EQ(p.size(), 3u);
  EXPECT_EQ(p.first().value(), 701u);
  EXPECT_EQ(p.last().value(), 3356u);
  EXPECT_TRUE(p.contains(Asn(174)));
  EXPECT_FALSE(p.contains(Asn(1)));
  EXPECT_EQ(p.index_of(Asn(174)), 1u);
  EXPECT_FALSE(p.index_of(Asn(9)));
}

TEST(AsPath, LoopDetection) {
  EXPECT_FALSE((AsPath{1, 2, 3}.has_loop()));
  EXPECT_TRUE((AsPath{1, 2, 1}.has_loop()));
  EXPECT_FALSE((AsPath{1, 2, 2, 3}.has_loop()));  // prepending is not a loop
  EXPECT_TRUE((AsPath{1, 2, 2, 3, 2}.has_loop()));
  EXPECT_FALSE(AsPath{}.has_loop());
}

TEST(AsPath, PrependingDetectionAndCompression) {
  const AsPath p{701, 701, 174, 174, 174, 3356};
  EXPECT_TRUE(p.has_prepending());
  const auto compressed = p.compress_prepending();
  EXPECT_EQ(compressed, (AsPath{701, 174, 3356}));
  EXPECT_FALSE(compressed.has_prepending());
  // Idempotent.
  EXPECT_EQ(compressed.compress_prepending(), compressed);
}

TEST(AsPath, ReservedDetection) {
  EXPECT_TRUE((AsPath{1, 64512, 2}.has_reserved_asn()));
  EXPECT_TRUE((AsPath{1, 23456}.has_reserved_asn()));
  EXPECT_FALSE((AsPath{1, 2, 3}.has_reserved_asn()));
}

TEST(AsPath, ParseAndStr) {
  const auto p = AsPath::parse("701 174 3356");
  ASSERT_TRUE(p);
  EXPECT_EQ(*p, (AsPath{701, 174, 3356}));
  EXPECT_EQ(p->str(), "701 174 3356");
  EXPECT_TRUE(AsPath::parse("")->empty());
  EXPECT_FALSE(AsPath::parse("701 {1,2} 3356"));  // AS_SET remnant rejected
  EXPECT_FALSE(AsPath::parse("701 abc"));
}

TEST(AsPath, EqualityIsExact) {
  EXPECT_EQ((AsPath{1, 2}), (AsPath{1, 2}));
  EXPECT_NE((AsPath{1, 2}), (AsPath{2, 1}));
  EXPECT_NE((AsPath{1, 2}), (AsPath{1, 2, 2}));
}

}  // namespace
}  // namespace asrank
