#include <gtest/gtest.h>

#include <sstream>

#include "topology/as_graph.h"
#include "topology/relationship.h"
#include "topology/serialization.h"

namespace asrank {
namespace {

// -------------------------------------------------------- relationship ----

TEST(Relationship, AsRelCodesRoundTrip) {
  for (const LinkType t : {LinkType::kP2C, LinkType::kP2P, LinkType::kS2S}) {
    EXPECT_EQ(link_type_from_code(as_rel_code(t)), t);
  }
  EXPECT_FALSE(link_type_from_code(1));
  EXPECT_FALSE(link_type_from_code(-2));
}

TEST(Relationship, Names) {
  EXPECT_EQ(to_string(LinkType::kP2C), "p2c");
  EXPECT_EQ(to_string(RelView::kProvider), "provider");
}

// ------------------------------------------------------------- AsGraph ----

TEST(AsGraph, AddAndViewP2c) {
  AsGraph g;
  g.add_p2c(Asn(1), Asn(2));  // 1 provides 2
  EXPECT_EQ(g.view(Asn(2), Asn(1)), RelView::kProvider);
  EXPECT_EQ(g.view(Asn(1), Asn(2)), RelView::kCustomer);
  EXPECT_FALSE(g.view(Asn(1), Asn(3)));
}

TEST(AsGraph, P2cOrientationSurvivesAsnOrder) {
  AsGraph g;
  g.add_p2c(Asn(9), Asn(3));  // provider has the larger ASN
  const auto link = g.link(Asn(3), Asn(9));
  ASSERT_TRUE(link);
  EXPECT_EQ(link->a, Asn(9));
  EXPECT_EQ(link->b, Asn(3));
  EXPECT_EQ(link->type, LinkType::kP2C);
}

TEST(AsGraph, PeerAndSiblingSymmetric) {
  AsGraph g;
  g.add_p2p(Asn(1), Asn(2));
  g.add_s2s(Asn(3), Asn(4));
  EXPECT_EQ(g.view(Asn(1), Asn(2)), RelView::kPeer);
  EXPECT_EQ(g.view(Asn(2), Asn(1)), RelView::kPeer);
  EXPECT_EQ(g.view(Asn(3), Asn(4)), RelView::kSibling);
}

TEST(AsGraph, SetRelationshipReplaces) {
  AsGraph g;
  g.add_p2c(Asn(1), Asn(2));
  g.add_p2p(Asn(1), Asn(2));  // re-annotate
  EXPECT_EQ(g.view(Asn(1), Asn(2)), RelView::kPeer);
  EXPECT_TRUE(g.customers(Asn(1)).empty());
  EXPECT_TRUE(g.providers(Asn(2)).empty());
  EXPECT_EQ(g.link_count(), 1u);
}

TEST(AsGraph, ReorientP2c) {
  AsGraph g;
  g.add_p2c(Asn(1), Asn(2));
  g.add_p2c(Asn(2), Asn(1));  // flip provider
  EXPECT_EQ(g.view(Asn(1), Asn(2)), RelView::kProvider);
  EXPECT_EQ(g.customers(Asn(2)).size(), 1u);
  EXPECT_EQ(g.customers(Asn(1)).size(), 0u);
}

TEST(AsGraph, RemoveLink) {
  AsGraph g;
  g.add_p2c(Asn(1), Asn(2));
  EXPECT_TRUE(g.remove_link(Asn(2), Asn(1)));  // order-independent
  EXPECT_FALSE(g.has_link(Asn(1), Asn(2)));
  EXPECT_TRUE(g.providers(Asn(2)).empty());
  EXPECT_FALSE(g.remove_link(Asn(1), Asn(2)));  // already gone
  EXPECT_EQ(g.as_count(), 2u);                  // nodes remain
}

TEST(AsGraph, RejectsInvalid) {
  AsGraph g;
  EXPECT_THROW(g.add_p2c(Asn(1), Asn(1)), std::invalid_argument);
  EXPECT_THROW(g.add_p2p(Asn(0), Asn(1)), std::invalid_argument);
  EXPECT_THROW(g.add_as(Asn(0)), std::invalid_argument);
}

TEST(AsGraph, DegreeAndCounts) {
  AsGraph g;
  g.add_p2c(Asn(1), Asn(2));
  g.add_p2c(Asn(1), Asn(3));
  g.add_p2p(Asn(2), Asn(3));
  g.add_s2s(Asn(3), Asn(4));
  EXPECT_EQ(g.degree(Asn(3)), 3u);
  EXPECT_EQ(g.degree(Asn(99)), 0u);
  const auto counts = g.link_counts();
  EXPECT_EQ(counts.p2c, 2u);
  EXPECT_EQ(counts.p2p, 1u);
  EXPECT_EQ(counts.s2s, 1u);
  EXPECT_EQ(g.link_count(), 4u);
}

TEST(AsGraph, NeighborsUnion) {
  AsGraph g;
  g.add_p2c(Asn(1), Asn(2));
  g.add_p2p(Asn(2), Asn(3));
  auto n = g.neighbors(Asn(2));
  std::sort(n.begin(), n.end());
  EXPECT_EQ(n, (std::vector<Asn>{Asn(1), Asn(3)}));
}

TEST(AsGraph, LinksDeterministicOrder) {
  AsGraph g;
  g.add_p2p(Asn(5), Asn(2));
  g.add_p2c(Asn(3), Asn(1));
  const auto links = g.links();
  ASSERT_EQ(links.size(), 2u);
  // Sorted by normalized endpoints: (1,3) then (2,5).
  EXPECT_EQ(std::min(links[0].a, links[0].b), Asn(1));
  EXPECT_EQ(std::min(links[1].a, links[1].b), Asn(2));
}

TEST(AsGraph, AcyclicityDetection) {
  AsGraph g;
  g.add_p2c(Asn(1), Asn(2));
  g.add_p2c(Asn(2), Asn(3));
  EXPECT_TRUE(g.p2c_acyclic());
  g.add_p2c(Asn(3), Asn(1));  // cycle 1->2->3->1
  EXPECT_FALSE(g.p2c_acyclic());
}

TEST(AsGraph, PeeringDoesNotAffectAcyclicity) {
  AsGraph g;
  g.add_p2p(Asn(1), Asn(2));
  g.add_p2p(Asn(2), Asn(3));
  g.add_p2p(Asn(3), Asn(1));
  EXPECT_TRUE(g.p2c_acyclic());
}

TEST(AsGraph, ProviderFreeAndStubs) {
  AsGraph g;
  g.add_p2c(Asn(1), Asn(2));
  g.add_p2c(Asn(2), Asn(3));
  g.add_p2p(Asn(1), Asn(4));
  EXPECT_EQ(g.provider_free_ases(), (std::vector<Asn>{Asn(1)}));
  EXPECT_EQ(g.stub_ases(), (std::vector<Asn>{Asn(3), Asn(4)}));
}

TEST(AsGraph, LinkKeyIsOrderIndependent) {
  EXPECT_EQ(AsGraph::link_key(Asn(1), Asn(2)), AsGraph::link_key(Asn(2), Asn(1)));
  EXPECT_NE(AsGraph::link_key(Asn(1), Asn(2)), AsGraph::link_key(Asn(1), Asn(3)));
}

// ------------------------------------------------------- serialization ----

TEST(Serialization, AsRelRoundTrip) {
  AsGraph g;
  g.add_p2c(Asn(3356), Asn(64500));
  g.add_p2p(Asn(3356), Asn(1299));
  g.add_s2s(Asn(64500), Asn(64501));
  std::stringstream text;
  write_as_rel(g, text);
  const AsGraph parsed = read_as_rel(text);
  EXPECT_EQ(parsed.as_count(), g.as_count());
  EXPECT_EQ(parsed.view(Asn(64500), Asn(3356)), RelView::kProvider);
  EXPECT_EQ(parsed.view(Asn(1299), Asn(3356)), RelView::kPeer);
  EXPECT_EQ(parsed.view(Asn(64501), Asn(64500)), RelView::kSibling);
}

TEST(Serialization, AsRelParsesCaidaFormat) {
  std::stringstream text(
      "# inferred by asrank\n"
      "1|2|-1\n"
      "2|3|0\n");
  const AsGraph g = read_as_rel(text);
  EXPECT_EQ(g.view(Asn(2), Asn(1)), RelView::kProvider);
  EXPECT_EQ(g.view(Asn(2), Asn(3)), RelView::kPeer);
}

TEST(Serialization, AsRelRejectsMalformed) {
  std::stringstream missing_field("1|2\n");
  EXPECT_THROW((void)read_as_rel(missing_field), std::runtime_error);
  std::stringstream bad_code("1|2|7\n");
  EXPECT_THROW((void)read_as_rel(bad_code), std::runtime_error);
  std::stringstream bad_asn("x|2|0\n");
  EXPECT_THROW((void)read_as_rel(bad_asn), std::runtime_error);
}

TEST(Serialization, PpdcRoundTrip) {
  ConeMap cones;
  cones[Asn(1)] = {Asn(1), Asn(2), Asn(3)};
  cones[Asn(2)] = {Asn(2)};
  std::stringstream text;
  write_ppdc(cones, text);
  const ConeMap parsed = read_ppdc(text);
  EXPECT_EQ(parsed, cones);
}

TEST(Serialization, PpdcRejectsMalformed) {
  std::stringstream bad("1 2 x\n");
  EXPECT_THROW((void)read_ppdc(bad), std::runtime_error);
}

// Parser strictness (dataset files reject spellings human input accepts)
// and line-number diagnostics.

std::string thrown_message(const std::string& text, bool ppdc = false) {
  std::stringstream is(text);
  try {
    if (ppdc) {
      (void)read_ppdc(is);
    } else {
      (void)read_as_rel(is);
    }
  } catch (const std::runtime_error& error) {
    return error.what();
  }
  return "";
}

TEST(Serialization, AsRelRejectsTrailingJunkInFields) {
  EXPECT_NE(thrown_message("AS1|2|-1\n"), "");     // "AS" prefix is human input
  EXPECT_NE(thrown_message("1.2|3|0\n"), "");      // asdot likewise
  EXPECT_NE(thrown_message("1|2|-1x\n"), "");      // junk after the code
  EXPECT_NE(thrown_message("1|2x|0\n"), "");       // junk after an ASN
  EXPECT_NE(thrown_message("1|2|0|extra\n"), "");  // extra field
}

TEST(Serialization, AsRelErrorsCarryLineNumbers) {
  const auto message = thrown_message("1|2|-1\n2|3|0\nbogus|4|0\n");
  EXPECT_NE(message.find("line 3"), std::string::npos) << message;
  EXPECT_NE(message.find("malformed ASN"), std::string::npos) << message;
}

TEST(Serialization, AsRelRejectsDuplicateLinks) {
  const auto message = thrown_message("1|2|-1\n2|1|0\n");
  EXPECT_NE(message.find("line 2"), std::string::npos) << message;
  EXPECT_NE(message.find("duplicate link"), std::string::npos) << message;
}

TEST(Serialization, AsRelRejectsSelfLinksAndAs0WithLineNumbers) {
  EXPECT_NE(thrown_message("5|5|-1\n").find("line 1"), std::string::npos);
  const auto as0 = thrown_message("#comment\n0|2|-1\n");
  EXPECT_NE(as0.find("line 2"), std::string::npos) << as0;
}

TEST(Serialization, PpdcRejectsStructuralErrorsWithLineNumbers) {
  // Members out of order.
  auto message = thrown_message("1 1 3 2\n", /*ppdc=*/true);
  EXPECT_NE(message.find("line 1"), std::string::npos) << message;
  EXPECT_NE(message.find("ascending"), std::string::npos) << message;
  // Duplicate member (not strictly ascending either).
  EXPECT_NE(thrown_message("1 1 2 2\n", true), "");
  // Cone missing its own AS.
  message = thrown_message("1 2 3\n", /*ppdc=*/true);
  EXPECT_NE(message.find("does not contain its own AS"), std::string::npos)
      << message;
  // Duplicate cone line.
  message = thrown_message("1 1\n2 2\n1 1\n", /*ppdc=*/true);
  EXPECT_NE(message.find("line 3"), std::string::npos) << message;
  EXPECT_NE(message.find("duplicate cone"), std::string::npos) << message;
  // Human ASN spellings are junk here too.
  EXPECT_NE(thrown_message("AS1 AS1\n", true), "");
}

TEST(Serialization, TryReadAsRelReturnsTypedLineErrors) {
  const std::string text = "1|2|-1\nbogus|4|0\n";
  std::stringstream bad(text);
  auto parsed = try_read_as_rel(bad);
  ASSERT_FALSE(parsed.ok());
  EXPECT_EQ(parsed.error().code, ErrorCode::kCorrupt);
  EXPECT_NE(parsed.error().context.find("line 2"), std::string::npos);
  EXPECT_NE(parsed.error().context.find("malformed ASN"), std::string::npos);
  // The throwing wrapper reports the identical message.
  EXPECT_EQ(parsed.error().context, thrown_message(text));

  std::stringstream good("# comment\n1|2|-1\n1|3|0\n");
  auto graph = try_read_as_rel(good);
  ASSERT_TRUE(graph.ok());
  EXPECT_EQ(graph.value().view(Asn(1), Asn(2)), RelView::kCustomer);
  EXPECT_EQ(graph.value().view(Asn(1), Asn(3)), RelView::kPeer);
}

TEST(Serialization, TryReadPpdcReturnsTypedLineErrors) {
  const std::string text = "1 1\n2 3\n";  // cone missing its own AS
  std::stringstream bad(text);
  auto parsed = try_read_ppdc(bad);
  ASSERT_FALSE(parsed.ok());
  EXPECT_EQ(parsed.error().code, ErrorCode::kCorrupt);
  EXPECT_NE(parsed.error().context.find("line 2"), std::string::npos);
  EXPECT_NE(parsed.error().context.find("does not contain its own AS"),
            std::string::npos);
  EXPECT_EQ(parsed.error().context, thrown_message(text, /*ppdc=*/true));

  std::stringstream good("1 1 2\n2 2\n");
  auto cones = try_read_ppdc(good);
  ASSERT_TRUE(cones.ok());
  EXPECT_EQ(cones.value().at(Asn(1)).size(), 2u);
  EXPECT_EQ(cones.value().at(Asn(2)).size(), 1u);
}

}  // namespace
}  // namespace asrank
