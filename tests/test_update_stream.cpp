#include <gtest/gtest.h>

#include <sstream>

#include "bgpsim/update_stream.h"
#include "topogen/topogen.h"

namespace asrank::bgpsim {
namespace {

Observation make_obs(std::vector<ObservedRoute> routes, std::vector<VantagePoint> vps) {
  Observation obs;
  obs.routes = std::move(routes);
  obs.vps = std::move(vps);
  return obs;
}

ObservedRoute route(std::uint32_t vp, const char* prefix,
                    std::initializer_list<std::uint32_t> hops) {
  return {Asn(vp), *Prefix::parse(prefix), AsPath(hops)};
}

TEST(UpdateStream, EmptyDiffForIdenticalObservations) {
  const auto obs = make_obs({route(1, "10.0.0.0/24", {1, 2})}, {{Asn(1), true}});
  EXPECT_TRUE(diff_observations(obs, obs, 100).empty());
}

TEST(UpdateStream, NewRouteBecomesAnnouncement) {
  const auto before = make_obs({}, {{Asn(1), true}});
  const auto after = make_obs({route(1, "10.0.0.0/24", {1, 2, 3})}, {{Asn(1), true}});
  const auto updates = diff_observations(before, after, 7);
  ASSERT_EQ(updates.size(), 1u);
  EXPECT_EQ(updates[0].peer_as, Asn(1));
  EXPECT_EQ(updates[0].timestamp, 7u);
  ASSERT_EQ(updates[0].announced.size(), 1u);
  EXPECT_EQ(updates[0].attrs.as_path, (AsPath{1, 2, 3}));
  EXPECT_TRUE(updates[0].withdrawn.empty());
}

TEST(UpdateStream, LostRouteBecomesWithdrawal) {
  const auto before = make_obs({route(1, "10.0.0.0/24", {1, 2})}, {{Asn(1), true}});
  const auto after = make_obs({}, {{Asn(1), true}});
  const auto updates = diff_observations(before, after, 7);
  ASSERT_EQ(updates.size(), 1u);
  EXPECT_EQ(updates[0].withdrawn.size(), 1u);
  EXPECT_TRUE(updates[0].announced.empty());
}

TEST(UpdateStream, ChangedPathIsImplicitWithdraw) {
  const auto before = make_obs({route(1, "10.0.0.0/24", {1, 2, 3})}, {{Asn(1), true}});
  const auto after = make_obs({route(1, "10.0.0.0/24", {1, 4, 3})}, {{Asn(1), true}});
  const auto updates = diff_observations(before, after, 7);
  ASSERT_EQ(updates.size(), 1u);
  EXPECT_TRUE(updates[0].withdrawn.empty());  // implicit withdraw
  EXPECT_EQ(updates[0].attrs.as_path, (AsPath{1, 4, 3}));
}

TEST(UpdateStream, SharedPathsBatchIntoOneMessage) {
  const auto before = make_obs({}, {{Asn(1), true}});
  const auto after = make_obs({route(1, "10.0.0.0/24", {1, 2, 3}),
                               route(1, "10.0.1.0/24", {1, 2, 3}),
                               route(1, "10.0.2.0/24", {1, 9, 3})},
                              {{Asn(1), true}});
  const auto updates = diff_observations(before, after, 7);
  ASSERT_EQ(updates.size(), 2u);  // one per distinct path
  std::size_t total_nlri = 0;
  for (const auto& update : updates) total_nlri += update.announced.size();
  EXPECT_EQ(total_nlri, 3u);
}

TEST(UpdateStream, ApplyRoundTripsDiff) {
  // Random-ish evolution: diff(base, target) applied to base == target.
  const auto truth = topogen::generate(topogen::GenParams::preset("tiny"));
  ObservationParams params;
  params.full_vps = 4;
  params.partial_vps = 1;
  const auto base = observe(truth, params);

  auto evolved_truth = truth;
  util::Rng rng(77);
  topogen::evolve(evolved_truth, rng, topogen::EvolveParams{});
  auto evolved_params = params;  // same VPs (same seed & pools ordering)
  const auto target = observe(evolved_truth, evolved_params);

  const auto updates = diff_observations(base, target, 1000);
  const auto replayed = apply_updates(base, updates);

  auto key = [](const ObservedRoute& r) {
    return std::to_string(r.vp.value()) + "|" + r.prefix.str() + "|" + r.path.str();
  };
  std::vector<std::string> want, got;
  for (const auto& r : target.routes) want.push_back(key(r));
  for (const auto& r : replayed) got.push_back(key(r));
  std::sort(want.begin(), want.end());
  std::sort(got.begin(), got.end());
  // VP sets can differ slightly after evolve (new pools); restrict to shared VPs.
  EXPECT_EQ(got, want);
}

TEST(UpdateStream, ApplyIgnoresUnknownVps) {
  const auto base = make_obs({route(1, "10.0.0.0/24", {1, 2})}, {{Asn(1), true}});
  mrt::UpdateMessage rogue;
  rogue.peer_as = Asn(99);
  rogue.announced = {*Prefix::parse("10.0.9.0/24")};
  rogue.attrs.as_path = AsPath{99, 2};
  const auto replayed = apply_updates(base, {rogue});
  EXPECT_EQ(replayed.size(), 1u);  // unchanged
}

TEST(UpdateStream, WireRoundTripThroughBgp4mp) {
  const auto before = make_obs({route(1, "10.0.0.0/24", {1, 2, 3})}, {{Asn(1), true}});
  const auto after = make_obs({route(1, "10.0.0.0/24", {1, 4, 3}),
                               route(1, "10.0.1.0/24", {1, 4, 5})},
                              {{Asn(1), true}});
  const auto updates = diff_observations(before, after, 555);
  std::stringstream stream;
  for (const auto& update : updates) mrt::write_update(update, stream);
  const auto parsed = mrt::read_updates(stream);
  ASSERT_EQ(parsed.size(), updates.size());
  const auto replayed = apply_updates(before, parsed);
  EXPECT_EQ(replayed.size(), 2u);
}

}  // namespace
}  // namespace asrank::bgpsim
