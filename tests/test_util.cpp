#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <memory>
#include <span>
#include <string_view>
#include <vector>
#include <set>
#include <sstream>

#include "util/crc32.h"
#include "util/result.h"
#include "util/rng.h"
#include "util/stats.h"
#include "util/strings.h"
#include "util/table.h"

namespace asrank::util {
namespace {

// -------------------------------------------------------------- crc32 -----

std::vector<std::uint8_t> bytes_of(std::string_view text) {
  return {text.begin(), text.end()};
}

TEST(Crc32, MatchesTheStandardCheckValue) {
  // The IEEE 802.3 check value: CRC-32 of "123456789".  Locks the
  // implementation (whatever its internal blocking) to the polynomial the
  // ASRK1 format is defined over.
  EXPECT_EQ(crc32(bytes_of("123456789")), 0xCBF43926u);
  EXPECT_EQ(crc32({}), 0x00000000u);
  EXPECT_EQ(crc32(bytes_of("a")), 0xE8B7BE43u);
}

TEST(Crc32, EveryLengthAgreesWithTheBytewiseReference) {
  // The sliced hot loop folds 8 bytes per step; lengths 0..40 cross every
  // head/tail split it can take.  The reference is the textbook byte loop.
  const auto reference = [](std::span<const std::uint8_t> data) {
    std::uint32_t c = 0xFFFFFFFFu;
    for (const std::uint8_t byte : data) {
      c ^= byte;
      for (int bit = 0; bit < 8; ++bit) {
        c = (c & 1u) ? (0xEDB88320u ^ (c >> 1)) : (c >> 1);
      }
    }
    return c ^ 0xFFFFFFFFu;
  };
  std::vector<std::uint8_t> data;
  for (std::size_t len = 0; len <= 40; ++len) {
    EXPECT_EQ(crc32(data), reference(data)) << "length " << len;
    data.push_back(static_cast<std::uint8_t>(len * 37 + 11));
  }
}

TEST(Crc32, SeedChainsAcrossChunks) {
  const auto whole = bytes_of("the quick brown fox jumps over the lazy dog");
  const std::uint32_t direct = crc32(whole);
  for (std::size_t split = 0; split <= whole.size(); ++split) {
    const std::uint32_t head =
        crc32(std::span(whole).first(split));
    EXPECT_EQ(crc32(std::span(whole).subspan(split), head), direct)
        << "split at " << split;
  }
}

// ---------------------------------------------------------------- Rng -----

TEST(Rng, DeterministicAcrossInstances) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a() == b()) ++equal;
  }
  EXPECT_LT(equal, 5);
}

TEST(Rng, ReseedResets) {
  Rng rng(7);
  const auto first = rng();
  rng.reseed(7);
  EXPECT_EQ(rng(), first);
}

TEST(Rng, UniformRespectsBound) {
  Rng rng(42);
  for (std::uint64_t bound : {1ULL, 2ULL, 7ULL, 1000ULL}) {
    for (int i = 0; i < 200; ++i) EXPECT_LT(rng.uniform(bound), bound);
  }
}

TEST(Rng, UniformZeroBoundThrows) {
  Rng rng;
  EXPECT_THROW((void)rng.uniform(0), std::invalid_argument);
}

TEST(Rng, UniformCoversAllResidues) {
  Rng rng(5);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 400; ++i) seen.insert(rng.uniform(7));
  EXPECT_EQ(seen.size(), 7u);
}

TEST(Rng, UniformRangeInclusive) {
  Rng rng(9);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 500; ++i) {
    const auto v = rng.uniform_range(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= (v == -3);
    saw_hi |= (v == 3);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
  EXPECT_THROW((void)rng.uniform_range(2, 1), std::invalid_argument);
}

TEST(Rng, Uniform01InHalfOpenInterval) {
  Rng rng(11);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.uniform01();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(Rng, BernoulliExtremes) {
  Rng rng(13);
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
  }
}

TEST(Rng, BernoulliApproximatesProbability) {
  Rng rng(17);
  int hits = 0;
  for (int i = 0; i < 10000; ++i) hits += rng.bernoulli(0.3);
  EXPECT_NEAR(hits / 10000.0, 0.3, 0.03);
}

TEST(Rng, ZipfStaysInRange) {
  Rng rng(19);
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.zipf(10, 1.5);
    EXPECT_GE(v, 1u);
    EXPECT_LE(v, 10u);
  }
}

TEST(Rng, ZipfIsHeavyHeaded) {
  Rng rng(23);
  std::size_t ones = 0;
  const int n = 5000;
  for (int i = 0; i < n; ++i) ones += rng.zipf(100, 1.5) == 1;
  // Rank 1 should dominate under a power law.
  EXPECT_GT(ones, static_cast<std::size_t>(n) / 4);
}

TEST(Rng, ZipfRejectsBadArgs) {
  Rng rng;
  EXPECT_THROW((void)rng.zipf(0, 1.0), std::invalid_argument);
  EXPECT_THROW((void)rng.zipf(10, 0.0), std::invalid_argument);
}

TEST(Rng, GeometricMeanMatches) {
  Rng rng(29);
  double sum = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += static_cast<double>(rng.geometric(0.25));
  EXPECT_NEAR(sum / n, 3.0, 0.2);  // mean failures = (1-p)/p = 3
}

TEST(Rng, GeometricPOneIsZero) {
  Rng rng;
  EXPECT_EQ(rng.geometric(1.0), 0u);
  EXPECT_THROW((void)rng.geometric(0.0), std::invalid_argument);
  EXPECT_THROW((void)rng.geometric(1.5), std::invalid_argument);
}

TEST(Rng, WeightedPickHonoursWeights) {
  Rng rng(31);
  const double weights[] = {0.0, 9.0, 1.0};
  std::size_t counts[3] = {0, 0, 0};
  for (int i = 0; i < 10000; ++i) ++counts[rng.weighted_pick(weights)];
  EXPECT_EQ(counts[0], 0u);
  EXPECT_GT(counts[1], counts[2] * 5);
}

TEST(Rng, WeightedPickRejectsDegenerate) {
  Rng rng;
  const double zeros[] = {0.0, 0.0};
  const double negative[] = {1.0, -0.5};
  EXPECT_THROW((void)rng.weighted_pick(zeros), std::invalid_argument);
  EXPECT_THROW((void)rng.weighted_pick(negative), std::invalid_argument);
}

TEST(Rng, SampleIndicesDistinctAndInRange) {
  Rng rng(37);
  const auto sample = rng.sample_indices(100, 30);
  EXPECT_EQ(sample.size(), 30u);
  std::set<std::size_t> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 30u);
  for (const auto i : sample) EXPECT_LT(i, 100u);
  EXPECT_THROW((void)rng.sample_indices(3, 4), std::invalid_argument);
}

TEST(Rng, SampleIndicesFullPopulation) {
  Rng rng(41);
  const auto sample = rng.sample_indices(10, 10);
  std::set<std::size_t> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 10u);
}

TEST(Rng, ShuffleIsPermutation) {
  Rng rng(43);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  auto shuffled = v;
  rng.shuffle(shuffled);
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(shuffled, v);
}

// -------------------------------------------------------------- stats -----

TEST(Stats, QuantileEdges) {
  const std::vector<double> v{1, 2, 3, 4, 5};
  EXPECT_DOUBLE_EQ(quantile(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(quantile(v, 1.0), 5.0);
  EXPECT_DOUBLE_EQ(quantile(v, 0.5), 3.0);
  EXPECT_DOUBLE_EQ(quantile(v, 0.25), 2.0);
}

TEST(Stats, QuantileInterpolates) {
  const std::vector<double> v{0, 10};
  EXPECT_DOUBLE_EQ(quantile(v, 0.5), 5.0);
}

TEST(Stats, QuantileRejectsBadInput) {
  EXPECT_THROW((void)quantile({}, 0.5), std::invalid_argument);
  const std::vector<double> v{1.0};
  EXPECT_THROW((void)quantile(v, -0.1), std::invalid_argument);
  EXPECT_THROW((void)quantile(v, 1.1), std::invalid_argument);
}

TEST(Stats, SummarizeBasics) {
  const std::vector<double> v{2, 4, 4, 4, 5, 5, 7, 9};
  const auto s = summarize(v);
  EXPECT_EQ(s.count, 8u);
  EXPECT_DOUBLE_EQ(s.min, 2.0);
  EXPECT_DOUBLE_EQ(s.max, 9.0);
  EXPECT_DOUBLE_EQ(s.mean, 5.0);
  EXPECT_DOUBLE_EQ(s.stddev, 2.0);
}

TEST(Stats, SummarizeEmptyIsZero) {
  const auto s = summarize({});
  EXPECT_EQ(s.count, 0u);
  EXPECT_DOUBLE_EQ(s.mean, 0.0);
}

TEST(Stats, CcdfMonotoneAndNormalized) {
  const std::vector<double> v{1, 1, 2, 3, 3, 3};
  const auto points = ccdf(v);
  ASSERT_EQ(points.size(), 3u);
  EXPECT_DOUBLE_EQ(points[0].fraction, 1.0);  // all >= min
  EXPECT_DOUBLE_EQ(points[1].value, 2.0);
  EXPECT_NEAR(points[1].fraction, 4.0 / 6.0, 1e-12);
  EXPECT_NEAR(points[2].fraction, 3.0 / 6.0, 1e-12);
  for (std::size_t i = 1; i < points.size(); ++i) {
    EXPECT_LT(points[i].fraction, points[i - 1].fraction);
  }
}

TEST(Stats, PearsonPerfectCorrelation) {
  const std::vector<double> x{1, 2, 3, 4};
  const std::vector<double> y{2, 4, 6, 8};
  const std::vector<double> z{8, 6, 4, 2};
  EXPECT_NEAR(pearson(x, y), 1.0, 1e-12);
  EXPECT_NEAR(pearson(x, z), -1.0, 1e-12);
}

TEST(Stats, PearsonDegenerateIsZero) {
  const std::vector<double> x{1, 1, 1};
  const std::vector<double> y{1, 2, 3};
  EXPECT_DOUBLE_EQ(pearson(x, y), 0.0);
  EXPECT_DOUBLE_EQ(pearson({}, {}), 0.0);
}

TEST(Stats, KendallTauOrderings) {
  const std::vector<double> x{1, 2, 3, 4, 5};
  const std::vector<double> same{10, 20, 30, 40, 50};
  const std::vector<double> reversed{5, 4, 3, 2, 1};
  EXPECT_NEAR(kendall_tau(x, same), 1.0, 1e-12);
  EXPECT_NEAR(kendall_tau(x, reversed), -1.0, 1e-12);
}

TEST(Stats, KendallTauHandlesTies) {
  const std::vector<double> x{1, 2, 2, 3};
  const std::vector<double> y{1, 2, 3, 4};
  const double tau = kendall_tau(x, y);
  EXPECT_GT(tau, 0.7);
  EXPECT_LE(tau, 1.0);
}

TEST(Stats, HistogramClampsAndCounts) {
  const std::vector<double> v{-1, 0, 0.5, 1.5, 10};
  const auto h = histogram(v, 0.0, 2.0, 2);
  ASSERT_EQ(h.size(), 2u);
  EXPECT_EQ(h[0], 3u);  // -1 (clamped), 0, 0.5
  EXPECT_EQ(h[1], 2u);  // 1.5, 10 (clamped)
  EXPECT_THROW((void)histogram(v, 0.0, 2.0, 0), std::invalid_argument);
  EXPECT_THROW((void)histogram(v, 2.0, 1.0, 2), std::invalid_argument);
}

// ------------------------------------------------------------ strings -----

TEST(Strings, SplitBasics) {
  const auto parts = split("a|b||c", '|');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[2], "c");
  const auto kept = split("a|b||c", '|', /*keep_empty=*/true);
  ASSERT_EQ(kept.size(), 4u);
  EXPECT_EQ(kept[2], "");
}

TEST(Strings, SplitWsCollapsesRuns) {
  const auto parts = split_ws("  a \t b  c ");
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "b");
  EXPECT_EQ(parts[2], "c");
  EXPECT_TRUE(split_ws("   ").empty());
}

TEST(Strings, TrimBothEnds) {
  EXPECT_EQ(trim("  x y  "), "x y");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim(" \t\n "), "");
}

TEST(Strings, ParseUnsignedStrict) {
  EXPECT_EQ(parse_unsigned<std::uint32_t>("123"), 123u);
  EXPECT_FALSE(parse_unsigned<std::uint32_t>("12x"));
  EXPECT_FALSE(parse_unsigned<std::uint32_t>("-1"));
  EXPECT_FALSE(parse_unsigned<std::uint32_t>(""));
  EXPECT_FALSE(parse_unsigned<std::uint8_t>("256"));  // overflow
  EXPECT_EQ(parse_unsigned<std::uint8_t>("255"), 255u);
}

TEST(Strings, ParseDoubleStrict) {
  EXPECT_DOUBLE_EQ(*parse_double("2.5"), 2.5);
  EXPECT_FALSE(parse_double("2.5x"));
  EXPECT_FALSE(parse_double(""));
}

TEST(Strings, IequalsAndLower) {
  EXPECT_TRUE(iequals("AbC", "aBc"));
  EXPECT_FALSE(iequals("abc", "abd"));
  EXPECT_FALSE(iequals("abc", "ab"));
  EXPECT_EQ(to_lower("MiXeD"), "mixed");
}

TEST(Strings, Join) {
  EXPECT_EQ(join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(join({}, ","), "");
}

// -------------------------------------------------------------- table -----

TEST(Table, RendersAligned) {
  TableWriter t({"col", "n"});
  t.add_row({"x", "1"});
  t.add_row({"longer", "22"});
  std::ostringstream os;
  t.render(os);
  const auto text = os.str();
  EXPECT_NE(text.find("| col    | n  |"), std::string::npos);
  EXPECT_NE(text.find("| longer | 22 |"), std::string::npos);
}

TEST(Table, RejectsArityMismatch) {
  TableWriter t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), std::invalid_argument);
  EXPECT_THROW(TableWriter({}), std::invalid_argument);
}

TEST(Table, CsvQuoting) {
  TableWriter t({"a"});
  t.add_row({"plain"});
  t.add_row({"com,ma"});
  t.add_row({"qu\"ote"});
  std::ostringstream os;
  t.render_csv(os);
  EXPECT_NE(os.str().find("\"com,ma\""), std::string::npos);
  EXPECT_NE(os.str().find("\"qu\"\"ote\""), std::string::npos);
}

TEST(Table, Formatters) {
  EXPECT_EQ(fmt(3.14159, 2), "3.14");
  EXPECT_EQ(fmt_pct(0.9957, 2), "99.57%");
  EXPECT_EQ(fmt_count(465944), "465,944");
  EXPECT_EQ(fmt_count(999), "999");
  EXPECT_EQ(fmt_count(1000), "1,000");
  EXPECT_EQ(fmt_count(0), "0");
}

// ------------------------------------------------------------- Result -----

Result<int> parse_positive(int raw) {
  if (raw <= 0) return make_error(ErrorCode::kInvalidArgument, "not positive");
  return raw;
}

Result<int> doubled_via_try(int raw) {
  ASRANK_TRY(parsed, parse_positive(raw));
  return parsed * 2;
}

Result<void> check_via_try_void(int raw) {
  ASRANK_TRY_VOID(parse_positive(raw));
  return {};
}

TEST(Result, CarriesValueOrError) {
  const Result<int> good = parse_positive(7);
  ASSERT_TRUE(good.ok());
  EXPECT_TRUE(static_cast<bool>(good));
  EXPECT_EQ(good.value(), 7);
  EXPECT_EQ(good.value_or(-1), 7);

  Result<int> bad = parse_positive(-3);
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(bad.error().code, ErrorCode::kInvalidArgument);
  EXPECT_EQ(bad.error().context, "not positive");
  EXPECT_EQ(bad.value_or(-1), -1);
  EXPECT_EQ(bad.take_error(), make_error(ErrorCode::kInvalidArgument, "not positive"));
}

TEST(Result, TryMacroPropagatesErrorsAndBindsValues) {
  const auto doubled = doubled_via_try(21);
  ASSERT_TRUE(doubled.ok());
  EXPECT_EQ(doubled.value(), 42);
  // The macro early-returns the callee's Error unchanged.
  const auto failed = doubled_via_try(0);
  ASSERT_FALSE(failed.ok());
  EXPECT_EQ(failed.error().context, "not positive");
}

TEST(Result, VoidSpecializationAndTryVoid) {
  EXPECT_TRUE(check_via_try_void(1).ok());
  const auto failed = check_via_try_void(-1);
  ASSERT_FALSE(failed.ok());
  EXPECT_EQ(failed.error().code, ErrorCode::kInvalidArgument);
}

TEST(Result, ErrorMessagePrefixesTheCodeName) {
  EXPECT_EQ(make_error(ErrorCode::kCorrupt, "bad crc").message(), "corrupt: bad crc");
  EXPECT_EQ((Error{ErrorCode::kTruncated, {}}.message()), "truncated");
  EXPECT_EQ(to_string(ErrorCode::kIo), "io");
}

TEST(Result, MoveOnlyValuesMoveOut) {
  Result<std::unique_ptr<int>> boxed(std::make_unique<int>(5));
  ASSERT_TRUE(boxed.ok());
  const std::unique_ptr<int> taken = std::move(boxed).value();
  EXPECT_EQ(*taken, 5);
}

}  // namespace
}  // namespace asrank::util
