// Unit tests for the streaming ingest subsystem (src/ingest): the
// UpdateApplier route table, the FlushPolicy epoch scheduler, epoch label
// expansion, and the EpochBuilder's incremental-equals-batch contract on
// small corpora.  The heavyweight replay suite (every emitted epoch byte-
// identical to a from-scratch batch build over seeded bgpsim streams) lives
// in test_differential.cpp.
#include <gtest/gtest.h>

#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "bgpsim/observation.h"
#include "bgpsim/update_stream.h"
#include "core/cones.h"
#include "ingest/epoch_builder.h"
#include "ingest/update_applier.h"
#include "mrt/bgp4mp.h"
#include "obs/metrics.h"
#include "paths/corpus.h"
#include "snapshot/snapshot.h"
#include "topogen/topogen.h"
#include "util/rng.h"

namespace asrank {
namespace {

mrt::UpdateMessage announce(std::uint32_t peer, const char* prefix,
                            std::initializer_list<std::uint32_t> path) {
  mrt::UpdateMessage update;
  update.peer_as = Asn(peer);
  update.local_as = Asn(6447);
  update.announced = {*Prefix::parse(prefix)};
  update.attrs.as_path = AsPath(path);
  return update;
}

mrt::UpdateMessage withdraw(std::uint32_t peer, const char* prefix) {
  mrt::UpdateMessage update;
  update.peer_as = Asn(peer);
  update.local_as = Asn(6447);
  update.withdrawn = {*Prefix::parse(prefix)};
  return update;
}

std::string bytes_of(const snapshot::SnapshotIndex& index) {
  std::ostringstream os(std::ios::binary);
  snapshot::write_snapshot(index, os);
  return std::move(os).str();
}

TEST(UpdateApplier, AnnounceWithdrawReplaceLifecycle) {
  obs::Registry metrics;
  ingest::UpdateApplier applier(metrics);

  applier.apply(announce(100, "10.0.0.0/8", {100, 2, 1}));
  applier.apply(announce(100, "192.0.2.0/24", {100, 3}));
  applier.apply(announce(200, "10.0.0.0/8", {200, 1}));
  EXPECT_EQ(applier.route_count(), 3u);

  // Implicit replace: same (vp, prefix), new path.
  applier.apply(announce(100, "10.0.0.0/8", {100, 7, 1}));
  EXPECT_EQ(applier.route_count(), 3u);

  applier.apply(withdraw(100, "192.0.2.0/24"));
  EXPECT_EQ(applier.route_count(), 2u);
  // A withdrawal from a peer that never announced it is a counted no-op.
  applier.apply(withdraw(999, "192.0.2.0/24"));
  EXPECT_EQ(applier.route_count(), 2u);

  const auto& stats = applier.stats();
  EXPECT_EQ(stats.messages, 6u);
  EXPECT_EQ(stats.announced, 4u);
  EXPECT_EQ(stats.withdrawn, 2u);
  EXPECT_EQ(stats.noop_withdrawn, 1u);
  EXPECT_EQ(metrics
                .counter("asrank_ingest_updates_total", "", {{"kind", "announce"}})
                .value(),
            4u);
  EXPECT_EQ(metrics
                .counter("asrank_ingest_updates_total", "", {{"kind", "withdraw"}})
                .value(),
            2u);
  EXPECT_EQ(metrics.gauge("asrank_ingest_routes", "").value(), 2);

  // Corpus materializes in deterministic (vp, prefix) order with the
  // replacement path, not the original.
  const auto corpus = applier.corpus();
  EXPECT_EQ(corpus.size(), 2u);
}

TEST(UpdateApplier, RejectsAsSetAndEmptyPaths) {
  obs::Registry metrics;
  ingest::UpdateApplier applier(metrics);

  auto aggregated = announce(100, "10.0.0.0/8", {100, 1});
  aggregated.attrs.has_as_set = true;
  applier.apply(aggregated);
  EXPECT_EQ(applier.route_count(), 0u);
  EXPECT_EQ(applier.stats().as_set_rejected, 1u);
  EXPECT_EQ(metrics.counter("asrank_ingest_as_set_rejected_total", "").value(), 1u);

  auto empty_path = announce(100, "10.0.0.0/8", {});
  applier.apply(empty_path);
  EXPECT_EQ(applier.route_count(), 0u);
  EXPECT_EQ(applier.stats().empty_path_rejected, 1u);

  // A previously held route survives a rejected replacement.
  applier.apply(announce(100, "10.0.0.0/8", {100, 2, 1}));
  applier.apply(aggregated);
  EXPECT_EQ(applier.route_count(), 1u);
}

TEST(UpdateApplier, SeedMatchesAnnouncedState) {
  obs::Registry seeded_metrics;
  obs::Registry applied_metrics;
  ingest::UpdateApplier seeded(seeded_metrics);
  ingest::UpdateApplier applied(applied_metrics);
  seeded.seed(Asn(100), *Prefix::parse("10.0.0.0/8"), AsPath{100, 2, 1});
  applied.apply(announce(100, "10.0.0.0/8", {100, 2, 1}));
  EXPECT_EQ(seeded.route_count(), applied.route_count());
  EXPECT_EQ(seeded.stats().announced, 1u);
  EXPECT_EQ(seeded.stats().messages, 0u);  // a seed is not a message
}

TEST(UpdateApplier, MarkTracksMessagesSinceLastFlush) {
  obs::Registry metrics;
  ingest::UpdateApplier applier(metrics);
  applier.apply(announce(1, "10.0.0.0/8", {1, 2}));
  applier.apply(announce(1, "192.0.2.0/24", {1, 3}));
  EXPECT_EQ(applier.messages_since_mark(), 2u);
  applier.mark();
  EXPECT_EQ(applier.messages_since_mark(), 0u);
  applier.apply(withdraw(1, "10.0.0.0/8"));
  EXPECT_EQ(applier.messages_since_mark(), 1u);
}

TEST(FlushPolicy, CountTrigger) {
  ingest::FlushPolicy policy(3, 0, false);
  EXPECT_FALSE(policy.due(0));  // nothing pending, never due
  policy.applied(1);
  policy.applied(1);
  EXPECT_FALSE(policy.due(0));
  policy.applied(1);
  EXPECT_TRUE(policy.due(0));
  policy.flushed(0);
  EXPECT_EQ(policy.pending(), 0u);
  EXPECT_FALSE(policy.due(0));
}

TEST(FlushPolicy, IntervalTriggerNeedsPendingWork) {
  ingest::FlushPolicy policy(0, 500, false);
  policy.flushed(1000);
  EXPECT_FALSE(policy.due(10000));  // idle: no empty epochs
  policy.applied(1);
  EXPECT_FALSE(policy.due(1400));
  EXPECT_TRUE(policy.due(1500));
}

TEST(FlushPolicy, TimestampChangeTrigger) {
  ingest::FlushPolicy policy(0, 0, true);
  EXPECT_FALSE(policy.due_before(100));  // nothing buffered yet
  policy.applied(100);
  policy.applied(100);
  EXPECT_FALSE(policy.due_before(100));  // same batch
  EXPECT_TRUE(policy.due_before(160));   // stamp advanced: cut first
  policy.flushed(0);
  EXPECT_FALSE(policy.due_before(160));
}

TEST(EpochLabel, ExpandsSequenceTimestampAndPercent) {
  EXPECT_EQ(ingest::expand_epoch_label("epoch-%N", 7, 0), "epoch-000007");
  EXPECT_EQ(ingest::expand_epoch_label("epoch-%N", 1234567, 0), "epoch-1234567");
  EXPECT_EQ(ingest::expand_epoch_label("rib.%T", 1, 1367193600), "rib.1367193600");
  // %% is part of the format grammar, but a literal '%' is outside the
  // registry label alphabet, so any use of it fails label validation.
  EXPECT_THROW((void)ingest::expand_epoch_label("p%%q-%N", 2, 9),
               std::invalid_argument);
}

TEST(EpochLabel, RejectsBadFormatsAndBadExpansions) {
  EXPECT_THROW((void)ingest::expand_epoch_label("x%", 1, 1), std::invalid_argument);
  EXPECT_THROW((void)ingest::expand_epoch_label("x%Z", 1, 1), std::invalid_argument);
  EXPECT_THROW((void)ingest::expand_epoch_label("", 1, 1), std::invalid_argument);
  EXPECT_THROW((void)ingest::expand_epoch_label("bad/label-%N", 1, 1),
               std::invalid_argument);
  EXPECT_THROW((void)ingest::expand_epoch_label(std::string(70, 'a'), 1, 1),
               std::invalid_argument);
}

paths::PathCorpus observe_corpus(const topogen::GroundTruth& truth,
                                 std::uint64_t obs_seed) {
  bgpsim::ObservationParams params;
  params.seed = obs_seed;
  return paths::PathCorpus::from_records(bgpsim::observe(truth, params).routes);
}

TEST(EpochBuilder, FirstBuildIsFullAndMatchesBatch) {
  auto params = topogen::GenParams::preset("small");
  params.seed = 11;
  const auto truth = topogen::generate(params);
  const auto corpus = observe_corpus(truth, 12);

  obs::Registry metrics;
  ingest::EpochBuilder builder({}, metrics);
  ingest::EpochBuildInfo info;
  auto built = builder.build(corpus, &info);
  ASSERT_TRUE(built.ok());
  EXPECT_EQ(info.sequence, 1u);
  EXPECT_TRUE(info.cones.full_recompute);
  EXPECT_EQ(builder.epochs_built(), 1u);
  EXPECT_EQ(metrics.counter("asrank_ingest_epochs_emitted_total", "").value(), 1u);
  EXPECT_EQ(metrics.counter("asrank_ingest_full_closures_total", "").value(), 1u);
  EXPECT_EQ(metrics.histogram("asrank_ingest_epoch_build_micros", "").count(), 1u);

  EXPECT_EQ(bytes_of(built.value()),
            bytes_of(ingest::EpochBuilder::batch_build(corpus)));
}

TEST(EpochBuilder, IncrementalRebuildMatchesBatchBytes) {
  auto params = topogen::GenParams::preset("small");
  params.seed = 21;
  auto truth = topogen::generate(params);
  const auto first = observe_corpus(truth, 22);

  util::Rng rng(23);
  topogen::EvolveParams evolve;
  evolve.new_stubs = 5;
  evolve.new_peerings = 3;
  topogen::evolve(truth, rng, evolve);
  const auto second = observe_corpus(truth, 22);

  ingest::EpochBuilderConfig config;
  config.full_closure_threshold = 1.1;  // never fall back: force reuse path
  obs::Registry metrics;
  ingest::EpochBuilder builder(config, metrics);
  ASSERT_TRUE(builder.build(first).ok());

  ingest::EpochBuildInfo info;
  auto rebuilt = builder.build(second, &info);
  ASSERT_TRUE(rebuilt.ok());
  EXPECT_EQ(info.sequence, 2u);
  EXPECT_FALSE(info.cones.full_recompute);
  EXPECT_GT(info.cones.reused, 0u);
  EXPECT_EQ(metrics.gauge("asrank_ingest_dirty_asns", "").value(),
            static_cast<std::int64_t>(info.cones.dirty_asns));

  EXPECT_EQ(bytes_of(rebuilt.value()),
            bytes_of(ingest::EpochBuilder::batch_build(second, config)));
}

TEST(EpochBuilder, UnchangedCorpusDirtiesNothing) {
  auto params = topogen::GenParams::preset("small");
  params.seed = 31;
  const auto truth = topogen::generate(params);
  const auto corpus = observe_corpus(truth, 32);

  ingest::EpochBuilderConfig config;
  config.full_closure_threshold = 1.1;
  obs::Registry metrics;
  ingest::EpochBuilder builder(config, metrics);
  auto first = builder.build(corpus);
  ASSERT_TRUE(first.ok());

  ingest::EpochBuildInfo info;
  auto second = builder.build(corpus, &info);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(info.cones.changed_links, 0u);
  EXPECT_EQ(info.cones.dirty_asns, 0u);
  EXPECT_EQ(bytes_of(first.value()), bytes_of(second.value()));
}

TEST(EpochBuilder, VerifyBatchPassesOnHealthyStream) {
  auto params = topogen::GenParams::preset("small");
  params.seed = 41;
  auto truth = topogen::generate(params);

  ingest::EpochBuilderConfig config;
  config.verify_batch = true;
  obs::Registry metrics;
  ingest::EpochBuilder builder(config, metrics);

  util::Rng rng(42);
  topogen::EvolveParams evolve;
  evolve.new_stubs = 4;
  evolve.new_peerings = 2;
  for (int step = 0; step < 3; ++step) {
    if (step > 0) topogen::evolve(truth, rng, evolve);
    auto built = builder.build(observe_corpus(truth, 43));
    ASSERT_TRUE(built.ok()) << built.error().context;
  }
  EXPECT_EQ(builder.epochs_built(), 3u);
}

TEST(EpochBuilder, ReplayedStreamThroughApplierMatchesBatch) {
  // End-to-end through the conveyor front half: bgpsim stream -> applier
  // table -> epoch, against a batch build of the applier's own corpus.
  auto params = topogen::GenParams::preset("small");
  params.seed = 51;
  auto truth = topogen::generate(params);
  bgpsim::ObservationParams obs_params;
  obs_params.seed = 52;
  bgpsim::UpdateStreamParams stream_params;
  stream_params.steps = 2;
  stream_params.seed = 53;
  stream_params.evolve.new_stubs = 4;
  stream_params.evolve.new_peerings = 2;
  const auto stream =
      bgpsim::generate_update_stream(truth, obs_params, stream_params);
  ASSERT_EQ(stream.size(), 3u);  // bootstrap + 2 evolution steps

  obs::Registry metrics;
  ingest::UpdateApplier applier(metrics);
  ingest::EpochBuilder builder({}, metrics);
  for (const auto& step : stream) {
    for (const auto& update : step.updates) applier.apply(update);
    const auto corpus = applier.corpus();
    auto built = builder.build(corpus);
    ASSERT_TRUE(built.ok()) << built.error().context;
    EXPECT_EQ(bytes_of(built.value()),
              bytes_of(ingest::EpochBuilder::batch_build(corpus)));
  }
  EXPECT_EQ(metrics.counter("asrank_ingest_epochs_emitted_total", "").value(), 3u);
}

}  // namespace
}  // namespace asrank
