#include <gtest/gtest.h>

#include "topology/graph_diff.h"

namespace asrank {
namespace {

TEST(GraphDiff, IdenticalGraphsAreStable) {
  AsGraph g;
  g.add_p2c(Asn(1), Asn(2));
  g.add_p2p(Asn(2), Asn(3));
  const auto diff = diff_graphs(g, g);
  EXPECT_TRUE(diff.empty());
  EXPECT_EQ(diff.unchanged, 2u);
  EXPECT_DOUBLE_EQ(diff.stability(), 1.0);
}

TEST(GraphDiff, DetectsAdditionsAndRemovals) {
  AsGraph before, after;
  before.add_p2c(Asn(1), Asn(2));
  before.add_p2p(Asn(2), Asn(3));
  after.add_p2c(Asn(1), Asn(2));
  after.add_p2c(Asn(4), Asn(5));
  const auto diff = diff_graphs(before, after);
  ASSERT_EQ(diff.removed.size(), 1u);
  EXPECT_EQ(diff.removed[0].type, LinkType::kP2P);
  ASSERT_EQ(diff.added.size(), 1u);
  EXPECT_EQ(diff.added[0].a, Asn(4));
  EXPECT_EQ(diff.unchanged, 1u);
}

TEST(GraphDiff, DetectsTypeChange) {
  AsGraph before, after;
  before.add_p2c(Asn(1), Asn(2));  // paid transit...
  after.add_p2p(Asn(1), Asn(2));   // ...upgraded to settlement-free peering
  const auto diff = diff_graphs(before, after);
  ASSERT_EQ(diff.changed.size(), 1u);
  EXPECT_EQ(diff.changed[0].before.type, LinkType::kP2C);
  EXPECT_EQ(diff.changed[0].after.type, LinkType::kP2P);
  EXPECT_DOUBLE_EQ(diff.stability(), 0.0);
}

TEST(GraphDiff, DetectsProviderFlip) {
  AsGraph before, after;
  before.add_p2c(Asn(1), Asn(2));
  after.add_p2c(Asn(2), Asn(1));  // orientation inverted
  const auto diff = diff_graphs(before, after);
  ASSERT_EQ(diff.changed.size(), 1u);
  EXPECT_EQ(diff.changed[0].before.a, Asn(1));
  EXPECT_EQ(diff.changed[0].after.a, Asn(2));
}

TEST(GraphDiff, EmptyGraphs) {
  const auto diff = diff_graphs(AsGraph{}, AsGraph{});
  EXPECT_TRUE(diff.empty());
  EXPECT_DOUBLE_EQ(diff.stability(), 1.0);
}

TEST(GraphDiff, SiblingCountedLikeAnyAnnotation) {
  AsGraph before, after;
  before.add_s2s(Asn(1), Asn(2));
  after.add_p2p(Asn(1), Asn(2));
  const auto diff = diff_graphs(before, after);
  EXPECT_EQ(diff.changed.size(), 1u);
}

}  // namespace
}  // namespace asrank
