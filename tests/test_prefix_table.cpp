#include <gtest/gtest.h>

#include <map>

#include "topology/prefix_table.h"
#include "util/rng.h"

namespace asrank {
namespace {

Prefix p(const char* text) { return *Prefix::parse(text); }

TEST(PrefixTable, InsertAndExact) {
  PrefixTable table;
  EXPECT_TRUE(table.insert(p("10.0.0.0/8"), Asn(100)));
  EXPECT_FALSE(table.insert(p("10.0.0.0/8"), Asn(200)));  // replace, not new
  EXPECT_EQ(table.exact(p("10.0.0.0/8")), Asn(200));
  EXPECT_FALSE(table.exact(p("10.0.0.0/9")));
  EXPECT_EQ(table.size(), 1u);
}

TEST(PrefixTable, LongestPrefixMatch) {
  PrefixTable table;
  table.insert(p("10.0.0.0/8"), Asn(8));
  table.insert(p("10.1.0.0/16"), Asn(16));
  table.insert(p("10.1.2.0/24"), Asn(24));

  const auto host = table.lookup_v4(0x0a010203);  // 10.1.2.3
  ASSERT_TRUE(host);
  EXPECT_EQ(host->origin, Asn(24));
  EXPECT_EQ(host->prefix, p("10.1.2.0/24"));

  const auto mid = table.lookup_v4(0x0a01ff01);  // 10.1.255.1
  ASSERT_TRUE(mid);
  EXPECT_EQ(mid->origin, Asn(16));

  const auto top = table.lookup_v4(0x0aff0000);  // 10.255.0.0
  ASSERT_TRUE(top);
  EXPECT_EQ(top->origin, Asn(8));

  EXPECT_FALSE(table.lookup_v4(0x0b000000));  // 11.0.0.0: no match
}

TEST(PrefixTable, LookupOfCoveringPrefixFindsOnlyShorter) {
  PrefixTable table;
  table.insert(p("10.1.0.0/16"), Asn(16));
  // Looking up the /8 must NOT match the /16 inside it.
  EXPECT_FALSE(table.lookup(p("10.0.0.0/8")));
  table.insert(p("10.0.0.0/8"), Asn(8));
  const auto match = table.lookup(p("10.1.0.0/12"));
  ASSERT_TRUE(match);
  EXPECT_EQ(match->origin, Asn(8));
}

TEST(PrefixTable, DefaultRouteMatchesEverything) {
  PrefixTable table;
  table.insert(p("0.0.0.0/0"), Asn(1));
  const auto match = table.lookup_v4(0xdeadbeef);
  ASSERT_TRUE(match);
  EXPECT_EQ(match->origin, Asn(1));
  EXPECT_EQ(match->prefix.length(), 0);
}

TEST(PrefixTable, EraseAndPrune) {
  PrefixTable table;
  table.insert(p("10.0.0.0/8"), Asn(8));
  table.insert(p("10.1.0.0/16"), Asn(16));
  EXPECT_TRUE(table.erase(p("10.1.0.0/16")));
  EXPECT_FALSE(table.erase(p("10.1.0.0/16")));
  EXPECT_FALSE(table.erase(p("10.2.0.0/16")));  // never present
  EXPECT_EQ(table.size(), 1u);
  const auto match = table.lookup_v4(0x0a010000);
  ASSERT_TRUE(match);
  EXPECT_EQ(match->origin, Asn(8));  // falls back to the /8
}

TEST(PrefixTable, ErasePreservesDescendants) {
  PrefixTable table;
  table.insert(p("10.0.0.0/8"), Asn(8));
  table.insert(p("10.1.0.0/16"), Asn(16));
  EXPECT_TRUE(table.erase(p("10.0.0.0/8")));
  EXPECT_EQ(table.exact(p("10.1.0.0/16")), Asn(16));
  EXPECT_FALSE(table.lookup_v4(0x0aff0000));  // /8 gone
}

TEST(PrefixTable, Ipv6Coexists) {
  PrefixTable table;
  table.insert(p("10.0.0.0/8"), Asn(4));
  table.insert(p("2001:db8::/32"), Asn(6));
  table.insert(p("2001:db8:1::/48"), Asn(48));
  const auto match = table.lookup(p("2001:db8:1:2::/64"));
  ASSERT_TRUE(match);
  EXPECT_EQ(match->origin, Asn(48));
  const auto broad = table.lookup(p("2001:db8:ffff::/48"));
  ASSERT_TRUE(broad);
  EXPECT_EQ(broad->origin, Asn(6));
  EXPECT_EQ(table.size(), 3u);
}

TEST(PrefixTable, EntriesSortedAndComplete) {
  PrefixTable table;
  table.insert(p("192.0.2.0/24"), Asn(3));
  table.insert(p("10.0.0.0/8"), Asn(1));
  table.insert(p("10.0.0.0/24"), Asn(2));
  table.insert(p("2001:db8::/32"), Asn(4));
  const auto entries = table.entries();
  ASSERT_EQ(entries.size(), 4u);
  EXPECT_EQ(entries[0].prefix, p("10.0.0.0/8"));
  EXPECT_EQ(entries[1].prefix, p("10.0.0.0/24"));
  EXPECT_EQ(entries[2].prefix, p("192.0.2.0/24"));
  EXPECT_EQ(entries[3].prefix, p("2001:db8::/32"));
}

/// Property: trie lookups agree with a naive linear scan across random
/// tables and random queries.
class PrefixTableProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PrefixTableProperty, AgreesWithLinearScan) {
  util::Rng rng(GetParam());
  PrefixTable table;
  std::map<Prefix, Asn> reference;
  for (int i = 0; i < 300; ++i) {
    const auto length = static_cast<std::uint8_t>(8 + rng.uniform(17));  // 8..24
    const auto addr = static_cast<std::uint32_t>(rng());
    const Prefix prefix = Prefix::v4(addr, length);
    const Asn origin(static_cast<std::uint32_t>(1 + rng.uniform(1000)));
    table.insert(prefix, origin);
    reference[prefix] = origin;
  }
  EXPECT_EQ(table.size(), reference.size());

  for (int q = 0; q < 500; ++q) {
    const auto addr = static_cast<std::uint32_t>(rng());
    const Prefix host = Prefix::v4(addr, 32);
    // Naive longest-prefix scan.
    std::optional<std::pair<Prefix, Asn>> want;
    for (const auto& [prefix, origin] : reference) {
      if (prefix.contains(host) && (!want || prefix.length() > want->first.length())) {
        want = {prefix, origin};
      }
    }
    const auto got = table.lookup(host);
    ASSERT_EQ(got.has_value(), want.has_value()) << host.str();
    if (got) {
      EXPECT_EQ(got->prefix, want->first) << host.str();
      EXPECT_EQ(got->origin, want->second) << host.str();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PrefixTableProperty, ::testing::Values(1, 2, 3, 5, 8));

TEST(PrefixTable, MoveSemantics) {
  PrefixTable table;
  table.insert(p("10.0.0.0/8"), Asn(1));
  PrefixTable moved = std::move(table);
  EXPECT_EQ(moved.exact(p("10.0.0.0/8")), Asn(1));
  EXPECT_EQ(moved.size(), 1u);
}

}  // namespace
}  // namespace asrank
