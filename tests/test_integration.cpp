// Cross-module integration tests: the full generate -> observe -> (MRT) ->
// sanitize -> infer -> validate pipeline, with accuracy thresholds that
// guard the paper-band results recorded in EXPERIMENTS.md.
#include <gtest/gtest.h>

#include <sstream>

#include "baselines/gao.h"
#include "bgpsim/observation.h"
#include "core/asrank.h"
#include "core/cones.h"
#include "core/ranking.h"
#include "mrt/table_dump_v2.h"
#include "topogen/topogen.h"
#include "topology/serialization.h"
#include "util/stats.h"
#include "validation/ppv.h"
#include "validation/synthesize.h"

namespace asrank {
namespace {

struct World {
  topogen::GroundTruth truth;
  bgpsim::Observation observation;
  core::InferenceResult result;
};

World make_world(const std::string& preset, std::uint64_t seed,
                 std::size_t full_vps = 30, std::size_t partial_vps = 10) {
  auto gen = topogen::GenParams::preset(preset);
  gen.seed = seed;
  World world{topogen::generate(gen), {}, {}};
  bgpsim::ObservationParams obs;
  obs.seed = seed + 1;
  obs.full_vps = full_vps;
  obs.partial_vps = partial_vps;
  world.observation = bgpsim::observe(world.truth, obs);
  core::InferenceConfig config;
  config.sanitizer.ixp_asns.insert(world.truth.ixp_asns.begin(), world.truth.ixp_asns.end());
  world.result = core::AsRankInference(config).run(
      paths::PathCorpus::from_records(world.observation.routes));
  return world;
}

const World& small_world() {
  static const World world = make_world("small", 42);
  return world;
}

TEST(Integration, InferredGraphIsAcyclic) {
  EXPECT_TRUE(small_world().result.audit.p2c_acyclic);
}

TEST(Integration, CliqueRecoveredAlmostExactly) {
  // On a 300-AS topology a single clique member can fall below the
  // visibility needed for full adjacency; allow one miss but never a false
  // member.  (The medium preset recovers all 10/10 — see EXPERIMENTS.md.)
  const auto& world = small_world();
  std::size_t recovered = 0;
  for (const Asn as : world.result.clique) {
    EXPECT_TRUE(std::binary_search(world.truth.clique.begin(), world.truth.clique.end(), as))
        << "false clique member AS" << as.value();
    ++recovered;
  }
  EXPECT_GE(recovered + 1, world.truth.clique.size());
}

TEST(Integration, AccuracyMeetsPaperBand) {
  const auto& world = small_world();
  const auto accuracy =
      validation::evaluate_against_truth(world.result.graph, world.truth.graph);
  EXPECT_GT(accuracy.c2p.ppv(), 0.95) << "paper band: 99.6%";
  EXPECT_GT(accuracy.p2p.ppv(), 0.85) << "paper band: 98.7%";
  EXPECT_GT(accuracy.accuracy(), 0.93);
  // Loop-free clique-insert poisoning is structurally undetectable on paths
  // that never cross a genuine clique segment, so a small phantom residue is
  // expected — but it must stay marginal.
  EXPECT_LT(accuracy.unknown_links, world.result.graph.link_count() / 100);
}

TEST(Integration, ValidationCorpusPpvTracksTruthPpv) {
  const auto& world = small_world();
  const auto synth = validation::synthesize_validation(world.truth, world.observation,
                                                       validation::SynthesisParams{});
  const auto ppv = validation::evaluate_ppv(world.result.graph, synth.corpus);
  const auto truth_ppv =
      validation::evaluate_against_truth(world.result.graph, world.truth.graph);
  EXPECT_GT(ppv.validated_links, 0u);
  // The sampled-corpus estimate should be within a few points of exact truth.
  EXPECT_NEAR(ppv.c2p.ppv(), truth_ppv.c2p.ppv(), 0.05);
  EXPECT_GT(ppv.coverage(), 0.10);
}

TEST(Integration, MrtRoundTripPreservesInference) {
  const auto& world = small_world();
  // Serialize the observation as a binary MRT RIB dump, read it back, and
  // re-run inference: the result must be identical.
  std::stringstream stream;
  mrt::write_table_dump_v2(bgpsim::to_rib_dump(world.observation), stream);
  const auto recovered = bgpsim::from_rib_dump(mrt::read_table_dump_v2(stream));

  core::InferenceConfig config;
  config.sanitizer.ixp_asns.insert(world.truth.ixp_asns.begin(), world.truth.ixp_asns.end());
  const auto result =
      core::AsRankInference(config).run(paths::PathCorpus::from_records(recovered));
  EXPECT_EQ(result.graph.links(), world.result.graph.links());
  EXPECT_EQ(result.clique, world.result.clique);
}

TEST(Integration, AsRelExportReimportIdentity) {
  const auto& world = small_world();
  std::stringstream text;
  write_as_rel(world.result.graph, text);
  const AsGraph parsed = read_as_rel(text);
  EXPECT_EQ(parsed.links(), world.result.graph.links());
}

TEST(Integration, DeterministicEndToEnd) {
  const auto a = make_world("tiny", 9);
  const auto b = make_world("tiny", 9);
  EXPECT_EQ(a.result.graph.links(), b.result.graph.links());
  EXPECT_EQ(a.result.clique, b.result.clique);
  const auto cones_a = core::recursive_cone(a.result.graph);
  const auto cones_b = core::recursive_cone(b.result.graph);
  EXPECT_EQ(cones_a, cones_b);
}

TEST(Integration, MoreVpsSeeMoreLinks) {
  const auto few = make_world("small", 11, 5, 2);
  const auto many = make_world("small", 11, 40, 10);
  EXPECT_GT(many.result.graph.link_count(), few.result.graph.link_count());
}

TEST(Integration, SanitizerRemovesExactlyInjectedLoops) {
  const auto& world = small_world();
  // Every loop-style poisoned path the simulator injected produces a loop;
  // sanitized corpora must contain none, and the sanitizer's loop counter
  // must cover that slice of the injection audit.  (Clique-insert poisoning
  // is loop-free and is handled by the pipeline's step 4 instead.)
  EXPECT_GE(world.result.audit.sanitize.loops_discarded +
                world.result.audit.sanitize.duplicates_removed,
            world.observation.audit.poisoned_loop);
  for (const auto& record : world.result.sanitized.records()) {
    EXPECT_FALSE(record.path.has_loop());
    EXPECT_FALSE(record.path.has_reserved_asn());
    EXPECT_FALSE(record.path.has_prepending());
  }
}

TEST(Integration, ConeSizeOrderingAcrossMethods) {
  const auto& world = small_world();
  const auto recursive = core::recursive_cone(world.result.graph);
  const auto ppdc =
      core::provider_peer_observed_cone(world.result.graph, world.result.sanitized);
  const auto observed = core::bgp_observed_cone(world.result.graph, world.result.sanitized);
  std::size_t sum_recursive = 0, sum_ppdc = 0, sum_observed = 0;
  for (const auto& [as, members] : recursive) sum_recursive += members.size();
  for (const auto& [as, members] : ppdc) sum_ppdc += members.size();
  for (const auto& [as, members] : observed) sum_observed += members.size();
  // Paper §5: recursive over-counts relative to both path-based cones.
  // (recursive >= ppdc and recursive >= observed are guaranteed member-wise;
  // ppdc vs observed ordering is empirical and scale-dependent — checked at
  // medium scale by bench_cone_ccdf, not asserted here.)
  EXPECT_GE(sum_recursive, sum_ppdc);
  EXPECT_GE(sum_recursive, sum_observed);
}

TEST(Integration, TopOfRankingIsCliqueDominated) {
  const auto& world = small_world();
  const auto cones =
      core::provider_peer_observed_cone(world.result.graph, world.result.sanitized);
  const auto top = core::top_n(cones, world.result.degrees, world.truth.clique.size());
  std::size_t clique_in_top = 0;
  for (const auto& entry : top) {
    if (std::binary_search(world.truth.clique.begin(), world.truth.clique.end(), entry.as)) {
      ++clique_in_top;
    }
  }
  EXPECT_GE(clique_in_top * 2, world.truth.clique.size());  // at least half
}

TEST(Integration, InferredConeCorrelatesWithTruthCone) {
  const auto& world = small_world();
  const auto inferred_cones = core::recursive_cone(world.result.graph);
  const auto truth_cones = core::recursive_cone(world.truth.graph);
  std::vector<double> inferred_sizes, truth_sizes;
  for (const auto& [as, members] : inferred_cones) {
    const auto it = truth_cones.find(as);
    if (it == truth_cones.end()) continue;
    inferred_sizes.push_back(static_cast<double>(members.size()));
    truth_sizes.push_back(static_cast<double>(it->second.size()));
  }
  EXPECT_GT(util::kendall_tau(inferred_sizes, truth_sizes), 0.6);
}

TEST(Integration, AsRankOutperformsGaoOnPpv) {
  const auto& world = small_world();
  const auto corpus = paths::PathCorpus::from_records(world.observation.routes);
  const auto gao_graph = baselines::GaoInference().infer(corpus);
  const auto gao = validation::evaluate_against_truth(gao_graph, world.truth.graph);
  const auto ours =
      validation::evaluate_against_truth(world.result.graph, world.truth.graph);
  EXPECT_GT(ours.accuracy(), gao.accuracy());
}

class SeedSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SeedSweep, PipelineInvariantsAcrossSeeds) {
  const auto world = make_world("small", GetParam(), 20, 6);
  EXPECT_TRUE(world.result.audit.p2c_acyclic);
  const auto accuracy =
      validation::evaluate_against_truth(world.result.graph, world.truth.graph);
  EXPECT_GT(accuracy.accuracy(), 0.90) << "seed " << GetParam();
  EXPECT_LT(accuracy.unknown_links, world.result.graph.link_count() / 50);
  // Clique recovery: at least all-but-one member, no false members beyond one.
  std::size_t shared = 0;
  for (const Asn as : world.result.clique) {
    if (std::binary_search(world.truth.clique.begin(), world.truth.clique.end(), as)) {
      ++shared;
    }
  }
  EXPECT_GE(shared + 1, world.truth.clique.size()) << "seed " << GetParam();
  EXPECT_LE(world.result.clique.size(), world.truth.clique.size() + 1)
      << "seed " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Seeds, SeedSweep, ::testing::Values(1, 2, 3, 5, 8, 13));

}  // namespace
}  // namespace asrank
