// Tests for the observability subsystem (src/obs/): metrics registry,
// Prometheus rendering, leveled structured logging, and RAII stage timers.
#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "obs/log.h"
#include "obs/metrics.h"
#include "obs/timer.h"

namespace asrank::obs {
namespace {

// ------------------------------------------------------------- counters --

TEST(Metrics, CounterStartsAtZeroAndAccumulates) {
  Registry registry;
  Counter& c = registry.counter("test_total", "help text");
  EXPECT_EQ(c.value(), 0u);
  c.inc();
  c.inc(41);
  EXPECT_EQ(c.value(), 42u);
}

TEST(Metrics, GaugeSetAndAdd) {
  Registry registry;
  Gauge& g = registry.gauge("test_gauge");
  g.set(10);
  g.add(-3);
  EXPECT_EQ(g.value(), 7);
  g.set(-5);
  EXPECT_EQ(g.value(), -5);
}

TEST(Metrics, RegistryReturnsSameSeriesForSameNameAndLabels) {
  Registry registry;
  Counter& a = registry.counter("dup_total", "first help");
  Counter& b = registry.counter("dup_total", "second help (ignored)");
  EXPECT_EQ(&a, &b);
  a.inc();
  EXPECT_EQ(b.value(), 1u);
}

TEST(Metrics, LabelsDistinguishSeriesWithinOneFamily) {
  Registry registry;
  Counter& rank = registry.counter("q_total", "", {{"type", "rank"}});
  Counter& cone = registry.counter("q_total", "", {{"type", "cone"}});
  EXPECT_NE(&rank, &cone);
  rank.inc(3);
  EXPECT_EQ(rank.value(), 3u);
  EXPECT_EQ(cone.value(), 0u);
}

TEST(Metrics, TypeConflictOnOneNameThrows) {
  Registry registry;
  (void)registry.counter("conflict", "");
  EXPECT_THROW((void)registry.gauge("conflict", ""), std::logic_error);
  EXPECT_THROW((void)registry.histogram("conflict", ""), std::logic_error);
}

// ----------------------------------------------------------- histograms --

TEST(Metrics, HistogramRejectsNonAscendingBounds) {
  const std::uint64_t descending[] = {10, 5};
  EXPECT_THROW(Histogram{std::span<const std::uint64_t>(descending)},
               std::logic_error);
  const std::uint64_t repeated[] = {5, 5};
  EXPECT_THROW(Histogram{std::span<const std::uint64_t>(repeated)},
               std::logic_error);
}

TEST(Metrics, HistogramBucketUpperBoundsAreInclusive) {
  // Prometheus `le` semantics: observe(10) falls in the le="10" bucket, not
  // the next one up.
  const std::uint64_t bounds[] = {1, 10, 100};
  Histogram h{std::span<const std::uint64_t>(bounds)};
  h.observe(0);    // le=1
  h.observe(1);    // le=1 (inclusive)
  h.observe(2);    // le=10
  h.observe(10);   // le=10 (inclusive)
  h.observe(11);   // le=100
  h.observe(100);  // le=100 (inclusive)
  h.observe(101);  // +Inf
  EXPECT_EQ(h.bucket_count(0), 2u);
  EXPECT_EQ(h.bucket_count(1), 2u);
  EXPECT_EQ(h.bucket_count(2), 2u);
  EXPECT_EQ(h.bucket_count(3), 1u);  // +Inf overflow bucket
  EXPECT_EQ(h.count(), 7u);
  EXPECT_EQ(h.sum(), 0u + 1 + 2 + 10 + 11 + 100 + 101);
}

TEST(Metrics, HistogramSumAndCountAreExactIntegers) {
  // QueryStats reconstructs avg_micros as sum()/count(); both must be plain
  // u64 tallies with no floating point on the write path.
  Registry registry;
  Histogram& h = registry.histogram("exact_micros", "");
  for (std::uint64_t v = 0; v < 1000; ++v) h.observe(v);
  EXPECT_EQ(h.count(), 1000u);
  EXPECT_EQ(h.sum(), 999u * 1000u / 2);
}

TEST(Metrics, ConcurrentObservationsAreNotLost) {
  Registry registry;
  Counter& counter = registry.counter("hammer_total", "");
  Histogram& histogram = registry.histogram("hammer_micros", "");
  constexpr int kThreads = 4;
  constexpr std::uint64_t kPerThread = 20000;
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&counter, &histogram] {
      for (std::uint64_t i = 0; i < kPerThread; ++i) {
        counter.inc();
        histogram.observe(i % 3000);
      }
    });
  }
  for (auto& worker : workers) worker.join();
  EXPECT_EQ(counter.value(), kThreads * kPerThread);
  EXPECT_EQ(histogram.count(), kThreads * kPerThread);
  std::uint64_t bucket_total = 0;
  for (std::size_t i = 0; i <= histogram.bounds().size(); ++i) {
    bucket_total += histogram.bucket_count(i);
  }
  EXPECT_EQ(bucket_total, histogram.count());
}

// ------------------------------------------------------------ rendering --

TEST(Metrics, RenderLabelsEscapesSpecialCharacters) {
  EXPECT_EQ(render_labels({}), "");
  EXPECT_EQ(render_labels({{"a", "x"}, {"b", "y"}}), "{a=\"x\",b=\"y\"}");
  EXPECT_EQ(render_labels({{"p", "a\\b\"c\nd"}}), "{p=\"a\\\\b\\\"c\\nd\"}");
}

TEST(Metrics, PrometheusRenderEmitsHelpTypeAndValues) {
  Registry registry;
  registry.counter("beta_total", "counts things").inc(7);
  registry.gauge("alpha_bytes", "resident bytes").set(123);
  const std::string text = registry.render_prometheus();
  // Families sort by name, so the gauge comes first.
  EXPECT_LT(text.find("# HELP alpha_bytes resident bytes\n"),
            text.find("# HELP beta_total counts things\n"));
  EXPECT_NE(text.find("# TYPE alpha_bytes gauge\n"), std::string::npos);
  EXPECT_NE(text.find("alpha_bytes 123\n"), std::string::npos);
  EXPECT_NE(text.find("# TYPE beta_total counter\n"), std::string::npos);
  EXPECT_NE(text.find("beta_total 7\n"), std::string::npos);
}

TEST(Metrics, PrometheusHistogramBucketsAreCumulativeWithInf) {
  Registry registry;
  const std::uint64_t bounds[] = {10, 100};
  Histogram& h = registry.histogram("lat_micros", "latency",
                                    std::span<const std::uint64_t>(bounds),
                                    {{"type", "rank"}});
  h.observe(5);
  h.observe(10);
  h.observe(50);
  h.observe(5000);
  const std::string text = registry.render_prometheus();
  EXPECT_NE(text.find("# TYPE lat_micros histogram\n"), std::string::npos);
  // Buckets are cumulative; the label set merges `le` with the series labels.
  EXPECT_NE(text.find("lat_micros_bucket{type=\"rank\",le=\"10\"} 2\n"),
            std::string::npos);
  EXPECT_NE(text.find("lat_micros_bucket{type=\"rank\",le=\"100\"} 3\n"),
            std::string::npos);
  EXPECT_NE(text.find("lat_micros_bucket{type=\"rank\",le=\"+Inf\"} 4\n"),
            std::string::npos);
  EXPECT_NE(text.find("lat_micros_sum{type=\"rank\"} 5065\n"), std::string::npos);
  EXPECT_NE(text.find("lat_micros_count{type=\"rank\"} 4\n"), std::string::npos);
}

// --------------------------------------------------------------- timers --

TEST(Timer, ScopedTimerObservesOnceOnDestruction) {
  Registry registry;
  Histogram& h = registry.histogram("span_micros", "");
  {
    ScopedTimer timer(&h);
    EXPECT_EQ(h.count(), 0u);
  }
  EXPECT_EQ(h.count(), 1u);
}

TEST(Timer, StageHistogramResolvesPerStageSeries) {
  Registry registry;
  Histogram& voting = stage_histogram("voting", registry);
  Histogram& clique = stage_histogram("clique", registry);
  EXPECT_NE(&voting, &clique);
  EXPECT_EQ(&voting, &stage_histogram("voting", registry));
  voting.observe(3);
  const std::string text = registry.render_prometheus();
  EXPECT_NE(
      text.find("asrank_stage_duration_micros_count{stage=\"voting\"} 1\n"),
      std::string::npos);
}

// -------------------------------------------------------------- logging --

TEST(Log, ParseLogLevelAcceptsAliases) {
  EXPECT_EQ(parse_log_level("trace"), LogLevel::kTrace);
  EXPECT_EQ(parse_log_level("DEBUG"), LogLevel::kDebug);
  EXPECT_EQ(parse_log_level("Info"), LogLevel::kInfo);
  EXPECT_EQ(parse_log_level("warn"), LogLevel::kWarn);
  EXPECT_EQ(parse_log_level("warning"), LogLevel::kWarn);
  EXPECT_EQ(parse_log_level("error"), LogLevel::kError);
  EXPECT_EQ(parse_log_level("off"), LogLevel::kOff);
  EXPECT_EQ(parse_log_level("none"), LogLevel::kOff);
  EXPECT_EQ(parse_log_level("bogus"), std::nullopt);
}

/// Points the global logger at a buffer for one test, restoring stderr,
/// info level, and text mode on the way out.
class CapturedLogger {
 public:
  CapturedLogger() {
    Logger::global().set_sink(&buffer_);
    Logger::global().set_level(LogLevel::kInfo);
    Logger::global().set_json(false);
  }
  ~CapturedLogger() {
    Logger::global().set_sink(nullptr);
    Logger::global().set_level(LogLevel::kInfo);
    Logger::global().set_json(false);
  }
  [[nodiscard]] std::string text() const { return buffer_.str(); }

 private:
  std::ostringstream buffer_;
};

TEST(Log, TextLineCarriesLevelMessageAndFields) {
  CapturedLogger capture;
  log_info("snapshot loaded", {{"ases", 42}, {"path", "run.asrk"}});
  const std::string line = capture.text();
  EXPECT_NE(line.find(" INFO snapshot loaded ases=42 path=run.asrk\n"),
            std::string::npos);
  // Leads with an ISO-8601 UTC timestamp.
  EXPECT_NE(line.find("T"), std::string::npos);
  EXPECT_EQ(line.find("Z "), line.find(' ') - 1);
}

TEST(Log, LevelsBelowThresholdAreDropped) {
  CapturedLogger capture;
  Logger::global().set_level(LogLevel::kWarn);
  log_debug("invisible");
  log_info("also invisible");
  log_warn("visible");
  const std::string text = capture.text();
  EXPECT_EQ(text.find("invisible"), std::string::npos);
  EXPECT_NE(text.find("WARN visible"), std::string::npos);
}

TEST(Log, JsonLinesParseMinimally) {
  CapturedLogger capture;
  Logger::global().set_json(true);
  log_info("hello \"world\"\n", {{"count", 3}, {"ok", true}, {"who", "a\\b"}});
  const std::string line = capture.text();
  ASSERT_FALSE(line.empty());
  // One complete JSON object per line.
  EXPECT_EQ(line.front(), '{');
  EXPECT_EQ(line.substr(line.size() - 2), "}\n");
  EXPECT_EQ(std::count(line.begin(), line.end(), '\n'), 1);
  EXPECT_NE(line.find("\"ts\":\""), std::string::npos);
  EXPECT_NE(line.find("\"level\":\"info\""), std::string::npos);
  // Message quotes, newline, and backslash are escaped.
  EXPECT_NE(line.find("\"msg\":\"hello \\\"world\\\"\\n\""), std::string::npos);
  EXPECT_NE(line.find("\"count\":3"), std::string::npos);
  EXPECT_NE(line.find("\"ok\":true"), std::string::npos);
  EXPECT_NE(line.find("\"who\":\"a\\\\b\""), std::string::npos);
}

TEST(Log, DisabledCheckIsVisibleThroughEnabled) {
  CapturedLogger capture;
  Logger::global().set_level(LogLevel::kError);
  EXPECT_FALSE(Logger::global().enabled(LogLevel::kDebug));
  EXPECT_TRUE(Logger::global().enabled(LogLevel::kError));
}

}  // namespace
}  // namespace asrank::obs
