// Property-based invariant suite (Dimitropoulos et al. 2007 §"validation"
// line of work): instead of fixed expectations, these tests assert the
// structural invariants of relationship inference and customer cones over
// randomized topogen topologies with seeded RNG, so every run covers several
// distinct random Internets while staying reproducible.
//
// Invariants checked for every (preset, seed) sample:
//   * the inferred c2p hierarchy is acyclic (assumption A3 is restored by
//     the pipeline even when measurement artifacts violate it);
//   * every customer cone contains the AS itself;
//   * cone nesting: a provider's recursive cone is a superset of each of its
//     customers' cones;
//   * inferred clique members are pairwise non-c2p (assumption A1);
//   * the recursive and BGP-observed cone definitions agree on
//     full-visibility inputs (a corpus containing every maximal p2c descent
//     chain).
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "bgpsim/observation.h"
#include "core/asrank.h"
#include "core/cones.h"
#include "topogen/topogen.h"

namespace asrank {
namespace {

struct Sample {
  topogen::GroundTruth truth;
  core::InferenceResult result;
};

Sample make_sample(const std::string& preset, std::uint64_t seed) {
  auto gen = topogen::GenParams::preset(preset);
  gen.seed = seed;
  Sample sample{topogen::generate(gen), {}};
  bgpsim::ObservationParams obs;
  obs.seed = seed + 1;
  obs.full_vps = 20;
  obs.partial_vps = 5;
  const auto observation = bgpsim::observe(sample.truth, obs);
  core::InferenceConfig config;
  config.sanitizer.ixp_asns.insert(sample.truth.ixp_asns.begin(),
                                   sample.truth.ixp_asns.end());
  sample.result = core::AsRankInference(config).run(
      paths::PathCorpus::from_records(observation.routes));
  return sample;
}

/// The randomized sample set: two sizes, several seeds each.  Samples are
/// built once and shared across tests (inference dominates the cost).
const std::vector<Sample>& samples() {
  static const std::vector<Sample> all = [] {
    std::vector<Sample> built;
    for (const std::uint64_t seed : {7ULL, 1009ULL, 52625ULL}) {
      built.push_back(make_sample("tiny", seed));
      built.push_back(make_sample("small", seed));
    }
    return built;
  }();
  return all;
}

/// True iff sorted `inner` is a subset of sorted `outer`.
bool subset_of(const std::vector<Asn>& inner, const std::vector<Asn>& outer) {
  return std::includes(outer.begin(), outer.end(), inner.begin(), inner.end());
}

TEST(Properties, InferredHierarchyIsAcyclic) {
  for (const Sample& sample : samples()) {
    EXPECT_TRUE(sample.result.graph.p2c_acyclic());
    EXPECT_TRUE(sample.result.audit.p2c_acyclic);
  }
}

TEST(Properties, EveryConeContainsItsOwnAs) {
  for (const Sample& sample : samples()) {
    const auto cones = core::recursive_cone(sample.result.graph);
    EXPECT_EQ(cones.size(), sample.result.graph.ases().size());
    for (const auto& [as, members] : cones) {
      EXPECT_TRUE(std::binary_search(members.begin(), members.end(), as))
          << "cone of AS" << as.value() << " is missing the AS itself";
    }
  }
}

TEST(Properties, ProviderConeContainsEachCustomerCone) {
  for (const Sample& sample : samples()) {
    // Check nesting on both the inferred graph and the ground truth graph —
    // the invariant is definitional for any acyclic p2c relation.
    for (const AsGraph* graph : {&sample.result.graph, &sample.truth.graph}) {
      const auto cones = core::recursive_cone(*graph);
      for (const Asn provider : graph->ases()) {
        const auto& provider_cone = cones.at(provider);
        for (const Asn customer : graph->customers(provider)) {
          EXPECT_TRUE(subset_of(cones.at(customer), provider_cone))
              << "cone of provider AS" << provider.value()
              << " does not contain cone of customer AS" << customer.value();
        }
      }
    }
  }
}

TEST(Properties, CliqueMembersArePairwiseNonC2p) {
  for (const Sample& sample : samples()) {
    const auto& clique = sample.result.clique;
    for (std::size_t i = 0; i < clique.size(); ++i) {
      for (std::size_t j = i + 1; j < clique.size(); ++j) {
        const auto view = sample.result.graph.view(clique[i], clique[j]);
        if (!view) continue;  // members need not be adjacent in observed paths
        EXPECT_NE(*view, RelView::kCustomer)
            << "clique AS" << clique[j].value() << " inferred as customer of AS"
            << clique[i].value();
        EXPECT_NE(*view, RelView::kProvider)
            << "clique AS" << clique[i].value() << " inferred as customer of AS"
            << clique[j].value();
      }
    }
  }
}

/// Enumerate every maximal p2c descent chain starting from `root` and append
/// each as an observed path.  Together these give the BGP-observed cone
/// computation full visibility of the customer DAG.
void append_descent_chains(const AsGraph& graph, Asn root, paths::PathCorpus& corpus) {
  std::vector<Asn> chain{root};
  // Explicit DFS over customer links; emits a record at every leaf.
  struct Frame {
    Asn node;
    std::size_t next_child = 0;
  };
  std::vector<Frame> stack{{root, 0}};
  while (!stack.empty()) {
    Frame& top = stack.back();
    const auto customers = graph.customers(top.node);
    if (top.next_child < customers.size()) {
      const Asn child = customers[top.next_child++];
      chain.push_back(child);
      stack.push_back({child, 0});
      continue;
    }
    if (customers.empty() && chain.size() >= 2) {
      corpus.add(root, Prefix::v4(chain.back().value() << 8, 24), AsPath(chain));
    }
    chain.pop_back();
    stack.pop_back();
  }
}

TEST(Properties, RecursiveAndBgpObservedConesAgreeUnderFullVisibility) {
  // Full visibility makes the direct observation converge to the closure:
  // every p2c-reachable AS appears on some contiguous descent chain.  Run on
  // the ground-truth graphs (acyclic by construction); tiny preset only —
  // chain enumeration is exponential in principle.
  for (const std::uint64_t seed : {7ULL, 1009ULL, 52625ULL}) {
    auto gen = topogen::GenParams::preset("tiny");
    gen.seed = seed;
    const auto truth = topogen::generate(gen);
    paths::PathCorpus corpus;
    for (const Asn as : truth.graph.ases()) {
      append_descent_chains(truth.graph, as, corpus);
    }
    const auto recursive = core::recursive_cone(truth.graph);
    const auto observed = core::bgp_observed_cone(truth.graph, corpus);
    EXPECT_EQ(recursive, observed) << "seed " << seed;
  }
}

TEST(Properties, RecursiveConeDominatesObservedCones) {
  // The documented inclusion chain: recursive ⊇ provider/peer-observed and
  // recursive ⊇ BGP-observed, per AS, on the inferred graph with the real
  // (partial-visibility) corpus.
  for (const Sample& sample : samples()) {
    const auto& corpus = sample.result.sanitized;
    const auto recursive = core::recursive_cone(sample.result.graph);
    const auto ppdc = core::provider_peer_observed_cone(sample.result.graph, corpus);
    const auto observed = core::bgp_observed_cone(sample.result.graph, corpus);
    for (const auto& [as, members] : recursive) {
      EXPECT_TRUE(subset_of(ppdc.at(as), members));
      EXPECT_TRUE(subset_of(observed.at(as), members));
    }
  }
}

}  // namespace
}  // namespace asrank
