// Property-based invariant suite (Dimitropoulos et al. 2007 §"validation"
// line of work): instead of fixed expectations, these tests assert the
// structural invariants of relationship inference and customer cones over
// randomized topogen topologies with seeded RNG, so every run covers several
// distinct random Internets while staying reproducible.
//
// Invariants checked for every (preset, seed) sample:
//   * the inferred c2p hierarchy is acyclic (assumption A3 is restored by
//     the pipeline even when measurement artifacts violate it);
//   * every customer cone contains the AS itself;
//   * cone nesting: a provider's recursive cone is a superset of each of its
//     customers' cones;
//   * inferred clique members are pairwise non-c2p (assumption A1);
//   * the recursive and BGP-observed cone definitions agree on
//     full-visibility inputs (a corpus containing every maximal p2c descent
//     chain).
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "bgpsim/observation.h"
#include "core/asrank.h"
#include "core/cones.h"
#include "topogen/topogen.h"
#include "topology/interner.h"
#include "topology/topology_view.h"

namespace asrank {
namespace {

struct Sample {
  topogen::GroundTruth truth;
  core::InferenceResult result;
};

Sample make_sample(const std::string& preset, std::uint64_t seed) {
  auto gen = topogen::GenParams::preset(preset);
  gen.seed = seed;
  Sample sample{topogen::generate(gen), {}};
  bgpsim::ObservationParams obs;
  obs.seed = seed + 1;
  obs.full_vps = 20;
  obs.partial_vps = 5;
  const auto observation = bgpsim::observe(sample.truth, obs);
  core::InferenceConfig config;
  config.sanitizer.ixp_asns.insert(sample.truth.ixp_asns.begin(),
                                   sample.truth.ixp_asns.end());
  sample.result = core::AsRankInference(config).run(
      paths::PathCorpus::from_records(observation.routes));
  return sample;
}

/// The randomized sample set: two sizes, several seeds each.  Samples are
/// built once and shared across tests (inference dominates the cost).
const std::vector<Sample>& samples() {
  static const std::vector<Sample> all = [] {
    std::vector<Sample> built;
    for (const std::uint64_t seed : {7ULL, 1009ULL, 52625ULL}) {
      built.push_back(make_sample("tiny", seed));
      built.push_back(make_sample("small", seed));
    }
    return built;
  }();
  return all;
}

/// True iff sorted `inner` is a subset of sorted `outer`.
bool subset_of(const std::vector<Asn>& inner, const std::vector<Asn>& outer) {
  return std::includes(outer.begin(), outer.end(), inner.begin(), inner.end());
}

TEST(Properties, InferredHierarchyIsAcyclic) {
  for (const Sample& sample : samples()) {
    EXPECT_TRUE(sample.result.graph.p2c_acyclic());
    EXPECT_TRUE(sample.result.audit.p2c_acyclic);
  }
}

TEST(Properties, EveryConeContainsItsOwnAs) {
  for (const Sample& sample : samples()) {
    const auto cones = core::recursive_cone(sample.result.graph);
    EXPECT_EQ(cones.size(), sample.result.graph.ases().size());
    for (const auto& [as, members] : cones) {
      EXPECT_TRUE(std::binary_search(members.begin(), members.end(), as))
          << "cone of AS" << as.value() << " is missing the AS itself";
    }
  }
}

TEST(Properties, ProviderConeContainsEachCustomerCone) {
  for (const Sample& sample : samples()) {
    // Check nesting on both the inferred graph and the ground truth graph —
    // the invariant is definitional for any acyclic p2c relation.
    for (const AsGraph* graph : {&sample.result.graph, &sample.truth.graph}) {
      const auto cones = core::recursive_cone(*graph);
      for (const Asn provider : graph->ases()) {
        const auto& provider_cone = cones.at(provider);
        for (const Asn customer : graph->customers(provider)) {
          EXPECT_TRUE(subset_of(cones.at(customer), provider_cone))
              << "cone of provider AS" << provider.value()
              << " does not contain cone of customer AS" << customer.value();
        }
      }
    }
  }
}

TEST(Properties, CliqueMembersArePairwiseNonC2p) {
  for (const Sample& sample : samples()) {
    const auto& clique = sample.result.clique;
    for (std::size_t i = 0; i < clique.size(); ++i) {
      for (std::size_t j = i + 1; j < clique.size(); ++j) {
        const auto view = sample.result.graph.view(clique[i], clique[j]);
        if (!view) continue;  // members need not be adjacent in observed paths
        EXPECT_NE(*view, RelView::kCustomer)
            << "clique AS" << clique[j].value() << " inferred as customer of AS"
            << clique[i].value();
        EXPECT_NE(*view, RelView::kProvider)
            << "clique AS" << clique[i].value() << " inferred as customer of AS"
            << clique[j].value();
      }
    }
  }
}

/// Enumerate every maximal p2c descent chain starting from `root` and append
/// each as an observed path.  Together these give the BGP-observed cone
/// computation full visibility of the customer DAG.
void append_descent_chains(const AsGraph& graph, Asn root, paths::PathCorpus& corpus) {
  std::vector<Asn> chain{root};
  // Explicit DFS over customer links; emits a record at every leaf.
  struct Frame {
    Asn node;
    std::size_t next_child = 0;
  };
  std::vector<Frame> stack{{root, 0}};
  while (!stack.empty()) {
    Frame& top = stack.back();
    const auto customers = graph.customers(top.node);
    if (top.next_child < customers.size()) {
      const Asn child = customers[top.next_child++];
      chain.push_back(child);
      stack.push_back({child, 0});
      continue;
    }
    if (customers.empty() && chain.size() >= 2) {
      corpus.add(root, Prefix::v4(chain.back().value() << 8, 24), AsPath(chain));
    }
    chain.pop_back();
    stack.pop_back();
  }
}

TEST(Properties, RecursiveAndBgpObservedConesAgreeUnderFullVisibility) {
  // Full visibility makes the direct observation converge to the closure:
  // every p2c-reachable AS appears on some contiguous descent chain.  Run on
  // the ground-truth graphs (acyclic by construction); tiny preset only —
  // chain enumeration is exponential in principle.
  for (const std::uint64_t seed : {7ULL, 1009ULL, 52625ULL}) {
    auto gen = topogen::GenParams::preset("tiny");
    gen.seed = seed;
    const auto truth = topogen::generate(gen);
    paths::PathCorpus corpus;
    for (const Asn as : truth.graph.ases()) {
      append_descent_chains(truth.graph, as, corpus);
    }
    const auto recursive = core::recursive_cone(truth.graph);
    const auto observed = core::bgp_observed_cone(truth.graph, corpus);
    EXPECT_EQ(recursive, observed) << "seed " << seed;
  }
}

TEST(Properties, RecursiveConeDominatesObservedCones) {
  // The documented inclusion chain: recursive ⊇ provider/peer-observed and
  // recursive ⊇ BGP-observed, per AS, on the inferred graph with the real
  // (partial-visibility) corpus.
  for (const Sample& sample : samples()) {
    const auto& corpus = sample.result.sanitized;
    const auto recursive = core::recursive_cone(sample.result.graph);
    const auto ppdc = core::provider_peer_observed_cone(sample.result.graph, corpus);
    const auto observed = core::bgp_observed_cone(sample.result.graph, corpus);
    for (const auto& [as, members] : recursive) {
      EXPECT_TRUE(subset_of(ppdc.at(as), members));
      EXPECT_TRUE(subset_of(observed.at(as), members));
    }
  }
}

TEST(Properties, InternerRoundTripsAndPreservesOrder) {
  using topology::AsnInterner;
  using topology::NodeId;
  for (const Sample& sample : samples()) {
    // Build from the (unsorted, duplicated) corpus hop stream, as the
    // pipeline does.
    std::vector<Asn> hops;
    for (const auto& record : sample.result.sanitized.records()) {
      const auto path = record.path.hops();
      hops.insert(hops.end(), path.begin(), path.end());
    }
    const AsnInterner interner = AsnInterner::from_asns(hops);

    // The table is strictly ascending and ids round-trip: id ordering is ASN
    // ordering (the order-preservation every dense tie-break relies on).
    ASSERT_FALSE(interner.empty());
    const auto asns = interner.asns();
    for (NodeId id = 0; id < interner.size(); ++id) {
      if (id > 0) {
        EXPECT_LT(asns[id - 1], asns[id]);
      }
      EXPECT_EQ(interner.asn_of(id), asns[id]);
      EXPECT_EQ(interner.id_of(asns[id]), id);
      EXPECT_TRUE(interner.contains(asns[id]));
    }
    EXPECT_EQ(interner.id_of(Asn(asns.back().value() + 1)), topology::kNoNode);

    // translate() is asn_of's inverse on every corpus path.
    std::vector<NodeId> ids;
    for (const auto& record : sample.result.sanitized.records()) {
      interner.translate(record.path.hops(), ids);
      ASSERT_EQ(ids.size(), record.path.hops().size());
      for (std::size_t i = 0; i < ids.size(); ++i) {
        ASSERT_NE(ids[i], topology::kNoNode);
        EXPECT_EQ(interner.asn_of(ids[i]), record.path.hops()[i]);
      }
    }
  }
}

TEST(Properties, FrozenViewMatchesGraphAdjacency) {
  using topology::NodeId;
  for (const Sample& sample : samples()) {
    const AsGraph& graph = sample.result.graph;
    const auto view = graph.freeze(sample.result.clique);

    EXPECT_EQ(view.node_count(), graph.ases().size());
    EXPECT_EQ(view.link_count(), graph.links().size());

    for (const Asn as : graph.ases()) {
      const NodeId node = view.interner().id_of(as);
      ASSERT_NE(node, topology::kNoNode);

      // The CSR row is the sorted union of the per-class neighbor sets, and
      // every row entry carries the same RelView the mutable graph reports.
      std::vector<Asn> expected;
      for (const Asn p : graph.providers(as)) expected.push_back(p);
      for (const Asn c : graph.customers(as)) expected.push_back(c);
      for (const Asn p : graph.peers(as)) expected.push_back(p);
      for (const Asn s : graph.siblings(as)) expected.push_back(s);
      std::sort(expected.begin(), expected.end());

      const auto row = view.neighbors(node);
      ASSERT_EQ(row.size(), expected.size());
      ASSERT_EQ(view.degree(node), expected.size());
      for (std::size_t i = 0; i < row.size(); ++i) {
        const Asn neighbor = view.interner().asn_of(row[i]);
        EXPECT_EQ(neighbor, expected[i]);
        const auto dense = view.relationship(node, row[i]);
        const auto legacy = graph.view(as, neighbor);
        ASSERT_TRUE(dense.has_value());
        ASSERT_TRUE(legacy.has_value());
        EXPECT_EQ(*dense, *legacy);
        EXPECT_EQ(static_cast<RelView>(view.rels(node)[i]), *legacy);
      }

      // Directed sub-rows agree with the per-class sets.
      const auto translate = [&view](std::span<const NodeId> ids) {
        std::vector<Asn> out;
        for (const NodeId id : ids) out.push_back(view.interner().asn_of(id));
        return out;
      };
      const auto row_of = [](std::span<const Asn> asns) {
        std::vector<Asn> out(asns.begin(), asns.end());
        std::sort(out.begin(), out.end());
        return out;
      };
      EXPECT_EQ(translate(view.providers(node)), row_of(graph.providers(as)));
      EXPECT_EQ(translate(view.customers(node)), row_of(graph.customers(as)));

      EXPECT_EQ(view.in_clique(node),
                std::find(sample.result.clique.begin(), sample.result.clique.end(),
                          as) != sample.result.clique.end());
    }

    // Clique list and bitmap agree.
    for (const NodeId member : view.clique()) {
      EXPECT_TRUE(view.in_clique(member));
    }
    EXPECT_EQ(view.clique().size(), sample.result.clique.size());
  }
}

}  // namespace
}  // namespace asrank
