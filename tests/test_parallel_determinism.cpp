// Differential determinism tests for the parallel inference engine: the
// whole pipeline must produce bit-identical results at 1, 2, and 8 worker
// threads (util::ThreadPool uses static chunking with ordered reductions, so
// no output may depend on scheduling).  Also unit-tests the thread pool
// itself: chunk geometry, empty and short ranges, exception propagation, and
// ordered (non-commutative) reduction.
#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <string>
#include <type_traits>
#include <vector>

#include "bgpsim/observation.h"
#include "core/asrank.h"
#include "core/cones.h"
#include "core/degrees.h"
#include "core/ranking.h"
#include "core/visibility.h"
#include "topogen/topogen.h"
#include "topology/topology_view.h"
#include "util/thread_pool.h"

namespace asrank {
namespace {

// ---------------------------------------------------------------------------
// ThreadPool unit tests
// ---------------------------------------------------------------------------

TEST(ThreadPool, ResolvesWorkerCount) {
  EXPECT_GE(util::ThreadPool(0).worker_count(), 1u);
  EXPECT_EQ(util::ThreadPool(1).worker_count(), 1u);
  EXPECT_EQ(util::ThreadPool(3).worker_count(), 3u);
  EXPECT_GE(util::resolve_threads(0), 1u);
  EXPECT_EQ(util::resolve_threads(5), 5u);
}

TEST(ThreadPool, ChunkBoundsPartitionTheRange) {
  util::ThreadPool pool(4);
  const auto bounds = pool.chunk_bounds(10);
  ASSERT_EQ(bounds.size(), 5u);
  EXPECT_EQ(bounds.front(), 0u);
  EXPECT_EQ(bounds.back(), 10u);
  // Static chunking: sizes differ by at most one and are non-increasing.
  for (std::size_t c = 0; c + 1 < bounds.size() - 1; ++c) {
    const std::size_t size = bounds[c + 1] - bounds[c];
    const std::size_t next = bounds[c + 2] - bounds[c + 1];
    EXPECT_GE(size, next);
    EXPECT_LE(size - next, 1u);
  }
}

TEST(ThreadPool, EmptyRangeInvokesNothing) {
  for (const std::size_t workers : {1u, 4u}) {
    util::ThreadPool pool(workers);
    std::atomic<int> calls{0};
    pool.for_chunks(0, [&](std::size_t, std::size_t, std::size_t) { ++calls; });
    pool.for_each_index(0, [&](std::size_t) { ++calls; });
    EXPECT_EQ(calls.load(), 0);
  }
}

TEST(ThreadPool, ShortRangeCoversEveryIndexOnce) {
  // n < workers leaves some chunks empty; every index still runs exactly once.
  util::ThreadPool pool(8);
  std::vector<std::atomic<int>> hits(3);
  pool.for_each_index(hits.size(), [&](std::size_t i) { ++hits[i]; });
  for (const auto& hit : hits) EXPECT_EQ(hit.load(), 1);
}

TEST(ThreadPool, ExceptionsPropagateToCaller) {
  for (const std::size_t workers : {1u, 4u}) {
    util::ThreadPool pool(workers);
    EXPECT_THROW(
        pool.for_each_index(100,
                            [&](std::size_t i) {
                              if (i == 57) throw std::runtime_error("boom");
                            }),
        std::runtime_error);
    // The pool survives a throwing dispatch and stays usable.
    std::atomic<int> sum{0};
    pool.for_each_index(10, [&](std::size_t i) { sum += static_cast<int>(i); });
    EXPECT_EQ(sum.load(), 45);
  }
}

TEST(ThreadPool, LowestChunkExceptionWins) {
  util::ThreadPool pool(4);
  try {
    pool.for_chunks(4, [&](std::size_t chunk, std::size_t, std::size_t) {
      throw std::runtime_error("chunk " + std::to_string(chunk));
    });
    FAIL() << "expected throw";
  } catch (const std::runtime_error& error) {
    EXPECT_STREQ(error.what(), "chunk 0");
  }
}

TEST(ThreadPool, OrderedReductionIsDeterministic) {
  // Non-commutative reduction (string concatenation): the result must match
  // the sequential order at every worker count.
  std::string expected;
  for (int i = 0; i < 100; ++i) expected += std::to_string(i) + ",";
  for (const std::size_t workers : {1u, 2u, 3u, 8u, 16u}) {
    util::ThreadPool pool(workers);
    const std::string joined = pool.map_reduce<std::string>(
        100, std::string{},
        [](std::size_t begin, std::size_t end) {
          std::string part;
          for (std::size_t i = begin; i < end; ++i) part += std::to_string(i) + ",";
          return part;
        },
        [](std::string& acc, std::string&& part) { acc += part; });
    EXPECT_EQ(joined, expected) << workers << " workers";
  }
}

TEST(ThreadPool, ReusableAcrossDispatches) {
  util::ThreadPool pool(4);
  for (int round = 0; round < 50; ++round) {
    const long sum = pool.map_reduce<long>(
        1000, 0L,
        [](std::size_t begin, std::size_t end) {
          long part = 0;
          for (std::size_t i = begin; i < end; ++i) part += static_cast<long>(i);
          return part;
        },
        [](long& acc, long&& part) { acc += part; });
    EXPECT_EQ(sum, 499500L);
  }
}

// ---------------------------------------------------------------------------
// Full-pipeline differential tests
// ---------------------------------------------------------------------------

struct PipelineOutput {
  core::InferenceResult result;
  ConeMap recursive;
  ConeMap ppdc;
  std::vector<core::RankEntry> ranking;
};

const paths::PathCorpus& shared_corpus() {
  static const paths::PathCorpus corpus = [] {
    auto gen = topogen::GenParams::preset("small");
    gen.seed = 424242;
    const auto truth = topogen::generate(gen);
    bgpsim::ObservationParams obs;
    obs.seed = 424243;
    obs.full_vps = 25;
    obs.partial_vps = 8;
    return paths::PathCorpus::from_records(bgpsim::observe(truth, obs).routes);
  }();
  return corpus;
}

PipelineOutput run_pipeline(std::size_t threads) {
  core::InferenceConfig config;
  config.threads = threads;
  PipelineOutput out{core::AsRankInference(config).run(shared_corpus()), {}, {}, {}};
  out.recursive = core::recursive_cone(out.result.graph, threads);
  out.ppdc =
      core::provider_peer_observed_cone(out.result.graph, out.result.sanitized, threads);
  out.ranking = core::rank_by_cone(out.ppdc, out.result.degrees);
  return out;
}

TEST(ParallelDeterminism, PipelineIsBitIdenticalAcrossThreadCounts) {
  const PipelineOutput reference = run_pipeline(1);
  ASSERT_FALSE(reference.result.graph.links().empty());

  for (const std::size_t threads : {2u, 8u}) {
    const PipelineOutput parallel = run_pipeline(threads);

    // Relationship labels: every link, same annotation, same orientation.
    EXPECT_EQ(parallel.result.graph.links(), reference.result.graph.links())
        << threads << " threads";
    EXPECT_EQ(parallel.result.clique, reference.result.clique);

    // Cones: identical membership for every AS.
    EXPECT_EQ(parallel.recursive, reference.recursive);
    EXPECT_EQ(parallel.ppdc, reference.ppdc);

    // Rank order: same ASes in the same positions with the same cone sizes.
    ASSERT_EQ(parallel.ranking.size(), reference.ranking.size());
    for (std::size_t i = 0; i < reference.ranking.size(); ++i) {
      EXPECT_EQ(parallel.ranking[i].as, reference.ranking[i].as) << "rank " << i;
      EXPECT_EQ(parallel.ranking[i].cone_size, reference.ranking[i].cone_size);
      EXPECT_EQ(parallel.ranking[i].rank, reference.ranking[i].rank);
    }

    // Stage audit: the counters describe the same computation.
    EXPECT_EQ(parallel.result.audit.c2p_votes, reference.result.audit.c2p_votes);
    EXPECT_EQ(parallel.result.audit.links_committed_c2p,
              reference.result.audit.links_committed_c2p);
    EXPECT_EQ(parallel.result.audit.poisoned_discarded,
              reference.result.audit.poisoned_discarded);
    EXPECT_EQ(parallel.result.audit.apex_links_deferred,
              reference.result.audit.apex_links_deferred);
    EXPECT_EQ(parallel.result.audit.siblings_inferred,
              reference.result.audit.siblings_inferred);
  }
}

TEST(ParallelDeterminism, TallyStagesMatchSequential) {
  const auto& corpus = shared_corpus();
  const auto degrees1 = core::Degrees::compute(corpus, 1);
  const auto visibility1 = core::link_visibility(corpus, 1);
  for (const std::size_t threads : {2u, 8u}) {
    const auto degreesN = core::Degrees::compute(corpus, threads);
    EXPECT_EQ(degreesN.ranked(), degrees1.ranked());
    for (const Asn as : degrees1.ranked()) {
      EXPECT_EQ(degreesN.transit_degree(as), degrees1.transit_degree(as));
      EXPECT_EQ(degreesN.node_degree(as), degrees1.node_degree(as));
      EXPECT_EQ(degreesN.rank_of(as), degrees1.rank_of(as));
    }

    const auto visibilityN = core::link_visibility(corpus, threads);
    ASSERT_EQ(visibilityN.size(), visibility1.size());
    for (const auto& [key, link] : visibility1) {
      const auto it = visibilityN.find(key);
      ASSERT_NE(it, visibilityN.end());
      EXPECT_EQ(it->second.vp_count, link.vp_count);
      EXPECT_EQ(it->second.observations, link.observations);
      EXPECT_EQ(it->second.transit_positions, link.transit_positions);
      EXPECT_EQ(it->second.edge_positions, link.edge_positions);
    }
  }
}

TEST(ParallelDeterminism, ConeClosureMatchesSequentialOnGroundTruth) {
  // The level-parallel closure path (threads > 1) against the DFS path.
  auto gen = topogen::GenParams::preset("small");
  gen.seed = 99;
  const auto truth = topogen::generate(gen);
  const auto sequential = core::recursive_cone(truth.graph, 1);
  for (const std::size_t threads : {2u, 4u, 8u}) {
    EXPECT_EQ(core::recursive_cone(truth.graph, threads), sequential);
  }
}

TEST(ParallelDeterminism, FrozenViewIsIdenticalAcrossThreadCounts) {
  // freeze() is a pure function of the graph, and the graph is bit-identical
  // at every worker count — so the CSR arrays (the substrate every dense
  // stage computes on) must be identical too.
  const auto freeze_of = [](std::size_t threads) {
    core::InferenceConfig config;
    config.threads = threads;
    const auto result = core::AsRankInference(config).run(shared_corpus());
    return result.graph.freeze(result.clique);
  };
  const auto to_vec = [](auto span) {
    return std::vector<std::decay_t<decltype(span[0])>>(span.begin(), span.end());
  };
  const auto reference = freeze_of(1);
  for (const std::size_t threads : {2u, 8u}) {
    const auto view = freeze_of(threads);
    EXPECT_EQ(view.interner(), reference.interner()) << threads << " threads";
    EXPECT_EQ(to_vec(view.adjacency_offsets()), to_vec(reference.adjacency_offsets()));
    EXPECT_EQ(to_vec(view.adjacency_neighbors()), to_vec(reference.adjacency_neighbors()));
    EXPECT_EQ(to_vec(view.adjacency_rels()), to_vec(reference.adjacency_rels()));
    EXPECT_EQ(to_vec(view.clique()), to_vec(reference.clique()));
  }
}

TEST(ParallelDeterminism, ViewConeOverloadsMatchGraphOverloads) {
  // The TopologyView overloads are the primary path; the AsGraph overloads
  // freeze and delegate.  Both must agree at every worker count.
  core::InferenceConfig config;
  config.threads = 1;
  const auto result = core::AsRankInference(config).run(shared_corpus());
  const auto view = result.graph.freeze();
  const auto recursive = core::recursive_cone(result.graph, 1);
  const auto ppdc =
      core::provider_peer_observed_cone(result.graph, result.sanitized, 1);
  const auto observed = core::bgp_observed_cone(result.graph, result.sanitized, 1);
  for (const std::size_t threads : {1u, 2u, 8u}) {
    EXPECT_EQ(core::recursive_cone(view, threads), recursive) << threads;
    EXPECT_EQ(core::provider_peer_observed_cone(view, result.sanitized, threads), ppdc)
        << threads;
    EXPECT_EQ(core::bgp_observed_cone(view, result.sanitized, threads), observed)
        << threads;
  }
}

TEST(ParallelDeterminism, ParallelClosureDetectsCycles) {
  // The Kahn-level path must reject cyclic provider graphs exactly like the
  // DFS path (assumption A3).
  AsGraph graph;
  graph.add_p2c(Asn(1), Asn(2));
  graph.add_p2c(Asn(2), Asn(3));
  graph.add_p2c(Asn(3), Asn(1));
  EXPECT_THROW(core::recursive_cone(graph, 1), std::invalid_argument);
  EXPECT_THROW(core::recursive_cone(graph, 4), std::invalid_argument);
}

}  // namespace
}  // namespace asrank
