// Broad randomized assurance: the full generate -> observe -> infer pipeline
// across many seeds at tiny scale, checking the invariants that must hold on
// EVERY topology, not just the tuned presets.
#include <gtest/gtest.h>

#include "bgpsim/observation.h"
#include "core/asrank.h"
#include "core/cones.h"
#include "topogen/topogen.h"
#include "validation/ppv.h"

namespace asrank {
namespace {

class PipelineSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PipelineSweep, InvariantsOnTinyTopologies) {
  auto gen = topogen::GenParams::preset("tiny");
  gen.seed = GetParam();
  const auto truth = topogen::generate(gen);

  bgpsim::ObservationParams obs;
  obs.seed = GetParam() * 7 + 1;
  obs.full_vps = 6;
  obs.partial_vps = 2;
  const auto observation = bgpsim::observe(truth, obs);
  ASSERT_FALSE(observation.routes.empty());

  core::InferenceConfig config;
  config.sanitizer.ixp_asns.insert(truth.ixp_asns.begin(), truth.ixp_asns.end());
  config.clique.seed_size = 6;  // tiny preset has a 4-member clique
  const auto result = core::AsRankInference(config).run(
      paths::PathCorpus::from_records(observation.routes));

  // Structural invariants.
  EXPECT_TRUE(result.audit.p2c_acyclic) << "seed " << GetParam();
  for (const Asn member : result.clique) {
    EXPECT_TRUE(result.graph.providers(member).empty())
        << "seed " << GetParam() << ": clique member AS" << member.value()
        << " has a provider";
  }

  // Quality floor: a 60-AS topology seen from 8 VPs is the hardest corner
  // (sparse visibility, noisy degree ranking), so the floor is deliberately
  // modest — the calibrated presets are held to much tighter bands by the
  // integration suite and EXPERIMENTS.md.
  const auto accuracy = validation::evaluate_against_truth(result.graph, truth.graph);
  EXPECT_GT(accuracy.c2p.ppv(), 0.75) << "seed " << GetParam();
  EXPECT_GT(accuracy.accuracy(), 0.70) << "seed " << GetParam();

  // Cone invariants.
  const auto recursive = core::recursive_cone(result.graph);
  const auto ppdc = core::provider_peer_observed_cone(result.graph, result.sanitized);
  for (const auto& [as, members] : recursive) {
    EXPECT_TRUE(std::binary_search(members.begin(), members.end(), as));
    const auto it = ppdc.find(as);
    ASSERT_NE(it, ppdc.end());
    EXPECT_TRUE(std::includes(members.begin(), members.end(), it->second.begin(),
                              it->second.end()))
        << "seed " << GetParam() << " AS" << as.value();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PipelineSweep,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14,
                                           15, 16, 17, 18, 19, 20));

}  // namespace
}  // namespace asrank
