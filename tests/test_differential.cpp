// Differential tests: every fast path must agree with its reference.
//
// Two claims from the zero-copy/bitset work are locked down here on seeded
// random topologies (topogen), not hand-picked fixtures:
//
//   1. An mmap-backed SnapshotIndex (map_file) and a heap-parsed one
//      (read_snapshot_file) are indistinguishable through EVERY public
//      accessor, and both reserialize to the exact bytes on disk.
//   2. The blocked-bitset cone kernels (core::ConeBitset and the
//      QueryEngine paths built on it) reproduce the sorted-array reference
//      answers bit for bit — for all AS pairs, including empty cones,
//      self-intersection, and the largest cone in the topology.
//
// The topologies deliberately include ASes with NO cone entry (every 7th
// cone key is dropped before the snapshot is built) so the empty-cone edge
// cases are exercised everywhere, not just at AS 99.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <iterator>
#include <memory>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "bgpsim/observation.h"
#include "bgpsim/update_stream.h"
#include "core/cone_bitset.h"
#include "core/cones.h"
#include "ingest/epoch_builder.h"
#include "ingest/update_applier.h"
#include "obs/metrics.h"
#include "paths/corpus.h"
#include "serve/query_engine.h"
#include "snapshot/snapshot.h"
#include "topogen/topogen.h"
#include "util/rng.h"

namespace asrank {
namespace {

using snapshot::SnapshotIndex;

// Ground-truth cones with gaps: dropping every 7th key (in sorted order, so
// the choice is deterministic) leaves those ASes with empty cones in the
// snapshot, which both kernel families must agree on.
ConeMap cones_with_gaps(const AsGraph& graph) {
  auto cones = core::recursive_cone(graph);
  std::vector<Asn> keys;
  keys.reserve(cones.size());
  for (const auto& [as, members] : cones) keys.push_back(as);
  std::sort(keys.begin(), keys.end());
  for (std::size_t i = 0; i < keys.size(); i += 7) cones.erase(keys[i]);
  return cones;
}

topogen::GroundTruth make_truth(const std::string& preset, std::uint64_t seed) {
  auto params = topogen::GenParams::preset(preset);
  params.seed = seed;
  return topogen::generate(params);
}

std::shared_ptr<const SnapshotIndex> build_index(
    const topogen::GroundTruth& truth, const ConeMap& cones) {
  const std::unordered_map<Asn, std::size_t> no_tdeg;
  return std::make_shared<const SnapshotIndex>(
      snapshot::build_snapshot(truth.graph, no_tdeg, cones, truth.clique));
}

std::vector<std::uint8_t> serialized_bytes(const SnapshotIndex& index) {
  std::ostringstream os(std::ios::binary);
  write_snapshot(index, os);
  const std::string raw = os.str();
  return {raw.begin(), raw.end()};
}

std::vector<Asn> to_vec(std::span<const Asn> span) {
  return {span.begin(), span.end()};
}

std::vector<Asn> sorted_intersection(std::span<const Asn> a,
                                     std::span<const Asn> b) {
  std::vector<Asn> out;
  std::set_intersection(a.begin(), a.end(), b.begin(), b.end(),
                        std::back_inserter(out));
  return out;
}

std::vector<Asn> sorted_difference(std::span<const Asn> a,
                                   std::span<const Asn> b) {
  std::vector<Asn> out;
  std::set_difference(a.begin(), a.end(), b.begin(), b.end(),
                      std::back_inserter(out));
  return out;
}

// ------------------------------------------------------- mmap vs heap --

// Every public accessor, compared pairwise between two indexes.
void expect_identical(const SnapshotIndex& a, const SnapshotIndex& b) {
  ASSERT_EQ(a.as_count(), b.as_count());
  EXPECT_EQ(a.link_count(), b.link_count());
  EXPECT_EQ(to_vec(a.ases()), to_vec(b.ases()));
  EXPECT_EQ(to_vec(a.clique()), to_vec(b.clique()));
  EXPECT_EQ(std::vector<std::uint64_t>(a.cone_offsets().begin(),
                                       a.cone_offsets().end()),
            std::vector<std::uint64_t>(b.cone_offsets().begin(),
                                       b.cone_offsets().end()));
  EXPECT_EQ(to_vec(a.cone_members()), to_vec(b.cone_members()));

  const auto n = static_cast<std::uint32_t>(a.as_count());
  for (std::uint32_t id = 0; id < n; ++id) {
    const Asn as = a.asn_at(id);
    EXPECT_EQ(as, b.asn_at(id));
    EXPECT_EQ(a.node_id(as), b.node_id(as));
    EXPECT_TRUE(a.has_as(as));
    EXPECT_TRUE(b.has_as(as));
    EXPECT_EQ(a.rank(as), b.rank(as));
    EXPECT_EQ(a.transit_degree(as), b.transit_degree(as));
    EXPECT_EQ(a.cone_size(as), b.cone_size(as));
    EXPECT_EQ(to_vec(a.cone(as)), to_vec(b.cone(as)));
    EXPECT_EQ(to_vec(a.neighbors(as)), to_vec(b.neighbors(as)));
    EXPECT_EQ(a.providers(as), b.providers(as));
    EXPECT_EQ(a.customers(as), b.customers(as));
    EXPECT_EQ(a.peers(as), b.peers(as));
    EXPECT_EQ(a.siblings(as), b.siblings(as));
    EXPECT_EQ(a.id_in_clique(id), b.id_in_clique(id));
    const auto ids_a = a.neighbor_ids(id);
    const auto ids_b = b.neighbor_ids(id);
    EXPECT_EQ(std::vector<std::uint32_t>(ids_a.begin(), ids_a.end()),
              std::vector<std::uint32_t>(ids_b.begin(), ids_b.end()));
    const auto rel_a = a.relationship_codes(id);
    const auto rel_b = b.relationship_codes(id);
    EXPECT_EQ(std::vector<std::uint8_t>(rel_a.begin(), rel_a.end()),
              std::vector<std::uint8_t>(rel_b.begin(), rel_b.end()));
    for (const Asn neighbor : a.neighbors(as)) {
      EXPECT_EQ(a.relationship(as, neighbor), b.relationship(as, neighbor));
      EXPECT_EQ(a.in_cone(as, neighbor), b.in_cone(as, neighbor));
    }
  }
  EXPECT_EQ(a.top(a.as_count() + 5), b.top(b.as_count() + 5));
  for (std::uint32_t r = 1; r <= n; ++r) {
    EXPECT_EQ(a.as_at_rank(r), b.as_at_rank(r));
  }
  EXPECT_EQ(a.rank(Asn(0)), b.rank(Asn(0)));
  EXPECT_FALSE(a.has_as(Asn(0xfffffff0u)));
  EXPECT_FALSE(b.has_as(Asn(0xfffffff0u)));
}

TEST(Differential, MmapAndHeapAgreeOnEveryAccessor) {
  const std::vector<std::pair<std::string, std::uint64_t>> cases = {
      {"tiny", 1}, {"tiny", 99}, {"small", 7}};
  for (const auto& [preset, seed] : cases) {
    SCOPED_TRACE(preset + " seed " + std::to_string(seed));
    const auto truth = make_truth(preset, seed);
    const auto cones = cones_with_gaps(truth.graph);
    const auto built = build_index(truth, cones);

    const std::string path = testing::TempDir() + "/diff-" + preset + "-" +
                             std::to_string(seed) + ".asrk";
    snapshot::write_snapshot_file(*built, path);

    auto heap = snapshot::try_read_snapshot_file(path);
    ASSERT_TRUE(heap.ok()) << heap.error().context;
    auto mapped = snapshot::try_map_snapshot_file(path);
    ASSERT_TRUE(mapped.ok()) << mapped.error().context;
    EXPECT_FALSE(heap.value().mmap_backed());
    EXPECT_TRUE(mapped.value().mmap_backed());

    expect_identical(heap.value(), mapped.value());
    expect_identical(*built, mapped.value());

    // Both load paths reserialize to the exact bytes on disk.
    const auto original = serialized_bytes(*built);
    EXPECT_EQ(serialized_bytes(heap.value()), original);
    EXPECT_EQ(serialized_bytes(mapped.value()), original);
    std::remove(path.c_str());
  }
}

// ------------------------------------------------ bitset vs sorted ref --

TEST(Differential, ConeBitsetMatchesSortedKernelsOnAllPairs) {
  const auto truth = make_truth("tiny", 3);
  const auto cones = cones_with_gaps(truth.graph);
  const auto index = build_index(truth, cones);
  const auto n = static_cast<std::uint32_t>(index->as_count());

  // min_cone_size = 0: every AS gets a row, including empty cones.
  const core::ConeBitset bits(index->ases(), index->cone_offsets(),
                              index->cone_members(), {0});
  ASSERT_EQ(bits.node_count(), n);
  ASSERT_EQ(bits.row_count(), n);

  const auto ids_to_asns = [&](const std::vector<std::uint32_t>& ids) {
    std::vector<Asn> out;
    out.reserve(ids.size());
    for (const auto id : ids) out.push_back(index->asn_at(id));
    return out;
  };
  const auto ids_of = [&](std::span<const Asn> members) {
    std::vector<std::uint32_t> ids;
    ids.reserve(members.size());
    for (const Asn member : members) ids.push_back(*index->node_id(member));
    return ids;
  };

  for (std::uint32_t a = 0; a < n; ++a) {
    const auto cone_a = index->cone(index->asn_at(a));
    // Membership: contains() over the whole id space vs binary search.
    for (std::uint32_t m = 0; m < n; ++m) {
      EXPECT_EQ(bits.contains(a, m),
                index->in_cone(index->asn_at(a), index->asn_at(m)))
          << "a=" << a << " m=" << m;
    }
    for (std::uint32_t b = 0; b < n; ++b) {
      const auto cone_b = index->cone(index->asn_at(b));
      EXPECT_EQ(ids_to_asns(bits.intersect_ids(a, b)),
                sorted_intersection(cone_a, cone_b))
          << "intersect a=" << a << " b=" << b;
      EXPECT_EQ(ids_to_asns(bits.andnot_ids(a, bits.make_mask(ids_of(cone_b)))),
                sorted_difference(cone_a, cone_b))
          << "andnot a=" << a << " b=" << b;
    }
    // Self: intersection is the cone itself, difference is empty.
    EXPECT_EQ(ids_to_asns(bits.intersect_ids(a, a)), to_vec(cone_a));
    EXPECT_TRUE(bits.andnot_ids(a, bits.row(a)).empty());
  }
}

TEST(Differential, ConeBitsetThresholdSelectsExactlyTheLargeCones) {
  const auto truth = make_truth("tiny", 5);
  const auto cones = cones_with_gaps(truth.graph);
  const auto index = build_index(truth, cones);
  const auto n = static_cast<std::uint32_t>(index->as_count());

  constexpr std::size_t kThreshold = 3;
  const core::ConeBitset bits(index->ases(), index->cone_offsets(),
                              index->cone_members(), {kThreshold});
  std::size_t expected_rows = 0;
  std::uint32_t largest = 0;
  for (std::uint32_t id = 0; id < n; ++id) {
    const auto size = index->cone_size(index->asn_at(id));
    EXPECT_EQ(bits.has_row(id), size >= kThreshold) << "id=" << id;
    if (size >= kThreshold) ++expected_rows;
    if (size > index->cone_size(index->asn_at(largest))) largest = id;
  }
  EXPECT_EQ(bits.row_count(), expected_rows);
  EXPECT_GT(expected_rows, 0u);

  // The largest cone must have a row and reproduce itself exactly.
  ASSERT_TRUE(bits.has_row(largest));
  std::vector<Asn> via_bits;
  for (const auto id : bits.intersect_ids(largest, largest)) {
    via_bits.push_back(index->asn_at(id));
  }
  EXPECT_EQ(via_bits, to_vec(index->cone(index->asn_at(largest))));

  // Disabled config materializes nothing.
  const core::ConeBitset off(index->ases(), index->cone_offsets(),
                             index->cone_members(),
                             core::ConeBitsetConfig::disabled());
  EXPECT_EQ(off.row_count(), 0u);
  EXPECT_EQ(off.memory_bytes(), n * sizeof(std::uint32_t));
}

// --------------------------------------------- engine kernel configs --

TEST(Differential, QueryEngineKernelConfigsAnswerIdentically) {
  const auto truth = make_truth("tiny", 11);
  const auto cones = cones_with_gaps(truth.graph);
  const auto index = build_index(truth, cones);

  // Three engines over one index: all-bitset, mixed (hybrid kicks in when
  // only one side of a pair has a row), and sorted-only.
  obs::Registry reg_bitset, reg_hybrid, reg_sorted;
  serve::QueryEngine bitset(index, 4096, &reg_bitset, {0});
  serve::QueryEngine hybrid(index, 4096, &reg_hybrid, {3});
  serve::QueryEngine sorted(index, 4096, &reg_sorted,
                            core::ConeBitsetConfig::disabled());

  const auto ases = to_vec(index->ases());
  for (const Asn a : ases) {
    for (const Asn b : ases) {
      const auto want = *sorted.cone_intersection(a, b);
      EXPECT_EQ(*bitset.cone_intersection(a, b), want)
          << a.str() << " ∩ " << b.str();
      EXPECT_EQ(*hybrid.cone_intersection(a, b), want)
          << a.str() << " ∩ " << b.str();
      EXPECT_EQ(bitset.in_cone(a, b), sorted.in_cone(a, b));
      EXPECT_EQ(hybrid.in_cone(a, b), sorted.in_cone(a, b));

      const auto other = index->cone(b);
      const auto minus = sorted.cone_minus(a, other);
      EXPECT_EQ(bitset.cone_minus(a, other), minus);
      EXPECT_EQ(hybrid.cone_minus(a, other), minus);
      EXPECT_EQ(minus, sorted_difference(index->cone(a), other));
    }
  }

  const char* help = "Cone intersection/diff/membership queries by answering kernel";
  EXPECT_GT(reg_bitset.counter("asrankd_cone_kernel_total", help,
                               {{"kernel", "bitset"}})
                .value(),
            0u);
  EXPECT_GT(reg_hybrid.counter("asrankd_cone_kernel_total", help,
                               {{"kernel", "hybrid"}})
                .value(),
            0u);
  EXPECT_EQ(reg_sorted.counter("asrankd_cone_kernel_total", help,
                               {{"kernel", "bitset"}})
                .value(),
            0u);
  EXPECT_GT(reg_sorted.counter("asrankd_cone_kernel_total", help,
                               {{"kernel", "sorted"}})
                .value(),
            0u);
}

TEST(Differential, CrossEpochConeMinusMatchesSetDifference) {
  // Epoch A, and epoch B = A evolved (new stubs, extra peerings, rehomed
  // customers) — the CONE_DIFF serving scenario, where the mask ASNs come
  // from a DIFFERENT snapshot and may be unknown to the answering one.
  auto truth = make_truth("tiny", 17);
  const auto cones_a = cones_with_gaps(truth.graph);
  const auto index_a = build_index(truth, cones_a);

  util::Rng rng(17);
  topogen::evolve(truth, rng, {});
  const auto cones_b = cones_with_gaps(truth.graph);
  const auto index_b = build_index(truth, cones_b);

  obs::Registry reg_a0, reg_a1, reg_b0, reg_b1;
  serve::QueryEngine a_bits(index_a, 4096, &reg_a0, {0});
  serve::QueryEngine a_sorted(index_a, 4096, &reg_a1,
                              core::ConeBitsetConfig::disabled());
  serve::QueryEngine b_bits(index_b, 4096, &reg_b0, {0});
  serve::QueryEngine b_sorted(index_b, 4096, &reg_b1,
                              core::ConeBitsetConfig::disabled());

  for (const Asn as : index_a->ases()) {
    if (!index_b->has_as(as)) continue;
    const auto cone_a = index_a->cone(as);
    const auto cone_b = index_b->cone(as);
    // added = B minus A, removed = A minus B; both kernels, both directions.
    const auto added = sorted_difference(cone_b, cone_a);
    const auto removed = sorted_difference(cone_a, cone_b);
    EXPECT_EQ(b_bits.cone_minus(as, cone_a), added) << as.str();
    EXPECT_EQ(b_sorted.cone_minus(as, cone_a), added) << as.str();
    EXPECT_EQ(a_bits.cone_minus(as, cone_b), removed) << as.str();
    EXPECT_EQ(a_sorted.cone_minus(as, cone_b), removed) << as.str();
  }
}

TEST(Differential, MmapBackedEngineServesIdenticalDerivedAnswers) {
  const auto truth = make_truth("tiny", 23);
  const auto cones = cones_with_gaps(truth.graph);
  const auto built = build_index(truth, cones);

  const std::string path = testing::TempDir() + "/diff-engine.asrk";
  snapshot::write_snapshot_file(*built, path);
  auto mapped = snapshot::try_map_snapshot_file(path);
  ASSERT_TRUE(mapped.ok()) << mapped.error().context;
  auto mapped_index = std::make_shared<const SnapshotIndex>(
      std::move(mapped).value());
  ASSERT_TRUE(mapped_index->mmap_backed());

  obs::Registry reg_heap, reg_mmap;
  serve::QueryEngine heap_engine(built, 4096, &reg_heap, {0});
  serve::QueryEngine mmap_engine(mapped_index, 4096, &reg_mmap, {0});

  const auto ases = to_vec(built->ases());
  for (const Asn a : ases) {
    // path_to_clique exercises the lazily-derived dense neighbour ids of
    // the mmap path (BFS over provider links).
    EXPECT_EQ(*heap_engine.path_to_clique(a), *mmap_engine.path_to_clique(a));
    for (const Asn b : ases) {
      EXPECT_EQ(*heap_engine.cone_intersection(a, b),
                *mmap_engine.cone_intersection(a, b));
    }
  }
  EXPECT_EQ(heap_engine.top(ases.size()), mmap_engine.top(ases.size()));
  std::remove(path.c_str());
}

// ------------------------------------------------------------- ingest ----
//
// Claim 3 (the streaming-ingest acceptance contract): replaying a seeded
// bgpsim update stream through the ingest conveyor — UpdateApplier table,
// EpochBuilder with incremental cone recomputation — emits epochs that are
// byte-identical to a from-scratch batch inference+snapshot of the same
// cumulative route table, at every single step, for every seed.

void replay_stream_and_compare(const std::string& preset, std::uint64_t seed,
                               double full_threshold) {
  auto params = topogen::GenParams::preset(preset);
  params.seed = seed;
  auto truth = topogen::generate(params);

  bgpsim::ObservationParams obs_params;
  obs_params.seed = seed + 1;
  bgpsim::UpdateStreamParams stream_params;
  stream_params.steps = 3;
  stream_params.seed = seed + 1000;
  stream_params.evolve.new_stubs =
      std::max<std::size_t>(2, truth.graph.as_count() / 50);
  stream_params.evolve.new_peerings =
      std::max<std::size_t>(1, truth.graph.link_count() / 40);
  const auto stream =
      bgpsim::generate_update_stream(truth, obs_params, stream_params);
  ASSERT_EQ(stream.size(), 4u);  // bootstrap + 3 evolution steps

  ingest::EpochBuilderConfig config;
  config.full_closure_threshold = full_threshold;
  obs::Registry metrics;
  ingest::UpdateApplier applier(metrics);
  ingest::EpochBuilder builder(config, metrics);

  for (std::size_t step = 0; step < stream.size(); ++step) {
    for (const auto& update : stream[step].updates) applier.apply(update);

    // The applier's table must equal what the simulator's own replay
    // reconstructs (its observation after this step): same inference input.
    const auto reference_corpus =
        paths::PathCorpus::from_records(stream[step].observation.routes);
    const auto corpus = applier.corpus();
    ASSERT_EQ(corpus.size(), reference_corpus.size())
        << preset << " seed " << seed << " step " << step;

    ingest::EpochBuildInfo info;
    auto incremental = builder.build(corpus, &info);
    ASSERT_TRUE(incremental.ok()) << incremental.error().context;
    EXPECT_EQ(info.sequence, step + 1);

    const auto batch = ingest::EpochBuilder::batch_build(corpus, config);
    EXPECT_EQ(serialized_bytes(incremental.value()), serialized_bytes(batch))
        << preset << " seed " << seed << " step " << step << " (dirty fraction "
        << info.cones.dirty_fraction << ", full=" << info.cones.full_recompute
        << ")";
  }
}

TEST(Differential, IngestEpochsMatchBatchBuildsAcrossSeeds) {
  for (const std::uint64_t seed : {3u, 17u, 92u}) {
    replay_stream_and_compare("small", seed, /*full_threshold=*/0.5);
  }
}

TEST(Differential, IngestEpochsMatchBatchWithForcedIncrementalCones) {
  // threshold > 1 disables the full-closure fallback entirely, so every
  // epoch after the first exercises the dirty-cone reuse path.
  replay_stream_and_compare("small", 7, /*full_threshold=*/1.1);
  replay_stream_and_compare("medium", 29, /*full_threshold=*/1.1);
}

TEST(Differential, IngestEpochsMatchBatchWithForcedFullClosure) {
  // threshold 0 forces the fallback on any change: the degenerate config
  // must agree too (it shares the freeze path, not the closure path).
  replay_stream_and_compare("small", 57, /*full_threshold=*/0.0);
}

}  // namespace
}  // namespace asrank
