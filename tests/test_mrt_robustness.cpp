// Robustness tests for the wire-format decoders: randomly mutated or
// truncated input must either parse or throw DecodeError — never crash,
// hang, or read out of bounds.  (Run under ASan/UBSan for full effect;
// the assertions here pin down the throw-or-parse contract.)
#include <gtest/gtest.h>

#include <sstream>

#include "bgpsim/observation.h"
#include "mrt/bgp4mp.h"
#include "mrt/table_dump_v1.h"
#include "mrt/table_dump_v2.h"
#include "topogen/topogen.h"
#include "util/rng.h"

namespace asrank::mrt {
namespace {

std::string wellformed_v2_bytes() {
  const auto truth = topogen::generate(topogen::GenParams::preset("tiny"));
  bgpsim::ObservationParams params;
  params.full_vps = 3;
  params.partial_vps = 1;
  const auto observation = bgpsim::observe(truth, params);
  std::stringstream stream;
  write_table_dump_v2(bgpsim::to_rib_dump(observation), stream);
  return stream.str();
}

class MrtFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(MrtFuzz, MutatedV2EitherParsesOrThrows) {
  static const std::string base = wellformed_v2_bytes();
  util::Rng rng(GetParam());
  for (int round = 0; round < 50; ++round) {
    std::string bytes = base;
    const std::size_t flips = 1 + rng.uniform(8);
    for (std::size_t f = 0; f < flips; ++f) {
      bytes[rng.uniform(bytes.size())] ^= static_cast<char>(1 + rng.uniform(255));
    }
    std::stringstream stream(bytes);
    try {
      const auto dump = read_table_dump_v2(stream);
      // Parsed despite mutation: structure must still be sane.
      for (const auto& entry : dump.rib) {
        for (const auto& route : entry.routes) {
          EXPECT_LE(route.peer_index, 0xffff);
        }
      }
    } catch (const DecodeError&) {
      // acceptable
    } catch (const std::length_error&) {
      // allocation guard on absurd declared lengths: acceptable
    } catch (const std::bad_alloc&) {
      // mutated length field demanded a huge buffer: acceptable
    }
  }
}

TEST_P(MrtFuzz, TruncatedV2EitherParsesOrThrows) {
  static const std::string base = wellformed_v2_bytes();
  util::Rng rng(GetParam() + 1000);
  for (int round = 0; round < 50; ++round) {
    std::string bytes = base.substr(0, rng.uniform(base.size()));
    std::stringstream stream(bytes);
    try {
      (void)read_table_dump_v2(stream);
    } catch (const DecodeError&) {
      // acceptable
    }
  }
}

TEST_P(MrtFuzz, MutatedBgp4mpEitherParsesOrThrows) {
  std::stringstream base_stream;
  for (std::uint32_t i = 1; i <= 20; ++i) {
    UpdateMessage update;
    update.timestamp = i;
    update.peer_as = Asn(i);
    update.local_as = Asn(65000);
    update.announced = {Prefix::v4(i << 12, 20)};
    update.attrs.as_path = AsPath{i, i + 1, i + 2};
    update.withdrawn = {Prefix::v4(i << 20, 12)};
    write_update(update, base_stream);
  }
  const std::string base = base_stream.str();

  util::Rng rng(GetParam() + 2000);
  for (int round = 0; round < 50; ++round) {
    std::string bytes = base;
    for (std::size_t f = 0; f < 1 + rng.uniform(8); ++f) {
      bytes[rng.uniform(bytes.size())] ^= static_cast<char>(1 + rng.uniform(255));
    }
    std::stringstream stream(bytes);
    try {
      (void)read_updates(stream);
    } catch (const DecodeError&) {
    } catch (const std::length_error&) {
    } catch (const std::bad_alloc&) {
    }
  }
}

TEST_P(MrtFuzz, MutatedV1EitherParsesOrThrows) {
  std::stringstream base_stream;
  for (std::uint32_t i = 1; i <= 20; ++i) {
    TableDumpV1Entry entry;
    entry.timestamp = i;
    entry.prefix = Prefix::v4(i << 16, 16);
    entry.peer_as = Asn(100 + i);
    entry.attrs.as_path = AsPath{100 + i, 200 + i};
    write_table_dump_v1(entry, base_stream);
  }
  const std::string base = base_stream.str();

  util::Rng rng(GetParam() + 3000);
  for (int round = 0; round < 50; ++round) {
    std::string bytes = base;
    for (std::size_t f = 0; f < 1 + rng.uniform(8); ++f) {
      bytes[rng.uniform(bytes.size())] ^= static_cast<char>(1 + rng.uniform(255));
    }
    std::stringstream stream(bytes);
    try {
      (void)read_table_dump_v1(stream);
    } catch (const DecodeError&) {
    } catch (const std::length_error&) {
    } catch (const std::bad_alloc&) {
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MrtFuzz, ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

TEST(MrtRobustness, EmptyInputs) {
  std::stringstream empty1, empty2, empty3;
  EXPECT_THROW((void)read_table_dump_v2(empty1), DecodeError);  // needs peer table
  EXPECT_TRUE(read_updates(empty2).empty());
  EXPECT_TRUE(read_table_dump_v1(empty3).empty());
}

TEST(MrtRobustness, TryReadTableDumpV2ClassifiesErrors) {
  // Missing peer table: structurally corrupt, not truncated.
  std::stringstream empty;
  auto parsed = try_read_table_dump_v2(empty);
  ASSERT_FALSE(parsed.ok());
  EXPECT_EQ(parsed.error().code, ErrorCode::kCorrupt);
  EXPECT_NE(parsed.error().context.find("no PEER_INDEX_TABLE"),
            std::string::npos);

  // A well-formed dump cut mid-record is kTruncated.
  const std::string bytes = wellformed_v2_bytes();
  std::stringstream cut(bytes.substr(0, bytes.size() - 1));
  auto truncated = try_read_table_dump_v2(cut);
  ASSERT_FALSE(truncated.ok());
  EXPECT_EQ(truncated.error().code, ErrorCode::kTruncated);

  // The throwing wrapper reports the identical message.
  std::stringstream cut_again(bytes.substr(0, bytes.size() - 1));
  try {
    (void)read_table_dump_v2(cut_again);
    FAIL() << "expected DecodeError";
  } catch (const DecodeError& error) {
    EXPECT_EQ(truncated.error().context, error.what());
  }

  // An intact dump parses on the Result rail too.
  std::stringstream whole(bytes);
  EXPECT_TRUE(try_read_table_dump_v2(whole).ok());
}

TEST(MrtRobustness, TryReadUpdatesClassifiesErrors) {
  UpdateMessage update;
  update.timestamp = 7;
  update.peer_as = Asn(100);
  update.local_as = Asn(200);
  update.announced = {Prefix::v4(0x0a000000, 8)};
  update.attrs.as_path = AsPath{100, 300};
  std::stringstream full;
  write_update(update, full);
  const std::string bytes = full.str();

  std::stringstream cut(bytes.substr(0, bytes.size() - 1));
  auto truncated = try_read_updates(cut);
  ASSERT_FALSE(truncated.ok());
  EXPECT_EQ(truncated.error().code, ErrorCode::kTruncated);
  EXPECT_NE(truncated.error().context.find("truncated"), std::string::npos);

  std::stringstream cut_again(bytes.substr(0, bytes.size() - 1));
  try {
    (void)read_updates(cut_again);
    FAIL() << "expected DecodeError";
  } catch (const DecodeError& error) {
    EXPECT_EQ(truncated.error().context, error.what());
  }

  std::stringstream whole(bytes);
  auto ok = try_read_updates(whole);
  ASSERT_TRUE(ok.ok());
  ASSERT_EQ(ok.value().size(), 1u);
  EXPECT_EQ(ok.value()[0].announced, update.announced);
}

TEST(MrtRobustness, GarbageHeaderOnly) {
  std::string garbage(12, '\xff');  // one MRT header claiming a huge body
  std::stringstream stream(garbage);
  try {
    (void)read_updates(stream);
  } catch (const DecodeError&) {
  } catch (const std::length_error&) {
  } catch (const std::bad_alloc&) {
  }
}

}  // namespace
}  // namespace asrank::mrt
