#include <gtest/gtest.h>

#include "paths/corpus.h"
#include "paths/sanitizer.h"

namespace asrank::paths {
namespace {

PathRecord rec(std::uint32_t vp, const char* prefix, std::initializer_list<std::uint32_t> hops) {
  return PathRecord{Asn(vp), *Prefix::parse(prefix), AsPath(hops)};
}

// -------------------------------------------------------------- corpus ----

TEST(Corpus, BasicAccounting) {
  PathCorpus corpus;
  corpus.add(rec(1, "10.0.0.0/24", {1, 2, 3}));
  corpus.add(rec(1, "10.0.1.0/24", {1, 2, 4}));
  corpus.add(rec(5, "10.0.0.0/24", {5, 2, 3}));
  EXPECT_EQ(corpus.size(), 3u);
  EXPECT_EQ(corpus.vantage_points(), (std::vector<Asn>{Asn(1), Asn(5)}));
  EXPECT_EQ(corpus.prefix_count(), 2u);
  EXPECT_EQ(corpus.ases(), (std::vector<Asn>{Asn(1), Asn(2), Asn(3), Asn(4), Asn(5)}));
}

TEST(Corpus, LinkObservationsCountAdjacencies) {
  PathCorpus corpus;
  corpus.add(rec(1, "10.0.0.0/24", {1, 2, 3}));
  corpus.add(rec(1, "10.0.1.0/24", {1, 2, 2, 4}));  // prepending not a link
  const auto links = corpus.link_observations();
  EXPECT_EQ(links.at(PathCorpus::key(Asn(1), Asn(2))), 2u);
  EXPECT_EQ(links.at(PathCorpus::key(Asn(2), Asn(3))), 1u);
  EXPECT_EQ(links.at(PathCorpus::key(Asn(2), Asn(4))), 1u);
  EXPECT_EQ(links.size(), 3u);
}

TEST(Corpus, KeyMatchesAsGraphKey) {
  EXPECT_EQ(PathCorpus::key(Asn(7), Asn(3)), PathCorpus::key(Asn(3), Asn(7)));
}

TEST(Corpus, FromRecordsBridgesAnyType) {
  struct Foreign {
    Asn vp;
    Prefix prefix;
    AsPath path;
  };
  std::vector<Foreign> rows{{Asn(1), *Prefix::parse("10.0.0.0/24"), AsPath{1, 2}}};
  const auto corpus = PathCorpus::from_records(rows);
  EXPECT_EQ(corpus.size(), 1u);
}

// ----------------------------------------------------------- sanitizer ----

TEST(Sanitizer, CompressesPrepending) {
  PathCorpus corpus;
  corpus.add(rec(1, "10.0.0.0/24", {1, 2, 2, 2, 3}));
  SanitizerConfig config;
  const auto result = sanitize(corpus, config);
  ASSERT_EQ(result.corpus.size(), 1u);
  EXPECT_EQ(result.corpus.records()[0].path, (AsPath{1, 2, 3}));
  EXPECT_EQ(result.stats.prepended_compressed, 1u);
}

TEST(Sanitizer, DiscardsLoops) {
  PathCorpus corpus;
  corpus.add(rec(1, "10.0.0.0/24", {1, 2, 3, 2}));  // poisoned
  corpus.add(rec(1, "10.0.1.0/24", {1, 2, 3}));
  const auto result = sanitize(corpus, SanitizerConfig{});
  EXPECT_EQ(result.corpus.size(), 1u);
  EXPECT_EQ(result.stats.loops_discarded, 1u);
}

TEST(Sanitizer, DiscardsReservedByDefault) {
  PathCorpus corpus;
  corpus.add(rec(1, "10.0.0.0/24", {1, 64512, 3}));
  const auto result = sanitize(corpus, SanitizerConfig{});
  EXPECT_EQ(result.corpus.size(), 0u);
  EXPECT_EQ(result.stats.reserved_discarded, 1u);
}

TEST(Sanitizer, StripReservedKeepsPath) {
  PathCorpus corpus;
  corpus.add(rec(1, "10.0.0.0/24", {1, 64512, 3}));
  SanitizerConfig config;
  config.strip_reserved_asns = true;
  const auto result = sanitize(corpus, config);
  ASSERT_EQ(result.corpus.size(), 1u);
  EXPECT_EQ(result.corpus.records()[0].path, (AsPath{1, 3}));
  EXPECT_EQ(result.stats.reserved_hops_stripped, 1u);
  EXPECT_EQ(result.stats.reserved_discarded, 0u);
}

TEST(Sanitizer, StripsIxpAsns) {
  PathCorpus corpus;
  corpus.add(rec(1, "10.0.0.0/24", {1, 2, 900, 3}));  // 900 = route server
  SanitizerConfig config;
  config.ixp_asns.insert(Asn(900));
  const auto result = sanitize(corpus, config);
  ASSERT_EQ(result.corpus.size(), 1u);
  EXPECT_EQ(result.corpus.records()[0].path, (AsPath{1, 2, 3}));
  EXPECT_EQ(result.stats.ixp_hops_stripped, 1u);
}

TEST(Sanitizer, IxpStripCanRestoreLoopFreePath) {
  // The route server splits a prepending run; stripping merges it back.
  PathCorpus corpus;
  corpus.add(rec(1, "10.0.0.0/24", {1, 2, 900, 2, 3}));
  SanitizerConfig config;
  config.ixp_asns.insert(Asn(900));
  const auto result = sanitize(corpus, config);
  ASSERT_EQ(result.corpus.size(), 1u);
  EXPECT_EQ(result.corpus.records()[0].path, (AsPath{1, 2, 3}));
  EXPECT_EQ(result.stats.loops_discarded, 0u);
}

TEST(Sanitizer, Deduplicates) {
  PathCorpus corpus;
  corpus.add(rec(1, "10.0.0.0/24", {1, 2, 3}));
  corpus.add(rec(1, "10.0.0.0/24", {1, 2, 3}));
  corpus.add(rec(1, "10.0.0.0/24", {1, 2, 2, 3}));  // same after compression
  const auto result = sanitize(corpus, SanitizerConfig{});
  EXPECT_EQ(result.corpus.size(), 1u);
  EXPECT_EQ(result.stats.duplicates_removed, 2u);
}

TEST(Sanitizer, DedupKeepsDistinctPrefixesAndVps) {
  PathCorpus corpus;
  corpus.add(rec(1, "10.0.0.0/24", {1, 2, 3}));
  corpus.add(rec(1, "10.0.1.0/24", {1, 2, 3}));
  corpus.add(rec(4, "10.0.0.0/24", {4, 2, 3}));
  const auto result = sanitize(corpus, SanitizerConfig{});
  EXPECT_EQ(result.corpus.size(), 3u);
}

TEST(Sanitizer, StagesCanBeDisabled) {
  PathCorpus corpus;
  corpus.add(rec(1, "10.0.0.0/24", {1, 2, 2, 3}));
  SanitizerConfig config;
  config.compress_prepending = false;
  config.dedup = false;
  const auto result = sanitize(corpus, config);
  ASSERT_EQ(result.corpus.size(), 1u);
  EXPECT_TRUE(result.corpus.records()[0].path.has_prepending());
}

TEST(Sanitizer, EmptyPathsDropped) {
  PathCorpus corpus;
  corpus.add(rec(1, "10.0.0.0/24", {900}));  // only an IXP hop
  SanitizerConfig config;
  config.ixp_asns.insert(Asn(900));
  const auto result = sanitize(corpus, config);
  EXPECT_EQ(result.corpus.size(), 0u);
}

TEST(Sanitizer, IsIdempotent) {
  PathCorpus corpus;
  corpus.add(rec(1, "10.0.0.0/24", {1, 2, 2, 3}));
  corpus.add(rec(1, "10.0.1.0/24", {1, 2, 3, 2}));
  corpus.add(rec(4, "10.0.2.0/24", {4, 5}));
  SanitizerConfig config;
  const auto once = sanitize(corpus, config);
  const auto twice = sanitize(once.corpus, config);
  EXPECT_EQ(twice.corpus.size(), once.corpus.size());
  EXPECT_EQ(twice.stats.prepended_compressed, 0u);
  EXPECT_EQ(twice.stats.loops_discarded, 0u);
  EXPECT_EQ(twice.stats.duplicates_removed, 0u);
}

TEST(Sanitizer, StatsAddUp) {
  PathCorpus corpus;
  corpus.add(rec(1, "10.0.0.0/24", {1, 2, 3}));    // clean
  corpus.add(rec(1, "10.0.1.0/24", {1, 2, 3, 2})); // loop
  corpus.add(rec(1, "10.0.2.0/24", {1, 64512}));   // reserved
  corpus.add(rec(1, "10.0.0.0/24", {1, 2, 3}));    // duplicate
  const auto result = sanitize(corpus, SanitizerConfig{});
  const auto& s = result.stats;
  EXPECT_EQ(s.input_records, 4u);
  EXPECT_EQ(s.output_records,
            s.input_records - s.loops_discarded - s.reserved_discarded - s.duplicates_removed);
}

}  // namespace
}  // namespace asrank::paths
