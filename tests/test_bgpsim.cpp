#include <gtest/gtest.h>

#include <sstream>

#include "bgpsim/observation.h"
#include "bgpsim/route_sim.h"
#include "topogen/topogen.h"

namespace asrank::bgpsim {
namespace {

/// A small hand-built topology with unambiguous routing (p2c arrows point
/// provider -> customer):
///   1-2 p2p;  1->3, 1->4, 2->5;  4-5 p2p;  3->6, 4->7, 5->8.
AsGraph hand_graph() {
  AsGraph g;
  g.add_p2p(Asn(1), Asn(2));
  g.add_p2c(Asn(1), Asn(3));
  g.add_p2c(Asn(1), Asn(4));
  g.add_p2c(Asn(2), Asn(5));
  g.add_p2p(Asn(4), Asn(5));
  g.add_p2c(Asn(3), Asn(6));
  g.add_p2c(Asn(4), Asn(7));
  g.add_p2c(Asn(5), Asn(8));
  return g;
}

TEST(RouteSim, OriginSelectsItself) {
  const AsGraph g = hand_graph();
  const RouteSimulator sim(g);
  const auto table = sim.routes_to(Asn(6));
  const auto origin = table.route(Asn(6));
  EXPECT_EQ(origin.route_class, RouteClass::kCustomer);
  EXPECT_EQ(origin.length, 0u);
  EXPECT_EQ(table.path_from(Asn(6)), (AsPath{6}));
}

TEST(RouteSim, CustomerRouteClimbsProviders) {
  const AsGraph g = hand_graph();
  const RouteSimulator sim(g);
  const auto table = sim.routes_to(Asn(6));
  // 3 and 1 hold customer routes to 6.
  EXPECT_EQ(table.route(Asn(3)).route_class, RouteClass::kCustomer);
  EXPECT_EQ(table.route(Asn(1)).route_class, RouteClass::kCustomer);
  EXPECT_EQ(table.path_from(Asn(1)), (AsPath{1, 3, 6}));
}

TEST(RouteSim, PeerRouteOneHop) {
  const AsGraph g = hand_graph();
  const RouteSimulator sim(g);
  const auto table = sim.routes_to(Asn(6));
  // 2 learns 6 via its peer 1 (peer route), not via a customer.
  const auto at2 = table.route(Asn(2));
  EXPECT_EQ(at2.route_class, RouteClass::kPeer);
  EXPECT_EQ(table.path_from(Asn(2)), (AsPath{2, 1, 3, 6}));
}

TEST(RouteSim, ProviderRouteDescends) {
  const AsGraph g = hand_graph();
  const RouteSimulator sim(g);
  const auto table = sim.routes_to(Asn(6));
  // 8 must go up to 5, which peers with 4 or uses provider 2: but 5's
  // route to 6 comes via peer 4 (4's customer cone does not contain 6!) —
  // no: 4 has no customer route to 6; 5's options are provider 2 only.
  const auto at8 = table.route(Asn(8));
  EXPECT_EQ(at8.route_class, RouteClass::kProvider);
  const auto path8 = table.path_from(Asn(8));
  EXPECT_EQ(path8.first(), Asn(8));
  EXPECT_EQ(path8.last(), Asn(6));
}

TEST(RouteSim, CustomerPreferredOverPeerAndProvider) {
  // 1 reaches 4's customer 7 via its own customer 4 even though 2 could
  // also reach it; and 5 prefers its peer 4's route over provider 2.
  const AsGraph g = hand_graph();
  const RouteSimulator sim(g);
  const auto table = sim.routes_to(Asn(7));
  EXPECT_EQ(table.route(Asn(1)).route_class, RouteClass::kCustomer);
  EXPECT_EQ(table.path_from(Asn(1)), (AsPath{1, 4, 7}));
  const auto at5 = table.route(Asn(5));
  EXPECT_EQ(at5.route_class, RouteClass::kPeer);
  EXPECT_EQ(table.path_from(Asn(5)), (AsPath{5, 4, 7}));
}

TEST(RouteSim, PeerRoutesNotReExported) {
  // 8 (customer of 5) CAN use 5's peer route to 7 (peer routes are exported
  // to customers), but 2 must NOT hear 4-7 via its customer 5's peer 4...
  // it does: 5 exports peer-learned routes to its provider? NO — routes
  // learned from peers are exported to customers only.  2 reaches 7 via its
  // peer 1 instead.
  const AsGraph g = hand_graph();
  const RouteSimulator sim(g);
  const auto table = sim.routes_to(Asn(7));
  const auto path2 = table.path_from(Asn(2));
  EXPECT_EQ(path2, (AsPath{2, 1, 4, 7}));
  const auto path8 = table.path_from(Asn(8));
  EXPECT_EQ(path8, (AsPath{8, 5, 4, 7}));
}

TEST(RouteSim, UnknownDestinationThrows) {
  const AsGraph g = hand_graph();
  const RouteSimulator sim(g);
  EXPECT_THROW((void)sim.routes_to(Asn(999)), std::invalid_argument);
}

TEST(RouteSim, DisconnectedAsUnreachable) {
  AsGraph g = hand_graph();
  g.add_as(Asn(99));  // isolated
  const RouteSimulator sim(g);
  const auto table = sim.routes_to(Asn(6));
  EXPECT_EQ(table.route(Asn(99)).route_class, RouteClass::kNone);
  EXPECT_TRUE(table.path_from(Asn(99)).empty());
}

TEST(RouteSim, SiblingsExchangeAllRoutes) {
  AsGraph g;
  g.add_p2c(Asn(1), Asn(2));
  g.add_s2s(Asn(2), Asn(3));  // 3 is 2's sibling
  g.add_p2c(Asn(3), Asn(4));
  const RouteSimulator sim(g);
  // 4 is reachable from 1 through the sibling bridge 2~3.
  const auto table = sim.routes_to(Asn(4));
  const auto path1 = table.path_from(Asn(1));
  EXPECT_EQ(path1, (AsPath{1, 2, 3, 4}));
}

/// Valley-free property over generated topologies: along every simulated
/// path the relationship sequence must match uphill* peak? downhill*.
bool valley_free(const AsGraph& truth, const AsPath& path) {
  // States: 0 = ascending, 1 = after peak.
  int state = 0;
  for (std::size_t i = 1; i < path.size(); ++i) {
    const auto view = truth.view(path.at(i - 1), path.at(i));
    if (!view) return false;  // path uses a non-link
    switch (*view) {
      case RelView::kProvider:  // moving up
        if (state != 0) return false;
        break;
      case RelView::kPeer:
        if (state != 0) return false;
        state = 1;
        break;
      case RelView::kCustomer:  // moving down
        state = 1;
        break;
      case RelView::kSibling:
        break;  // neutral
    }
  }
  return true;
}

class ValleyFreeProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ValleyFreeProperty, AllSimulatedPathsAreValleyFree) {
  auto params = topogen::GenParams::preset("tiny");
  params.seed = GetParam();
  const auto truth = topogen::generate(params);
  const RouteSimulator sim(truth.graph);
  for (const Asn dest : sim.ases()) {
    const auto table = sim.routes_to(dest);
    for (const Asn as : sim.ases()) {
      const auto path = table.path_from(as);
      if (path.empty()) continue;
      EXPECT_TRUE(valley_free(truth.graph, path))
          << "dest " << dest.value() << " path " << path.str();
      EXPECT_FALSE(path.has_loop()) << path.str();
      EXPECT_EQ(path.last(), dest);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ValleyFreeProperty, ::testing::Values(1, 7, 42, 99, 1234));

TEST(RouteSim, PathLengthMatchesSelectedLength) {
  const auto truth = topogen::generate(topogen::GenParams::preset("tiny"));
  const RouteSimulator sim(truth.graph);
  for (const Asn dest : sim.ases()) {
    const auto table = sim.routes_to(dest);
    for (const Asn as : sim.ases()) {
      const auto route = table.route(as);
      if (route.route_class == RouteClass::kNone) continue;
      EXPECT_EQ(table.path_from(as).size(), route.length + 1);
    }
  }
}

// -------------------------------------------------------- route leaks -----

TEST(RouteSim, LeakerExportsNonCustomerRoutesToProviders) {
  // 1-2 peer at the top, 10 multihomed below both, 20 a customer of 1 only.
  AsGraph g;
  g.add_p2p(Asn(1), Asn(2));
  g.add_p2c(Asn(1), Asn(10));
  g.add_p2c(Asn(2), Asn(10));
  g.add_p2c(Asn(1), Asn(20));

  // Without leakers, 2 reaches 20 over the peering: strict Gao–Rexford.
  {
    const RouteSimulator sim(g);
    const auto table = sim.routes_to(Asn(20));
    EXPECT_EQ(table.route(Asn(2)).route_class, RouteClass::kPeer);
    EXPECT_EQ(table.path_from(Asn(2)), (AsPath{2, 1, 20}));
    EXPECT_EQ(table.route(Asn(10)).route_class, RouteClass::kProvider);
  }

  // With 10 leaking, 2 hears 10's provider-learned route as customer-class
  // and prefers it despite the extra hops (local-pref beats length — the
  // mechanism that makes real leaks spread).  The resulting path has a
  // valley: 2 -> 10 goes down, 10 -> 1 goes back up.
  {
    const RouteSimulator sim(g, {Asn(10)});
    const auto table = sim.routes_to(Asn(20));
    EXPECT_EQ(table.route(Asn(2)).route_class, RouteClass::kCustomer);
    EXPECT_EQ(table.path_from(Asn(2)), (AsPath{2, 10, 1, 20}));
    // The leak fills gaps only: 1's legitimate customer route is untouched,
    // and the leaker's own selection is unchanged.
    EXPECT_EQ(table.route(Asn(1)).route_class, RouteClass::kCustomer);
    EXPECT_EQ(table.path_from(Asn(1)), (AsPath{1, 20}));
    EXPECT_EQ(table.route(Asn(10)).route_class, RouteClass::kProvider);
  }

  // A leaker holding a customer route exports it normally — nothing new
  // leaks, so the tables match the strict simulator exactly.
  {
    AsGraph with_stub = g;
    with_stub.add_p2c(Asn(10), Asn(30));
    const RouteSimulator strict(with_stub);
    const RouteSimulator leaky(with_stub, {Asn(10)});
    const auto a = strict.routes_to(Asn(30));
    const auto b = leaky.routes_to(Asn(30));
    for (const Asn as : strict.ases()) {
      EXPECT_EQ(a.route(as).route_class, b.route(as).route_class) << as.value();
      EXPECT_EQ(a.path_from(as), b.path_from(as)) << as.value();
    }
  }
}

TEST(RouteSim, EmptyLeakerSetMatchesStrictSimulatorExactly) {
  const auto truth = topogen::generate(topogen::GenParams::preset("tiny"));
  const RouteSimulator strict(truth.graph);
  const RouteSimulator empty_leakers(truth.graph, {});
  for (const Asn dest : strict.ases()) {
    const auto a = strict.routes_to(dest);
    const auto b = empty_leakers.routes_to(dest);
    for (const Asn as : strict.ases()) {
      EXPECT_EQ(a.path_from(as), b.path_from(as))
          << "dest " << dest.value() << " at " << as.value();
    }
  }
}

TEST(RouteSim, LeakedPathsViolateValleyFreedomButNeverLoop) {
  auto params = topogen::GenParams::preset("tiny");
  params.route_leaker_fraction = 1.0;
  const auto truth = topogen::generate(params);
  ASSERT_FALSE(truth.route_leakers.empty());
  const RouteSimulator sim(truth.graph, truth.route_leakers);
  std::size_t valleys = 0;
  for (const Asn dest : sim.ases()) {
    const auto table = sim.routes_to(dest);
    for (const Asn as : sim.ases()) {
      const auto path = table.path_from(as);
      if (path.empty()) continue;
      EXPECT_FALSE(path.has_loop()) << path.str();
      EXPECT_EQ(path.last(), dest);
      if (!valley_free(truth.graph, path)) ++valleys;
    }
  }
  // The whole point of the scenario: some selected paths now have valleys.
  EXPECT_GT(valleys, 0u);
}

// --------------------------------------------------------- observation ----

TEST(Observation, DeterministicForSeed) {
  const auto truth = topogen::generate(topogen::GenParams::preset("tiny"));
  ObservationParams params;
  params.full_vps = 4;
  params.partial_vps = 2;
  const auto a = observe(truth, params);
  const auto b = observe(truth, params);
  ASSERT_EQ(a.routes.size(), b.routes.size());
  for (std::size_t i = 0; i < a.routes.size(); ++i) {
    EXPECT_EQ(a.routes[i].path, b.routes[i].path);
  }
}

TEST(Observation, PartialVpsExportOnlyCustomerRoutes) {
  const auto truth = topogen::generate(topogen::GenParams::preset("small"));
  ObservationParams params;
  params.full_vps = 3;
  params.partial_vps = 5;
  params.prepend_prob = 0;
  params.poison_prob = 0;
  params.ixp_leak_prob = 0;
  params.private_leak_prob = 0;
  const auto obs = observe(truth, params);
  const RouteSimulator sim(truth.graph);
  std::unordered_map<Asn, bool> is_full;
  for (const auto& vp : obs.vps) is_full[vp.as] = vp.full_feed;
  // Partial VP paths must descend from the VP: every hop is a customer (or
  // sibling) step in ground truth.
  for (const auto& route : obs.routes) {
    if (is_full.at(route.vp)) continue;
    for (std::size_t i = 1; i < route.path.size(); ++i) {
      const auto view = truth.graph.view(route.path.at(i - 1), route.path.at(i));
      ASSERT_TRUE(view);
      EXPECT_TRUE(*view == RelView::kCustomer || *view == RelView::kSibling)
          << route.path.str();
    }
  }
}

TEST(Observation, HybridLinksRouteEvenDestinationsAsTransit) {
  auto params_gen = topogen::GenParams::preset("tiny");
  params_gen.hybrid_link_fraction = 1.0;
  const auto truth = topogen::generate(params_gen);
  ASSERT_FALSE(truth.hybrid_links.empty());

  // Control: the same topology with the hybrid overlay stripped.
  auto control = truth;
  control.hybrid_links.clear();

  ObservationParams params;
  params.full_vps = 4;
  params.partial_vps = 0;
  params.prepend_prob = 0;
  params.poison_prob = 0;
  params.ixp_leak_prob = 0;
  params.private_leak_prob = 0;
  const auto with_hybrid = observe(truth, params);
  const auto without = observe(control, params);

  // The overlay reroutes only the deterministic half of the destinations
  // (even ASN = the hybrid simulator), so the two observations align
  // row-for-row and differ only on even-origin paths.
  ASSERT_EQ(with_hybrid.routes.size(), without.routes.size());
  std::size_t changed = 0;
  for (std::size_t i = 0; i < with_hybrid.routes.size(); ++i) {
    const auto& a = with_hybrid.routes[i];
    const auto& b = without.routes[i];
    ASSERT_EQ(a.vp, b.vp);
    ASSERT_EQ(a.prefix, b.prefix);
    if (a.path == b.path) continue;
    ++changed;
    EXPECT_EQ(a.path.last(), b.path.last());
    EXPECT_EQ(a.path.last().value() % 2, 0u) << a.path.str();
  }
  EXPECT_GT(changed, 0u);
}

TEST(Observation, PathologiesAreInjectedAndAudited) {
  const auto truth = topogen::generate(topogen::GenParams::preset("small"));
  ObservationParams params;
  params.prepend_prob = 0.2;
  params.poison_prob = 0.05;
  params.private_leak_prob = 0.05;
  params.ixp_leak_prob = 0.5;
  const auto obs = observe(truth, params);
  EXPECT_GT(obs.audit.prepended, 0u);
  EXPECT_GT(obs.audit.poisoned(), 0u);
  EXPECT_GT(obs.audit.private_leaked, 0u);
  EXPECT_GT(obs.audit.ixp_leaked, 0u);
  // Audit counts must be witnessed by the routes themselves.
  std::size_t prepended = 0, looped = 0, privates = 0, ixp = 0;
  for (const auto& route : obs.routes) {
    if (route.path.has_prepending()) ++prepended;
    if (route.path.has_loop()) ++looped;
    for (const Asn hop : route.path.hops()) {
      if (hop.private_use()) ++privates;
      if (truth.ixp_asns.contains(hop)) ++ixp;
    }
  }
  EXPECT_GT(prepended, 0u);
  EXPECT_GT(looped, 0u);
  EXPECT_GT(privates, 0u);
  EXPECT_GT(ixp, 0u);
}

TEST(Observation, CleanParamsInjectNothing) {
  const auto truth = topogen::generate(topogen::GenParams::preset("tiny"));
  ObservationParams params;
  params.prepend_prob = 0;
  params.poison_prob = 0;
  params.ixp_leak_prob = 0;
  params.private_leak_prob = 0;
  const auto obs = observe(truth, params);
  EXPECT_EQ(obs.audit.prepended, 0u);
  EXPECT_EQ(obs.audit.poisoned(), 0u);
  EXPECT_EQ(obs.audit.ixp_leaked, 0u);
  EXPECT_EQ(obs.audit.private_leaked, 0u);
  for (const auto& route : obs.routes) {
    EXPECT_FALSE(route.path.has_loop());
    EXPECT_FALSE(route.path.has_reserved_asn());
  }
}

TEST(Observation, ExpandPrefixesMultipliesRows) {
  const auto truth = topogen::generate(topogen::GenParams::preset("tiny"));
  ObservationParams params;
  params.expand_prefixes = true;
  const auto expanded = observe(truth, params);
  params.expand_prefixes = false;
  const auto collapsed = observe(truth, params);
  EXPECT_GT(expanded.routes.size(), collapsed.routes.size());
}

TEST(Observation, DestinationSamplingReducesRows) {
  const auto truth = topogen::generate(topogen::GenParams::preset("small"));
  ObservationParams params;
  const auto full = observe(truth, params);
  params.destination_sample = 0.3;
  const auto sampled = observe(truth, params);
  EXPECT_LT(sampled.routes.size(), full.routes.size());
  EXPECT_GT(sampled.routes.size(), 0u);
}

TEST(Observation, ThreadCountDoesNotChangeResults) {
  const auto truth = topogen::generate(topogen::GenParams::preset("small"));
  ObservationParams serial;
  serial.full_vps = 8;
  serial.partial_vps = 3;
  serial.threads = 1;
  auto parallel = serial;
  parallel.threads = 4;
  const auto a = observe(truth, serial);
  const auto b = observe(truth, parallel);
  ASSERT_EQ(a.routes.size(), b.routes.size());
  for (std::size_t i = 0; i < a.routes.size(); ++i) {
    EXPECT_EQ(a.routes[i].vp, b.routes[i].vp);
    EXPECT_EQ(a.routes[i].prefix, b.routes[i].prefix);
    EXPECT_EQ(a.routes[i].path, b.routes[i].path);
  }
  EXPECT_EQ(a.audit.prepended, b.audit.prepended);
  EXPECT_EQ(a.audit.poisoned(), b.audit.poisoned());
  EXPECT_EQ(a.audit.ixp_leaked, b.audit.ixp_leaked);
}

TEST(Observation, RibDumpRoundTrip) {
  const auto truth = topogen::generate(topogen::GenParams::preset("tiny"));
  const auto obs = observe(truth, ObservationParams{});
  const auto dump = to_rib_dump(obs);
  EXPECT_EQ(dump.peers.size(), obs.vps.size());

  std::stringstream stream;
  mrt::write_table_dump_v2(dump, stream);
  const auto parsed = mrt::read_table_dump_v2(stream);
  const auto recovered = from_rib_dump(parsed);

  // Same multiset of (vp, prefix, path) rows.
  ASSERT_EQ(recovered.size(), obs.routes.size());
  auto key = [](const ObservedRoute& r) {
    return r.prefix.str() + "|" + std::to_string(r.vp.value()) + "|" + r.path.str();
  };
  std::vector<std::string> a, b;
  for (const auto& r : obs.routes) a.push_back(key(r));
  for (const auto& r : recovered) b.push_back(key(r));
  std::sort(a.begin(), a.end());
  std::sort(b.begin(), b.end());
  EXPECT_EQ(a, b);
}

TEST(Observation, BadPeerIndexThrows) {
  mrt::RibDump dump;
  dump.peers.push_back(mrt::PeerEntry{1, 1, Asn(1)});
  mrt::RibEntry entry;
  entry.prefix = *Prefix::parse("192.0.2.0/24");
  mrt::RibRoute route;
  route.peer_index = 7;  // out of range
  route.attrs.as_path = AsPath{1};
  entry.routes.push_back(route);
  dump.rib.push_back(entry);
  EXPECT_THROW((void)from_rib_dump(dump), mrt::DecodeError);
}

}  // namespace
}  // namespace asrank::bgpsim
