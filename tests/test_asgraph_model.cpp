// Randomized model check: AsGraph against a naive reference implementation
// under thousands of mixed mutations.  Guards the adjacency-list/link-map
// consistency that every other module depends on.
#include <gtest/gtest.h>

#include <map>

#include "topology/as_graph.h"
#include "util/rng.h"

namespace asrank {
namespace {

/// Naive reference: a map from normalized pair to oriented link.
class ReferenceGraph {
 public:
  void set(Asn first, Asn second, LinkType type) {
    links_[key(first, second)] = Link{first, second, type};
  }
  bool remove(Asn a, Asn b) { return links_.erase(key(a, b)) > 0; }

  [[nodiscard]] std::optional<Link> link(Asn a, Asn b) const {
    const auto it = links_.find(key(a, b));
    if (it == links_.end()) return std::nullopt;
    return it->second;
  }
  [[nodiscard]] std::size_t size() const { return links_.size(); }

  [[nodiscard]] std::vector<Asn> providers(Asn as) const {
    std::vector<Asn> out;
    for (const auto& [k, l] : links_) {
      if (l.type == LinkType::kP2C && l.b == as) out.push_back(l.a);
    }
    std::sort(out.begin(), out.end());
    return out;
  }
  [[nodiscard]] std::vector<Asn> peers(Asn as) const {
    std::vector<Asn> out;
    for (const auto& [k, l] : links_) {
      if (l.type != LinkType::kP2P) continue;
      if (l.a == as) out.push_back(l.b);
      if (l.b == as) out.push_back(l.a);
    }
    std::sort(out.begin(), out.end());
    return out;
  }

 private:
  static std::pair<std::uint32_t, std::uint32_t> key(Asn a, Asn b) {
    return {std::min(a.value(), b.value()), std::max(a.value(), b.value())};
  }
  std::map<std::pair<std::uint32_t, std::uint32_t>, Link> links_;
};

class AsGraphModel : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(AsGraphModel, AgreesWithReferenceUnderRandomOps) {
  util::Rng rng(GetParam());
  AsGraph graph;
  ReferenceGraph reference;
  constexpr std::uint32_t kAses = 20;

  for (int op = 0; op < 3000; ++op) {
    const Asn a(1 + static_cast<std::uint32_t>(rng.uniform(kAses)));
    Asn b(1 + static_cast<std::uint32_t>(rng.uniform(kAses)));
    if (a == b) b = Asn(a.value() % kAses + 1);
    const auto action = rng.uniform(5);
    if (action <= 2) {
      const LinkType type = action == 0   ? LinkType::kP2C
                            : action == 1 ? LinkType::kP2P
                                          : LinkType::kS2S;
      graph.set_relationship(a, b, type);
      reference.set(a, b, type);
    } else if (action == 3) {
      EXPECT_EQ(graph.remove_link(a, b), reference.remove(a, b));
    } else {
      const auto got = graph.link(a, b);
      const auto want = reference.link(a, b);
      ASSERT_EQ(got.has_value(), want.has_value());
      if (got) {
        EXPECT_EQ(got->type, want->type);
        if (got->type == LinkType::kP2C) {
          EXPECT_EQ(got->a, want->a);
          EXPECT_EQ(got->b, want->b);
        }
      }
    }
  }

  // Final deep comparison.
  EXPECT_EQ(graph.link_count(), reference.size());
  for (std::uint32_t v = 1; v <= kAses; ++v) {
    const Asn as(v);
    std::vector<Asn> got_providers(graph.providers(as).begin(), graph.providers(as).end());
    std::sort(got_providers.begin(), got_providers.end());
    EXPECT_EQ(got_providers, reference.providers(as)) << "AS" << v;
    std::vector<Asn> got_peers(graph.peers(as).begin(), graph.peers(as).end());
    std::sort(got_peers.begin(), got_peers.end());
    EXPECT_EQ(got_peers, reference.peers(as)) << "AS" << v;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, AsGraphModel, ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

}  // namespace
}  // namespace asrank
