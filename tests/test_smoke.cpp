// End-to-end smoke test: generate -> observe -> infer -> validate.  Deeper
// per-module suites live in the sibling test files.
#include <gtest/gtest.h>

#include "bgpsim/observation.h"
#include "core/asrank.h"
#include "core/cones.h"
#include "topogen/topogen.h"
#include "validation/ppv.h"
#include "validation/synthesize.h"

namespace asrank {
namespace {

TEST(Smoke, EndToEndPipeline) {
  const auto params = topogen::GenParams::preset("tiny");
  const auto truth = topogen::generate(params);
  EXPECT_TRUE(truth.graph.p2c_acyclic());

  bgpsim::ObservationParams obs_params;
  obs_params.full_vps = 4;
  obs_params.partial_vps = 2;
  const auto observation = bgpsim::observe(truth, obs_params);
  EXPECT_FALSE(observation.routes.empty());

  core::InferenceConfig config;
  config.sanitizer.ixp_asns.insert(truth.ixp_asns.begin(), truth.ixp_asns.end());
  const auto result = core::AsRankInference(config).run(
      paths::PathCorpus::from_records(observation.routes));
  EXPECT_TRUE(result.audit.p2c_acyclic);
  EXPECT_GT(result.graph.link_count(), 0u);

  const auto accuracy = validation::evaluate_against_truth(result.graph, truth.graph);
  EXPECT_GT(accuracy.accuracy(), 0.8);

  const auto cones = core::recursive_cone(result.graph);
  EXPECT_EQ(cones.size(), result.graph.as_count());
}

}  // namespace
}  // namespace asrank
