#include <gtest/gtest.h>

#include "baselines/asrank_adapter.h"
#include "baselines/degree_heuristic.h"
#include "baselines/gao.h"
#include "baselines/tor_local_search.h"
#include "bgpsim/observation.h"
#include "topogen/topogen.h"
#include "validation/ppv.h"

namespace asrank::baselines {
namespace {

paths::PathRecord rec(std::uint32_t vp, std::uint32_t prefix_id,
                      std::initializer_list<std::uint32_t> hops) {
  return paths::PathRecord{Asn(vp), Prefix::v4(prefix_id << 8, 24), AsPath(hops)};
}

/// Star provider 10 with customers 1..4; plus 20 serving 5,6; VP paths give
/// 10 the largest degree.
paths::PathCorpus star_corpus() {
  paths::PathCorpus corpus;
  std::uint32_t prefix = 0;
  auto add = [&](std::uint32_t vp, std::initializer_list<std::uint32_t> hops) {
    corpus.add(rec(vp, ++prefix, hops));
  };
  add(1, {1, 10, 2});
  add(1, {1, 10, 3});
  add(1, {1, 10, 4});
  add(2, {2, 10, 1});
  add(5, {5, 20, 10, 1});  // 20 buys from 10
  add(5, {5, 20, 6});
  add(1, {1, 10, 20, 6});
  return corpus;
}

// ----------------------------------------------------------------- Gao ----

TEST(Gao, InfersTransitAroundTopProvider) {
  const GaoInference gao;
  const AsGraph g = gao.infer(star_corpus());
  EXPECT_EQ(g.view(Asn(1), Asn(10)), RelView::kProvider);
  EXPECT_EQ(g.view(Asn(2), Asn(10)), RelView::kProvider);
  EXPECT_EQ(g.view(Asn(20), Asn(10)), RelView::kProvider);
  EXPECT_EQ(g.view(Asn(6), Asn(20)), RelView::kProvider);
}

TEST(Gao, SiblingWhenBothDirectionsTransit) {
  paths::PathCorpus corpus;
  // 1 and 2 each appear providing for the other repeatedly around top 10.
  corpus.add(rec(9, 1, {9, 10, 1, 2, 3}));
  corpus.add(rec(9, 2, {9, 10, 1, 2, 4}));
  corpus.add(rec(9, 3, {9, 10, 2, 1, 5}));
  corpus.add(rec(9, 4, {9, 10, 2, 1, 6}));
  GaoConfig config;
  config.sibling_threshold = 1;
  const GaoInference gao(config);
  const AsGraph g = gao.infer(corpus);
  EXPECT_EQ(g.view(Asn(1), Asn(2)), RelView::kSibling);
}

TEST(Gao, PeeringAtTopWithComparableDegrees) {
  paths::PathCorpus corpus;
  // Two comparable tops 10 and 20, each with customers; the 10-20 link is
  // only ever seen at the peak.
  corpus.add(rec(1, 1, {1, 10, 20, 5}));
  corpus.add(rec(5, 2, {5, 20, 10, 1}));
  corpus.add(rec(1, 3, {1, 10, 2}));
  corpus.add(rec(5, 4, {5, 20, 6}));
  const GaoInference gao;
  const AsGraph g = gao.infer(corpus);
  EXPECT_EQ(g.view(Asn(10), Asn(20)), RelView::kPeer);
}

TEST(Gao, DegreeRatioBlocksImplausiblePeering) {
  paths::PathCorpus corpus;
  // Top 10 has many neighbours; 2 has only one: ratio too large to peer.
  for (std::uint32_t i = 20; i < 120; ++i) corpus.add(rec(1, i, {1, 10, i}));
  corpus.add(rec(2, 500, {2, 10, 21}));
  GaoConfig config;
  config.peering_degree_ratio = 10.0;
  const GaoInference gao(config);
  const AsGraph g = gao.infer(corpus);
  EXPECT_EQ(g.view(Asn(2), Asn(10)), RelView::kProvider);
}

TEST(Gao, NameIsStable) { EXPECT_EQ(GaoInference().name(), "gao2001"); }

// ---------------------------------------------------- degree heuristic ----

TEST(DegreeHeuristic, BigDegreeGapMeansProvider) {
  const DegreeHeuristic heuristic;
  const AsGraph g = heuristic.infer(star_corpus());
  EXPECT_EQ(g.view(Asn(1), Asn(10)), RelView::kProvider);
  EXPECT_EQ(g.view(Asn(6), Asn(20)), RelView::kProvider);
}

TEST(DegreeHeuristic, ComparableDegreesMeanPeer) {
  paths::PathCorpus corpus;
  corpus.add(rec(1, 1, {1, 10, 20, 5}));
  corpus.add(rec(1, 2, {1, 10, 2}));
  corpus.add(rec(5, 3, {5, 20, 6}));
  const DegreeHeuristic heuristic;
  const AsGraph g = heuristic.infer(corpus);
  // 10 and 20 both have degree 3: peers under ratio 2.
  EXPECT_EQ(g.view(Asn(10), Asn(20)), RelView::kPeer);
}

TEST(DegreeHeuristic, AnnotatesEveryObservedLink) {
  const auto corpus = star_corpus();
  const AsGraph g = DegreeHeuristic().infer(corpus);
  EXPECT_EQ(g.link_count(), corpus.link_observations().size());
}

// --------------------------------------------------- ToR local search ----

TEST(TorLocalSearch, ReducesViolationsFromInitialLabelling) {
  const auto corpus = star_corpus();
  DegreeHeuristicConfig initial;
  const AsGraph start = DegreeHeuristic(initial).infer(corpus);
  const AsGraph tuned = TorLocalSearch().infer(corpus);
  EXPECT_LE(TorLocalSearch::violations(tuned, corpus),
            TorLocalSearch::violations(start, corpus));
}

TEST(TorLocalSearch, ConvergesToValleyFreeOnCleanStar) {
  const auto corpus = star_corpus();
  const AsGraph tuned = TorLocalSearch().infer(corpus);
  EXPECT_EQ(TorLocalSearch::violations(tuned, corpus), 0u);
  // Transit skeleton correct where the objective constrains it.
  EXPECT_EQ(tuned.view(Asn(1), Asn(10)), RelView::kProvider);
  // The 10-20 link is valley-free both as p2c and as p2p — the documented
  // degeneracy of pure valley-free maximization.  It must at least not be
  // inverted (20 providing 10 would create valleys).
  const auto view = tuned.view(Asn(20), Asn(10));
  ASSERT_TRUE(view);
  EXPECT_NE(*view, RelView::kCustomer);
}

TEST(TorLocalSearch, ViolationCountsKnownCases) {
  AsGraph g;
  g.add_p2c(Asn(1), Asn(2));  // 1 provides 2
  g.add_p2c(Asn(3), Asn(2));  // 3 provides 2
  paths::PathCorpus corpus;
  corpus.add(rec(9, 1, {1, 2, 3}));  // down then up: a valley
  EXPECT_EQ(TorLocalSearch::violations(g, corpus), 1u);
  corpus.add(rec(9, 2, {2, 1}));  // pure ascent: fine
  EXPECT_EQ(TorLocalSearch::violations(g, corpus), 1u);
}

TEST(TorLocalSearch, AnnotatesEveryObservedLink) {
  const auto corpus = star_corpus();
  const AsGraph tuned = TorLocalSearch().infer(corpus);
  EXPECT_EQ(tuned.link_count(), corpus.link_observations().size());
}

// ---------------------------------------------------------- comparison ----

TEST(Comparison, AsRankBeatsBaselinesOnSyntheticTruth) {
  const auto truth = topogen::generate(topogen::GenParams::preset("small"));
  bgpsim::ObservationParams params;
  params.full_vps = 15;
  params.partial_vps = 5;
  const auto observation = bgpsim::observe(truth, params);
  const auto corpus = paths::PathCorpus::from_records(observation.routes);

  core::InferenceConfig config;
  config.sanitizer.ixp_asns.insert(truth.ixp_asns.begin(), truth.ixp_asns.end());
  const AsRankAlgorithm asrank(config);
  const GaoInference gao;
  const DegreeHeuristic degree;
  const TorLocalSearch tor;

  auto accuracy = [&](const InferenceAlgorithm& algorithm) {
    const auto inferred = algorithm.infer(corpus);
    return validation::evaluate_against_truth(inferred, truth.graph).accuracy();
  };
  const double a = accuracy(asrank);
  const double g = accuracy(gao);
  const double d = accuracy(degree);
  const double t = accuracy(tor);
  EXPECT_GT(a, g);
  EXPECT_GT(a, d);
  EXPECT_GT(a, t);
  EXPECT_GT(a, 0.85);
}

}  // namespace
}  // namespace asrank::baselines
