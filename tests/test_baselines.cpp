#include <gtest/gtest.h>

#include "algo/registry.h"
#include "baselines/tor_local_search.h"
#include "bgpsim/observation.h"
#include "paths/sanitizer.h"
#include "topogen/topogen.h"
#include "validation/ppv.h"

namespace asrank::baselines {
namespace {

/// Every algorithm under test is constructed through the registry — the same
/// path the CLI and snapshot builder use — so these tests also pin the
/// registry's name->config plumbing.
std::unique_ptr<algo::InferenceAlgorithm> make(std::string_view name,
                                               algo::AlgorithmOptions options = {}) {
  auto made = algo::create(name, options);
  EXPECT_TRUE(made.ok()) << (made.ok() ? "" : made.error().message());
  return std::move(made).value();
}

paths::PathRecord rec(std::uint32_t vp, std::uint32_t prefix_id,
                      std::initializer_list<std::uint32_t> hops) {
  return paths::PathRecord{Asn(vp), Prefix::v4(prefix_id << 8, 24), AsPath(hops)};
}

/// Star provider 10 with customers 1..4; plus 20 serving 5,6; VP paths give
/// 10 the largest degree.
paths::PathCorpus star_corpus() {
  paths::PathCorpus corpus;
  std::uint32_t prefix = 0;
  auto add = [&](std::uint32_t vp, std::initializer_list<std::uint32_t> hops) {
    corpus.add(rec(vp, ++prefix, hops));
  };
  add(1, {1, 10, 2});
  add(1, {1, 10, 3});
  add(1, {1, 10, 4});
  add(2, {2, 10, 1});
  add(5, {5, 20, 10, 1});  // 20 buys from 10
  add(5, {5, 20, 6});
  add(1, {1, 10, 20, 6});
  return corpus;
}

// ----------------------------------------------------------------- Gao ----

TEST(Gao, InfersTransitAroundTopProvider) {
  const auto gao = make("gao2001");
  const AsGraph g = gao->infer(star_corpus());
  EXPECT_EQ(g.view(Asn(1), Asn(10)), RelView::kProvider);
  EXPECT_EQ(g.view(Asn(2), Asn(10)), RelView::kProvider);
  EXPECT_EQ(g.view(Asn(20), Asn(10)), RelView::kProvider);
  EXPECT_EQ(g.view(Asn(6), Asn(20)), RelView::kProvider);
}

TEST(Gao, SiblingWhenBothDirectionsTransit) {
  paths::PathCorpus corpus;
  // 1 and 2 each appear providing for the other repeatedly around top 10.
  corpus.add(rec(9, 1, {9, 10, 1, 2, 3}));
  corpus.add(rec(9, 2, {9, 10, 1, 2, 4}));
  corpus.add(rec(9, 3, {9, 10, 2, 1, 5}));
  corpus.add(rec(9, 4, {9, 10, 2, 1, 6}));
  algo::AlgorithmOptions options;
  options.params["sibling-threshold"] = "1";
  const auto gao = make("gao2001", options);
  const AsGraph g = gao->infer(corpus);
  EXPECT_EQ(g.view(Asn(1), Asn(2)), RelView::kSibling);
}

TEST(Gao, PeeringAtTopWithComparableDegrees) {
  paths::PathCorpus corpus;
  // Two comparable tops 10 and 20, each with customers; the 10-20 link is
  // only ever seen at the peak.
  corpus.add(rec(1, 1, {1, 10, 20, 5}));
  corpus.add(rec(5, 2, {5, 20, 10, 1}));
  corpus.add(rec(1, 3, {1, 10, 2}));
  corpus.add(rec(5, 4, {5, 20, 6}));
  const auto gao = make("gao2001");
  const AsGraph g = gao->infer(corpus);
  EXPECT_EQ(g.view(Asn(10), Asn(20)), RelView::kPeer);
}

TEST(Gao, DegreeRatioBlocksImplausiblePeering) {
  paths::PathCorpus corpus;
  // Top 10 has many neighbours; 2 has only one: ratio too large to peer.
  for (std::uint32_t i = 20; i < 120; ++i) corpus.add(rec(1, i, {1, 10, i}));
  corpus.add(rec(2, 500, {2, 10, 21}));
  algo::AlgorithmOptions options;
  options.params["peering-degree-ratio"] = "10.0";
  const auto gao = make("gao2001", options);
  const AsGraph g = gao->infer(corpus);
  EXPECT_EQ(g.view(Asn(2), Asn(10)), RelView::kProvider);
}

TEST(Gao, NameIsStable) { EXPECT_EQ(make("gao")->name(), "gao2001"); }

// ---------------------------------------------------- degree heuristic ----

TEST(DegreeHeuristic, BigDegreeGapMeansProvider) {
  const auto heuristic = make("degree-ratio");
  const AsGraph g = heuristic->infer(star_corpus());
  EXPECT_EQ(g.view(Asn(1), Asn(10)), RelView::kProvider);
  EXPECT_EQ(g.view(Asn(6), Asn(20)), RelView::kProvider);
}

TEST(DegreeHeuristic, ComparableDegreesMeanPeer) {
  paths::PathCorpus corpus;
  corpus.add(rec(1, 1, {1, 10, 20, 5}));
  corpus.add(rec(1, 2, {1, 10, 2}));
  corpus.add(rec(5, 3, {5, 20, 6}));
  const auto heuristic = make("degree");
  const AsGraph g = heuristic->infer(corpus);
  // 10 and 20 both have degree 3: peers under ratio 2.
  EXPECT_EQ(g.view(Asn(10), Asn(20)), RelView::kPeer);
}

TEST(DegreeHeuristic, AnnotatesEveryObservedLink) {
  const auto corpus = star_corpus();
  const AsGraph g = make("degree-ratio")->infer(corpus);
  EXPECT_EQ(g.link_count(), corpus.link_observations().size());
}

// --------------------------------------------------- ToR local search ----

TEST(TorLocalSearch, ReducesViolationsFromInitialLabelling) {
  const auto corpus = star_corpus();
  const AsGraph start = make("degree-ratio")->infer(corpus);
  const AsGraph tuned = make("tor-local-search")->infer(corpus);
  EXPECT_LE(TorLocalSearch::violations(tuned, corpus),
            TorLocalSearch::violations(start, corpus));
}

TEST(TorLocalSearch, ConvergesToValleyFreeOnCleanStar) {
  const auto corpus = star_corpus();
  const AsGraph tuned = make("tor")->infer(corpus);
  EXPECT_EQ(TorLocalSearch::violations(tuned, corpus), 0u);
  // Transit skeleton correct where the objective constrains it.
  EXPECT_EQ(tuned.view(Asn(1), Asn(10)), RelView::kProvider);
  // The 10-20 link is valley-free both as p2c and as p2p — the documented
  // degeneracy of pure valley-free maximization.  It must at least not be
  // inverted (20 providing 10 would create valleys).
  const auto view = tuned.view(Asn(20), Asn(10));
  ASSERT_TRUE(view);
  EXPECT_NE(*view, RelView::kCustomer);
}

TEST(TorLocalSearch, ViolationCountsKnownCases) {
  AsGraph g;
  g.add_p2c(Asn(1), Asn(2));  // 1 provides 2
  g.add_p2c(Asn(3), Asn(2));  // 3 provides 2
  paths::PathCorpus corpus;
  corpus.add(rec(9, 1, {1, 2, 3}));  // down then up: a valley
  EXPECT_EQ(TorLocalSearch::violations(g, corpus), 1u);
  corpus.add(rec(9, 2, {2, 1}));  // pure ascent: fine
  EXPECT_EQ(TorLocalSearch::violations(g, corpus), 1u);
}

TEST(TorLocalSearch, AnnotatesEveryObservedLink) {
  const auto corpus = star_corpus();
  const AsGraph tuned = make("tor-local-search")->infer(corpus);
  EXPECT_EQ(tuned.link_count(), corpus.link_observations().size());
}

// ---------------------------------------------------------- comparison ----

TEST(Comparison, AsRankBeatsBaselinesOnSyntheticTruth) {
  const auto truth = topogen::generate(topogen::GenParams::preset("small"));
  bgpsim::ObservationParams params;
  params.full_vps = 15;
  params.partial_vps = 5;
  const auto observation = bgpsim::observe(truth, params);
  // All algorithms consume the same IXP-stripped corpus, so differences are
  // algorithmic rather than hygiene (asrank re-sanitizes internally; that
  // pass is a no-op on already-clean paths).
  paths::SanitizerConfig sanitizer;
  sanitizer.ixp_asns.insert(truth.ixp_asns.begin(), truth.ixp_asns.end());
  const auto corpus =
      paths::sanitize(paths::PathCorpus::from_records(observation.routes), sanitizer).corpus;

  auto accuracy = [&](std::string_view name) {
    const auto inferred = make(name)->infer(corpus);
    return validation::evaluate_against_truth(inferred, truth.graph).accuracy();
  };
  const double a = accuracy("asrank");
  const double g = accuracy("gao2001");
  const double d = accuracy("degree-ratio");
  const double t = accuracy("tor-local-search");
  EXPECT_GT(a, g);
  EXPECT_GT(a, d);
  EXPECT_GT(a, t);
  EXPECT_GT(a, 0.85);
}

// ------------------------------------------------------------- registry ----

TEST(Registry, ResolvesCanonicalNamesAndAliases) {
  for (const auto& [alias, canonical] :
       {std::pair<std::string_view, std::string_view>{"gao", "gao2001"},
        {"core", "asrank"},
        {"degree", "degree-ratio"},
        {"tor", "tor-local-search"}}) {
    auto resolved = algo::resolve(alias);
    ASSERT_TRUE(resolved.ok()) << alias;
    EXPECT_EQ(resolved.value(), canonical);
    EXPECT_EQ(algo::resolve(canonical).value(), canonical);
  }
}

TEST(Registry, UnknownNameListsRegisteredAlgorithms) {
  auto resolved = algo::resolve("bgp-magic");
  ASSERT_FALSE(resolved.ok());
  EXPECT_EQ(resolved.error().code, ErrorCode::kInvalidArgument);
  EXPECT_NE(resolved.error().context.find("unknown algorithm 'bgp-magic'"), std::string::npos);
  for (const std::string_view name : algo::names()) {
    EXPECT_NE(resolved.error().context.find(name), std::string::npos) << name;
  }
}

TEST(Registry, CreatedAlgorithmsReportCanonicalNames) {
  for (const std::string_view name : algo::names()) {
    EXPECT_EQ(make(name)->name(), name);
  }
}

TEST(Registry, RejectsUnknownAndMalformedParams) {
  algo::AlgorithmOptions bad_key;
  bad_key.params["no-such-knob"] = "1";
  auto made = algo::create("gao2001", bad_key);
  ASSERT_FALSE(made.ok());
  EXPECT_EQ(made.error().code, ErrorCode::kInvalidArgument);
  EXPECT_NE(made.error().context.find("no-such-knob"), std::string::npos);

  algo::AlgorithmOptions bad_value;
  bad_value.params["sibling-threshold"] = "many";
  auto parsed = algo::create("gao2001", bad_value);
  ASSERT_FALSE(parsed.ok());
  EXPECT_EQ(parsed.error().code, ErrorCode::kInvalidArgument);
}

TEST(Registry, InfoCarriesCitations) {
  for (const std::string_view name : algo::names()) {
    const auto* info = algo::info(name);
    ASSERT_NE(info, nullptr) << name;
    EXPECT_EQ(info->name, name);
    EXPECT_FALSE(info->citation.empty());
  }
  EXPECT_EQ(algo::info("nonsense"), nullptr);
  // Aliases resolve to the same metadata.
  EXPECT_EQ(algo::info("gao"), algo::info("gao2001"));
}

}  // namespace
}  // namespace asrank::baselines
