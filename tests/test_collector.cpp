#include <gtest/gtest.h>

#include <sstream>

#include "bgpsim/collector.h"
#include "bgpsim/update_stream.h"
#include "topogen/topogen.h"

namespace asrank::bgpsim {
namespace {

mrt::UpdateMessage announce(std::uint32_t peer, const char* prefix,
                            std::initializer_list<std::uint32_t> hops,
                            std::uint32_t timestamp = 1) {
  mrt::UpdateMessage update;
  update.timestamp = timestamp;
  update.peer_as = Asn(peer);
  update.local_as = Asn(65000);
  update.announced = {*Prefix::parse(prefix)};
  update.attrs.as_path = AsPath(hops);
  return update;
}

mrt::UpdateMessage withdraw(std::uint32_t peer, const char* prefix,
                            std::uint32_t timestamp = 2) {
  mrt::UpdateMessage update;
  update.timestamp = timestamp;
  update.peer_as = Asn(peer);
  update.local_as = Asn(65000);
  update.withdrawn = {*Prefix::parse(prefix)};
  return update;
}

TEST(Collector, AnnounceWithdrawLifecycle) {
  Collector collector({{Asn(1), true}});
  EXPECT_EQ(collector.route_count(), 0u);
  collector.apply(announce(1, "10.0.0.0/24", {1, 2, 3}));
  EXPECT_EQ(collector.route_count(), 1u);
  // Implicit withdraw: replacement.
  collector.apply(announce(1, "10.0.0.0/24", {1, 9, 3}, 5));
  EXPECT_EQ(collector.route_count(), 1u);
  EXPECT_EQ(collector.routes()[0].path, (AsPath{1, 9, 3}));
  EXPECT_EQ(collector.last_timestamp(), 5u);
  collector.apply(withdraw(1, "10.0.0.0/24", 6));
  EXPECT_EQ(collector.route_count(), 0u);
}

TEST(Collector, IgnoresUnknownPeers) {
  Collector collector({{Asn(1), true}});
  collector.apply(announce(99, "10.0.0.0/24", {99, 2}));
  EXPECT_EQ(collector.route_count(), 0u);
  EXPECT_EQ(collector.ignored_updates(), 1u);
}

TEST(Collector, PeerResetFlushesOnlyThatPeer) {
  Collector collector({{Asn(1), true}, {Asn(2), true}});
  collector.apply(announce(1, "10.0.0.0/24", {1, 3}));
  collector.apply(announce(1, "10.0.1.0/24", {1, 4}));
  collector.apply(announce(2, "10.0.0.0/24", {2, 3}));
  collector.reset_peer(Asn(1));
  EXPECT_EQ(collector.route_count(), 1u);
  EXPECT_EQ(collector.routes()[0].vp, Asn(2));
}

TEST(Collector, SnapshotRoundTrip) {
  Collector collector({{Asn(1), true}, {Asn(2), true}});
  collector.apply(announce(1, "10.0.0.0/24", {1, 3}, 11));
  collector.apply(announce(2, "10.0.1.0/24", {2, 4}, 12));
  const auto dump = collector.snapshot();
  EXPECT_EQ(dump.timestamp, 12u);

  std::stringstream stream;
  mrt::write_table_dump_v2(dump, stream);
  const auto reloaded = Collector::from_rib_dump(mrt::read_table_dump_v2(stream));
  EXPECT_EQ(reloaded.route_count(), 2u);
  EXPECT_EQ(reloaded.last_timestamp(), 12u);
  EXPECT_EQ(reloaded.routes()[0].path, collector.routes()[0].path);
}

TEST(Collector, RibPlusUpdatesEqualsLaterRib) {
  // The archival ingestion identity: load RIB(t0), apply updates(t0..t1),
  // and the table equals RIB(t1).
  const auto truth0 = topogen::generate(topogen::GenParams::preset("tiny"));
  auto truth1 = truth0;
  util::Rng rng(5);
  topogen::evolve(truth1, rng, topogen::EvolveParams{});

  ObservationParams params;
  params.full_vps = 4;
  params.partial_vps = 1;
  const auto obs0 = observe(truth0, params);
  const auto obs1 = observe(truth1, params);

  auto collector = Collector::from_rib_dump(to_rib_dump(obs0, 100));
  for (const auto& update : diff_observations(obs0, obs1, 200)) collector.apply(update);

  auto key = [](const ObservedRoute& r) {
    return std::to_string(r.vp.value()) + "|" + r.prefix.str() + "|" + r.path.str();
  };
  std::vector<std::string> want, got;
  for (const auto& r : obs1.routes) want.push_back(key(r));
  for (const auto& r : collector.routes()) got.push_back(key(r));
  std::sort(want.begin(), want.end());
  std::sort(got.begin(), got.end());
  EXPECT_EQ(got, want);
}

}  // namespace
}  // namespace bgpsim
