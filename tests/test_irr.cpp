#include <gtest/gtest.h>

#include <sstream>

#include "validation/irr.h"

namespace asrank::validation {
namespace {

TEST(Irr, ParsesRouteObjects) {
  std::stringstream text(
      "route: 192.0.2.0/24\n"
      "origin: AS64500\n"
      "descr: example\n"
      "\n"
      "route: 10.0.0.0/8\n"
      "origin: AS64501\n");
  const auto database = parse_irr(text);
  ASSERT_EQ(database.routes.size(), 2u);
  EXPECT_EQ(database.routes[0].prefix.str(), "192.0.2.0/24");
  EXPECT_EQ(database.routes[0].origin, Asn(64500));
}

TEST(Irr, ParsesAsSets) {
  std::stringstream text(
      "as-set: AS-EXAMPLE\n"
      "members: AS64500, AS64501, AS-NESTED\n"
      "\n"
      "as-set: as-nested\n"
      "members: AS64502\n");
  const auto database = parse_irr(text);
  ASSERT_EQ(database.as_sets.size(), 2u);
  const auto& example = database.as_sets.at("AS-EXAMPLE");
  EXPECT_EQ(example.asn_members.size(), 2u);
  EXPECT_EQ(example.set_members, (std::vector<std::string>{"AS-NESTED"}));
  EXPECT_TRUE(database.as_sets.contains("AS-NESTED"));  // name upper-cased
}

TEST(Irr, MalformedLinesThrow) {
  std::stringstream bad_route("route: banana/24\n");
  EXPECT_THROW((void)parse_irr(bad_route), std::runtime_error);
  std::stringstream bad_origin(
      "route: 10.0.0.0/8\n"
      "origin: banana\n");
  EXPECT_THROW((void)parse_irr(bad_origin), std::runtime_error);
  std::stringstream no_origin("route: 10.0.0.0/8\n\n");
  EXPECT_THROW((void)parse_irr(no_origin), std::runtime_error);
}

TEST(Irr, WriteParseRoundTrip) {
  IrrDatabase database;
  database.routes.push_back({*Prefix::parse("192.0.2.0/24"), Asn(64500)});
  database.routes.push_back({*Prefix::parse("10.0.0.0/8"), Asn(64501)});
  AsSet set;
  set.name = "AS-EXAMPLE";
  set.asn_members = {Asn(1), Asn(2)};
  set.set_members = {"AS-OTHER"};
  database.as_sets.emplace(set.name, set);

  std::stringstream text;
  write_irr(database, text);
  const auto parsed = parse_irr(text);
  EXPECT_EQ(parsed.routes, database.routes);
  ASSERT_TRUE(parsed.as_sets.contains("AS-EXAMPLE"));
  EXPECT_EQ(parsed.as_sets.at("AS-EXAMPLE").asn_members, set.asn_members);
  EXPECT_EQ(parsed.as_sets.at("AS-EXAMPLE").set_members, set.set_members);
}

TEST(Irr, OriginTableLongestMatch) {
  IrrDatabase database;
  database.routes.push_back({*Prefix::parse("10.0.0.0/8"), Asn(8)});
  database.routes.push_back({*Prefix::parse("10.1.0.0/16"), Asn(16)});
  const auto table = origin_table(database);
  EXPECT_EQ(table.lookup_v4(0x0a010101)->origin, Asn(16));
  EXPECT_EQ(table.lookup_v4(0x0aff0000)->origin, Asn(8));
}

TEST(Irr, OriginTableConflictsResolveToLowestAsn) {
  IrrDatabase database;
  database.routes.push_back({*Prefix::parse("10.0.0.0/8"), Asn(900)});
  database.routes.push_back({*Prefix::parse("10.0.0.0/8"), Asn(100)});
  database.routes.push_back({*Prefix::parse("10.0.0.0/8"), Asn(500)});
  const auto table = origin_table(database);
  EXPECT_EQ(table.exact(*Prefix::parse("10.0.0.0/8")), Asn(100));
}

TEST(Irr, ExpandAsSetRecursively) {
  std::stringstream text(
      "as-set: AS-TOP\n"
      "members: AS1, AS-MID\n"
      "\n"
      "as-set: AS-MID\n"
      "members: AS2, AS-TOP, AS-UNKNOWN\n");  // cycle + unknown member
  const auto database = parse_irr(text);
  const auto members = expand_as_set(database, "as-top");  // case-insensitive
  EXPECT_EQ(members, (std::vector<Asn>{Asn(1), Asn(2)}));
  EXPECT_TRUE(expand_as_set(database, "AS-NOPE").empty());
}

TEST(Irr, ValidateOrigins) {
  IrrDatabase database;
  database.routes.push_back({*Prefix::parse("10.0.0.0/8"), Asn(8)});
  database.routes.push_back({*Prefix::parse("192.0.2.0/24"), Asn(24)});
  const auto table = origin_table(database);

  const std::vector<std::pair<Prefix, Asn>> observed{
      {*Prefix::parse("10.1.0.0/16"), Asn(8)},    // covered, matches
      {*Prefix::parse("192.0.2.0/24"), Asn(99)},  // covered, mismatch
      {*Prefix::parse("172.16.0.0/12"), Asn(5)},  // uncovered
  };
  const auto result = validate_origins(table, observed);
  EXPECT_EQ(result.checked, 2u);
  EXPECT_EQ(result.matched, 1u);
  EXPECT_EQ(result.uncovered, 1u);
  EXPECT_DOUBLE_EQ(result.match_rate(), 0.5);
}

}  // namespace
}  // namespace asrank::validation
