#include <gtest/gtest.h>

#include <sstream>

#include "mrt/table_dump_v1.h"
#include "mrt/table_dump_v2.h"

namespace asrank::mrt {
namespace {

TableDumpV1Entry sample_entry() {
  TableDumpV1Entry entry;
  entry.timestamp = 978307200;  // 2001, Gao-era
  entry.prefix = *Prefix::parse("192.0.2.0/24");
  entry.originated_time = 978300000;
  entry.peer_ip = 0xc0000201;
  entry.peer_as = Asn(701);
  entry.attrs.origin = Origin::kIgp;
  entry.attrs.as_path = AsPath{701, 1239, 3356};
  entry.attrs.next_hop = 0xc0000202;
  return entry;
}

TEST(TableDumpV1, RoundTrip) {
  const auto entry = sample_entry();
  std::stringstream stream;
  write_table_dump_v1(entry, stream);
  const auto parsed = read_table_dump_v1(stream);
  ASSERT_EQ(parsed.size(), 1u);
  EXPECT_EQ(parsed[0], entry);
}

TEST(TableDumpV1, MultipleRecords) {
  std::stringstream stream;
  for (std::uint32_t i = 1; i <= 10; ++i) {
    auto entry = sample_entry();
    entry.prefix = Prefix::v4(i << 16, 16);
    entry.attrs.as_path = AsPath{701, i};
    write_table_dump_v1(entry, stream, /*view=*/0, /*sequence=*/static_cast<std::uint16_t>(i));
  }
  const auto parsed = read_table_dump_v1(stream);
  ASSERT_EQ(parsed.size(), 10u);
  EXPECT_EQ(parsed[9].attrs.as_path.last(), Asn(10));
}

TEST(TableDumpV1, Rejects32BitAsns) {
  auto entry = sample_entry();
  entry.peer_as = Asn(100000);
  std::stringstream stream;
  EXPECT_THROW(write_table_dump_v1(entry, stream), std::invalid_argument);

  entry = sample_entry();
  entry.attrs.as_path = AsPath{701, 100000};
  EXPECT_THROW(write_table_dump_v1(entry, stream), std::invalid_argument);
}

TEST(TableDumpV1, RejectsIpv6) {
  auto entry = sample_entry();
  entry.prefix = *Prefix::parse("2001:db8::/32");
  std::stringstream stream;
  EXPECT_THROW(write_table_dump_v1(entry, stream), std::invalid_argument);
}

TEST(TableDumpV1, SkipsForeignRecordTypes) {
  std::stringstream stream;
  RibDump v2;
  v2.peers.push_back(PeerEntry{1, 1, Asn(1)});
  write_table_dump_v2(v2, stream);
  write_table_dump_v1(sample_entry(), stream);
  const auto parsed = read_table_dump_v1(stream);
  EXPECT_EQ(parsed.size(), 1u);
}

TEST(TableDumpV1, TruncationThrows) {
  std::stringstream stream;
  write_table_dump_v1(sample_entry(), stream);
  std::string bytes = stream.str();
  bytes.resize(bytes.size() - 3);
  std::stringstream truncated(bytes);
  EXPECT_THROW((void)read_table_dump_v1(truncated), DecodeError);
}

TEST(TableDumpV1, NoNextHopRoundTrips) {
  auto entry = sample_entry();
  entry.attrs.next_hop.reset();
  std::stringstream stream;
  write_table_dump_v1(entry, stream);
  const auto parsed = read_table_dump_v1(stream);
  ASSERT_EQ(parsed.size(), 1u);
  EXPECT_FALSE(parsed[0].attrs.next_hop);
}

}  // namespace
}  // namespace asrank::mrt
