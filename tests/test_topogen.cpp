#include <gtest/gtest.h>

#include <set>
#include <sstream>

#include "topogen/topogen.h"
#include "topology/serialization.h"

namespace asrank::topogen {
namespace {

// Shared fixture data: generating medium-size topologies repeatedly would
// dominate test time, so presets are generated once.
const GroundTruth& small_truth() {
  static const GroundTruth truth = generate(GenParams::preset("small"));
  return truth;
}

TEST(Topogen, PresetSizes) {
  EXPECT_EQ(GenParams::preset("tiny").total_ases, 60u);
  EXPECT_EQ(GenParams::preset("small").total_ases, 300u);
  EXPECT_EQ(GenParams::preset("medium").total_ases, 2000u);
  EXPECT_EQ(GenParams::preset("large").total_ases, 10000u);
  EXPECT_THROW((void)GenParams::preset("nope"), std::invalid_argument);
}

TEST(Topogen, RejectsDegenerateParams) {
  GenParams p;
  p.clique_size = 1;
  EXPECT_THROW((void)generate(p), std::invalid_argument);
  GenParams q;
  q.total_ases = 5;
  q.clique_size = 4;
  EXPECT_THROW((void)generate(q), std::invalid_argument);
}

TEST(Topogen, GeneratesRequestedAsCount) {
  const auto& truth = small_truth();
  EXPECT_EQ(truth.graph.as_count(), 300u);
  EXPECT_EQ(truth.tiers.size(), 300u);
}

TEST(Topogen, CliqueIsFullPeeringMesh) {
  const auto& truth = small_truth();
  ASSERT_GE(truth.clique.size(), 2u);
  for (std::size_t i = 0; i < truth.clique.size(); ++i) {
    for (std::size_t j = i + 1; j < truth.clique.size(); ++j) {
      EXPECT_EQ(truth.graph.view(truth.clique[i], truth.clique[j]), RelView::kPeer);
    }
  }
}

TEST(Topogen, CliqueMembersAreProviderFree) {
  const auto& truth = small_truth();
  for (const Asn member : truth.clique) {
    EXPECT_TRUE(truth.graph.providers(member).empty()) << member.value();
    EXPECT_EQ(truth.tiers.at(member), Tier::kClique);
  }
}

TEST(Topogen, EveryNonCliqueAsHasProvider) {
  const auto& truth = small_truth();
  for (const auto& [as, tier] : truth.tiers) {
    if (tier == Tier::kClique) continue;
    EXPECT_FALSE(truth.graph.providers(as).empty()) << "AS" << as.value();
  }
}

TEST(Topogen, ProviderGraphIsAcyclic) {
  EXPECT_TRUE(small_truth().graph.p2c_acyclic());
}

TEST(Topogen, ProvidersComeFromHigherTiers) {
  const auto& truth = small_truth();
  for (const auto& [as, tier] : truth.tiers) {
    for (const Asn provider : truth.graph.providers(as)) {
      EXPECT_LE(static_cast<int>(truth.tiers.at(provider)), static_cast<int>(tier))
          << "AS" << as.value() << " provider AS" << provider.value();
    }
  }
}

TEST(Topogen, EveryAsOriginatesAtLeastOnePrefix) {
  const auto& truth = small_truth();
  EXPECT_EQ(truth.originated.size(), truth.graph.as_count());
  for (const auto& [as, prefixes] : truth.originated) {
    EXPECT_FALSE(prefixes.empty()) << "AS" << as.value();
  }
}

TEST(Topogen, PrefixesAreGloballyUnique) {
  const auto& truth = small_truth();
  std::set<Prefix> seen;
  for (const auto& [as, prefixes] : truth.originated) {
    for (const Prefix& p : prefixes) {
      EXPECT_TRUE(seen.insert(p).second) << "duplicate " << p.str();
    }
  }
  EXPECT_EQ(seen.size(), truth.prefix_count());
}

TEST(Topogen, NoReservedAsns) {
  const auto& truth = small_truth();
  for (const Asn as : truth.graph.ases()) EXPECT_FALSE(as.reserved());
  for (const Asn rs : truth.ixp_asns) EXPECT_FALSE(rs.reserved());
}

TEST(Topogen, IxpRouteServersAreNotGraphNodes) {
  const auto& truth = small_truth();
  for (const Asn rs : truth.ixp_asns) EXPECT_FALSE(truth.graph.has_as(rs));
  EXPECT_EQ(truth.ixps.size(), GenParams::preset("small").ixp_count);
}

TEST(Topogen, IxpLinksAreRealPeerings) {
  const auto& truth = small_truth();
  EXPECT_FALSE(truth.ixp_links.empty());
  for (const auto& [key, route_server] : truth.ixp_links) {
    EXPECT_TRUE(truth.ixp_asns.contains(route_server));
  }
}

TEST(Topogen, SiblingGroupsAreMeshed) {
  const auto& truth = small_truth();
  for (const auto& group : truth.sibling_groups) {
    ASSERT_GE(group.size(), 2u);
    for (std::size_t i = 0; i < group.size(); ++i) {
      for (std::size_t j = i + 1; j < group.size(); ++j) {
        EXPECT_EQ(truth.graph.view(group[i], group[j]), RelView::kSibling);
      }
    }
  }
}

TEST(Topogen, DeterministicForSameSeed) {
  const auto a = generate(GenParams::preset("tiny"));
  const auto b = generate(GenParams::preset("tiny"));
  std::stringstream sa, sb;
  write_as_rel(a.graph, sa);
  write_as_rel(b.graph, sb);
  EXPECT_EQ(sa.str(), sb.str());
  EXPECT_EQ(a.clique, b.clique);
}

TEST(Topogen, SeedChangesTopology) {
  auto params = GenParams::preset("tiny");
  const auto a = generate(params);
  params.seed = 777;
  const auto b = generate(params);
  std::stringstream sa, sb;
  write_as_rel(a.graph, sa);
  write_as_rel(b.graph, sb);
  EXPECT_NE(sa.str(), sb.str());
}

TEST(Topogen, ContentStubsAreStubsWithPeers) {
  const auto& truth = small_truth();
  for (const Asn as : truth.content_stubs) {
    EXPECT_EQ(truth.tiers.at(as), Tier::kStub);
  }
}

// Parameterized invariants across presets and seeds.
class TopogenInvariants
    : public ::testing::TestWithParam<std::tuple<const char*, std::uint64_t>> {};

TEST_P(TopogenInvariants, HoldForPresetAndSeed) {
  auto params = GenParams::preset(std::get<0>(GetParam()));
  params.seed = std::get<1>(GetParam());
  const auto truth = generate(params);
  EXPECT_TRUE(truth.graph.p2c_acyclic());
  EXPECT_EQ(truth.clique.size(), params.clique_size);
  for (const auto& [as, tier] : truth.tiers) {
    if (tier != Tier::kClique) {
      EXPECT_FALSE(truth.graph.providers(as).empty());
    }
  }
  const auto counts = truth.graph.link_counts();
  EXPECT_GT(counts.p2c, 0u);
  EXPECT_GT(counts.p2p, 0u);
}

INSTANTIATE_TEST_SUITE_P(PresetsAndSeeds, TopogenInvariants,
                         ::testing::Combine(::testing::Values("tiny", "small"),
                                            ::testing::Values(1u, 42u, 1234u)));

// ------------------------------------------- adversarial scenarios -------

TEST(Topogen, AdversarialScenariosAreOffByDefault) {
  const auto& truth = small_truth();
  EXPECT_TRUE(truth.hybrid_links.empty());
  EXPECT_TRUE(truth.route_leakers.empty());
}

TEST(Topogen, HybridLinksKeepPeerGroundTruthLabels) {
  auto params = GenParams::preset("tiny");
  params.hybrid_link_fraction = 1.0;
  const auto truth = generate(params);
  ASSERT_FALSE(truth.hybrid_links.empty());
  for (const auto& link : truth.hybrid_links) {
    // The ground-truth label stays p2p — the hybrid half lives only in the
    // observation model, so algorithms are scored against the honest truth.
    EXPECT_EQ(truth.graph.view(link.provider, link.customer), RelView::kPeer);
    // The transit side is the structurally bigger endpoint, and clique-to-
    // clique peerings are never hybridized (the mesh is assumption A1).
    EXPECT_LE(static_cast<int>(truth.tiers.at(link.provider)),
              static_cast<int>(truth.tiers.at(link.customer)));
    EXPECT_FALSE(truth.tiers.at(link.provider) == Tier::kClique &&
                 truth.tiers.at(link.customer) == Tier::kClique);
  }
}

TEST(Topogen, RouteLeakersAreMultihomedEdgeAses) {
  auto params = GenParams::preset("tiny");
  params.route_leaker_fraction = 1.0;
  const auto truth = generate(params);
  ASSERT_FALSE(truth.route_leakers.empty());
  for (const Asn leaker : truth.route_leakers) {
    const auto tier = truth.tiers.at(leaker);
    EXPECT_TRUE(tier == Tier::kStub || tier == Tier::kRegional)
        << "AS" << leaker.value();
    // A leak needs a provider to leak to and a second route to leak.
    const auto providers = truth.graph.providers(leaker).size();
    EXPECT_GE(providers, 1u) << "AS" << leaker.value();
    EXPECT_GE(providers + truth.graph.peers(leaker).size(), 2u)
        << "AS" << leaker.value();
  }
}

TEST(Topogen, ScenariosAreDeterministicForSameSeed) {
  auto params = GenParams::preset("tiny");
  params.hybrid_link_fraction = 0.5;
  params.route_leaker_fraction = 0.5;
  const auto a = generate(params);
  const auto b = generate(params);
  EXPECT_EQ(a.hybrid_links, b.hybrid_links);
  EXPECT_EQ(a.route_leakers, b.route_leakers);
  EXPECT_FALSE(a.hybrid_links.empty());
  EXPECT_FALSE(a.route_leakers.empty());
}

// ------------------------------------------------------------- evolve -----

TEST(Evolve, AddsStubsAndPeerings) {
  auto truth = generate(GenParams::preset("tiny"));
  const auto before_ases = truth.graph.as_count();
  const auto before_links = truth.graph.link_count();
  util::Rng rng(99);
  EvolveParams params;
  params.new_stubs = 5;
  params.new_peerings = 4;
  evolve(truth, rng, params);
  EXPECT_EQ(truth.graph.as_count(), before_ases + 5);
  EXPECT_GT(truth.graph.link_count(), before_links);
}

TEST(Evolve, PreservesInvariants) {
  auto truth = generate(GenParams::preset("small"));
  util::Rng rng(7);
  for (int step = 0; step < 5; ++step) {
    evolve(truth, rng, EvolveParams{});
    EXPECT_TRUE(truth.graph.p2c_acyclic()) << "step " << step;
    for (const auto& [as, tier] : truth.tiers) {
      if (tier != Tier::kClique) {
        EXPECT_FALSE(truth.graph.providers(as).empty()) << "AS" << as.value();
      }
    }
  }
}

TEST(Evolve, NewStubsGetPrefixesAndTiers) {
  auto truth = generate(GenParams::preset("tiny"));
  util::Rng rng(5);
  EvolveParams params;
  params.new_stubs = 3;
  evolve(truth, rng, params);
  EXPECT_EQ(truth.originated.size(), truth.graph.as_count());
  EXPECT_EQ(truth.tiers.size(), truth.graph.as_count());
  std::set<Prefix> seen;
  for (const auto& [as, prefixes] : truth.originated) {
    for (const Prefix& p : prefixes) EXPECT_TRUE(seen.insert(p).second);
  }
}

}  // namespace
}  // namespace asrank::topogen
