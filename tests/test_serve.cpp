#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "core/cones.h"
#include "obs/metrics.h"
#include "serve/client.h"
#include "serve/protocol.h"
#include "serve/query_engine.h"
#include "serve/server.h"
#include "snapshot/snapshot.h"

namespace asrank::serve {
namespace {

// Same fixture as test_snapshot: clique {1,2}, 3 multihomed, chain to 4,
// peering 4-5, siblings 6-7.
AsGraph make_graph() {
  AsGraph graph;
  graph.add_p2p(Asn(1), Asn(2));
  graph.add_p2c(Asn(1), Asn(3));
  graph.add_p2c(Asn(2), Asn(3));
  graph.add_p2c(Asn(3), Asn(4));
  graph.add_p2c(Asn(1), Asn(5));
  graph.add_p2p(Asn(4), Asn(5));
  graph.add_p2c(Asn(2), Asn(6));
  graph.add_s2s(Asn(6), Asn(7));
  return graph;
}

snapshot::SnapshotIndex make_index() {
  const auto graph = make_graph();
  const std::unordered_map<Asn, std::size_t> tdeg = {
      {Asn(1), 3}, {Asn(2), 3}, {Asn(3), 2}};
  return snapshot::build_snapshot(graph, tdeg, core::recursive_cone(graph),
                                  {Asn(1), Asn(2)});
}

std::vector<Asn> asns(std::initializer_list<std::uint32_t> values) {
  std::vector<Asn> out;
  for (const auto v : values) out.emplace_back(v);
  return out;
}

// Every test engine gets its own obs::Registry: engines sharing a registry
// share metric series, so isolated registries keep the exact-count
// assertions below valid regardless of what other tests in this process do.
std::uint64_t stat_count(const QueryEngine& engine, QueryType type) {
  return engine.stats()[static_cast<std::size_t>(type)].count;
}

std::uint64_t stat_hits(const QueryEngine& engine, QueryType type) {
  return engine.stats()[static_cast<std::size_t>(type)].cache_hits;
}

// --------------------------------------------------------- query engine --

TEST(QueryEngine, DirectQueriesMatchIndex) {
  obs::Registry registry;
  QueryEngine engine(make_index(), 4096, &registry);
  EXPECT_EQ(engine.relationship(Asn(1), Asn(3)), RelView::kCustomer);
  EXPECT_EQ(engine.rank(Asn(1)), 1u);
  EXPECT_EQ(engine.rank(Asn(99)), std::nullopt);
  EXPECT_EQ(engine.cone_size(Asn(1)), 4u);
  EXPECT_TRUE(engine.in_cone(Asn(1), Asn(4)));
  EXPECT_FALSE(engine.in_cone(Asn(1), Asn(6)));
  EXPECT_EQ(engine.providers(Asn(3)), asns({1, 2}));
  EXPECT_EQ(engine.customers(Asn(1)), asns({3, 5}));
  EXPECT_EQ(engine.peers(Asn(4)), asns({5}));
  const auto top = engine.top(2);
  ASSERT_EQ(top.size(), 2u);
  EXPECT_EQ(top[0].as, Asn(1));
  EXPECT_EQ(top[1].as, Asn(2));
  EXPECT_EQ(stat_count(engine, QueryType::kRank), 2u);
  EXPECT_EQ(stat_count(engine, QueryType::kNeighborSet), 3u);
}

TEST(QueryEngine, ConeIntersectionIsCachedAndOrderInsensitive) {
  obs::Registry registry;
  QueryEngine engine(make_index(), 4096, &registry);
  const auto first = engine.cone_intersection(Asn(1), Asn(2));
  EXPECT_EQ(*first, asns({3, 4}));
  EXPECT_EQ(stat_hits(engine, QueryType::kConeIntersect), 0u);
  // Same pair again, both orders: served from cache.
  EXPECT_EQ(*engine.cone_intersection(Asn(1), Asn(2)), asns({3, 4}));
  EXPECT_EQ(*engine.cone_intersection(Asn(2), Asn(1)), asns({3, 4}));
  EXPECT_EQ(stat_hits(engine, QueryType::kConeIntersect), 2u);
  EXPECT_EQ(stat_count(engine, QueryType::kConeIntersect), 3u);
  // Disjoint cones intersect to nothing.
  EXPECT_TRUE(engine.cone_intersection(Asn(5), Asn(6))->empty());
}

TEST(QueryEngine, PathToCliqueIsDeterministicBfs) {
  obs::Registry registry;
  QueryEngine engine(make_index(), 4096, &registry);
  // 4's only provider chain is 4 -> 3 -> {1,2}; lowest-ASN tiebreak picks 1.
  EXPECT_EQ(*engine.path_to_clique(Asn(4)), asns({4, 3, 1}));
  // A clique member is its own path.
  EXPECT_EQ(*engine.path_to_clique(Asn(1)), asns({1}));
  // 7 has no providers at all (sibling link only).
  EXPECT_TRUE(engine.path_to_clique(Asn(7))->empty());
  // Unknown AS: empty, not a throw.
  EXPECT_TRUE(engine.path_to_clique(Asn(99))->empty());
  // Second identical query hits the cache.
  EXPECT_EQ(*engine.path_to_clique(Asn(4)), asns({4, 3, 1}));
  EXPECT_EQ(stat_hits(engine, QueryType::kPathToClique), 1u);
}

TEST(QueryEngine, LruEvictsLeastRecentlyUsed) {
  obs::Registry registry;
  QueryEngine engine(make_index(), /*cache_capacity=*/1, &registry);
  (void)engine.cone_intersection(Asn(1), Asn(2));
  (void)engine.cone_intersection(Asn(1), Asn(3));  // evicts (1,2)
  (void)engine.cone_intersection(Asn(1), Asn(2));  // recomputed
  EXPECT_EQ(stat_hits(engine, QueryType::kConeIntersect), 0u);
  (void)engine.cone_intersection(Asn(1), Asn(2));  // now cached again
  EXPECT_EQ(stat_hits(engine, QueryType::kConeIntersect), 1u);
}

TEST(QueryEngine, RenderStatsListsEveryQueryType) {
  obs::Registry registry;
  QueryEngine engine(make_index(), 4096, &registry);
  (void)engine.rank(Asn(1));
  const auto text = engine.render_stats();
  EXPECT_NE(text.find("rank"), std::string::npos);
  EXPECT_NE(text.find("cone_intersect"), std::string::npos);
}

TEST(QueryEngine, StatsWireFormatIsByteStable) {
  // The STATS response body is a wire format consumed by existing clients;
  // the registry-backed stats() must reproduce it byte for byte.
  obs::Registry registry;
  QueryEngine engine(make_index(), 4096, &registry);
  EXPECT_EQ(engine.render_stats(),
            "query_type count cache_hits avg_micros\n"
            "relationship 0 0 0\n"
            "rank 0 0 0\n"
            "cone_size 0 0 0\n"
            "cone 0 0 0\n"
            "in_cone 0 0 0\n"
            "neighbor_set 0 0 0\n"
            "top 0 0 0\n"
            "cone_intersect 0 0 0\n"
            "path_to_clique 0 0 0\n"
            "clique 0 0 0\n"
            "stats 0 0 0\n"
            "ping 0 0 0\n");
  (void)engine.rank(Asn(1));
  (void)engine.rank(Asn(2));
  const auto text = engine.render_stats();
  EXPECT_NE(text.find("\nrank 2 0 "), std::string::npos) << text;
}

TEST(QueryEngine, SnapshotIndexIsSharedNotCopied) {
  auto index =
      std::make_shared<const snapshot::SnapshotIndex>(make_index());
  obs::Registry registry_a;
  obs::Registry registry_b;
  QueryEngine a(index, 4096, &registry_a);
  QueryEngine b(index, 4096, &registry_b);
  EXPECT_EQ(a.index_ptr().get(), index.get());
  EXPECT_EQ(a.index_ptr().get(), b.index_ptr().get());
  EXPECT_EQ(a.rank(Asn(1)), b.rank(Asn(1)));
  // Metrics are per registry: a's query did not count against b.
  EXPECT_EQ(stat_count(a, QueryType::kRank), 1u);
  EXPECT_EQ(stat_count(b, QueryType::kRank), 1u);
}

TEST(QueryEngine, EnginesSharingARegistryShareSeries) {
  auto index =
      std::make_shared<const snapshot::SnapshotIndex>(make_index());
  obs::Registry registry;
  QueryEngine a(index, 4096, &registry);
  QueryEngine b(index, 4096, &registry);
  (void)a.rank(Asn(1));
  (void)b.rank(Asn(2));
  EXPECT_EQ(stat_count(a, QueryType::kRank), 2u);
  EXPECT_EQ(stat_count(b, QueryType::kRank), 2u);
}

// ------------------------------------------------- sans-socket handlers --

TEST(Handlers, TextCommands) {
  obs::Registry registry;
  QueryEngine engine(make_index(), 4096, &registry);
  EXPECT_EQ(handle_text_request(engine, "PING"), "OK pong");
  EXPECT_EQ(handle_text_request(engine, "rel 1 3"), "OK customer");
  EXPECT_EQ(handle_text_request(engine, "rel 3 1"), "OK provider");
  EXPECT_EQ(handle_text_request(engine, "rel 1 4"), "OK none");
  EXPECT_EQ(handle_text_request(engine, "rank 1"), "OK 1");
  EXPECT_EQ(handle_text_request(engine, "conesize 1"), "OK 4");
  EXPECT_EQ(handle_text_request(engine, "cone 3"), "OK 3 4");
  EXPECT_EQ(handle_text_request(engine, "incone 1 4"), "OK yes");
  EXPECT_EQ(handle_text_request(engine, "incone 1 6"), "OK no");
  EXPECT_EQ(handle_text_request(engine, "providers 3"), "OK 1 2");
  EXPECT_EQ(handle_text_request(engine, "intersect 1 2"), "OK 3 4");
  EXPECT_EQ(handle_text_request(engine, "cliquepath 4"), "OK 4 3 1");
  EXPECT_EQ(handle_text_request(engine, "clique"), "OK 1 2");
  EXPECT_TRUE(handle_text_request(engine, "stats").starts_with("OK\n"));
  EXPECT_TRUE(handle_text_request(engine, "stats").ends_with("."));
}

TEST(Handlers, MetricsTextCommandServesPrometheus) {
  obs::Registry registry;
  QueryEngine engine(make_index(), 4096, &registry);
  (void)engine.rank(Asn(1));
  const auto response = handle_text_request(engine, "metrics");
  EXPECT_TRUE(response.starts_with("OK\n")) << response;
  EXPECT_TRUE(response.ends_with(".")) << response;
  EXPECT_NE(response.find("# TYPE asrankd_query_latency_micros histogram"),
            std::string::npos);
  EXPECT_NE(response.find("asrankd_queries_total 1\n"), std::string::npos);
  EXPECT_NE(response.find("asrankd_metrics_requests_total"), std::string::npos);
}

TEST(Handlers, MetricsOpcodeServesPrometheus) {
  obs::Registry registry;
  QueryEngine engine(make_index(), 4096, &registry);
  (void)engine.rank(Asn(1));
  const auto response = handle_binary_request(
      engine, std::vector<std::uint8_t>{static_cast<std::uint8_t>(Op::kMetrics)});
  ASSERT_FALSE(response.empty());
  EXPECT_EQ(response[0], static_cast<std::uint8_t>(Status::kOk));
  const std::string body(response.begin() + 1, response.end());
  EXPECT_NE(
      body.find("asrankd_query_latency_micros_count{type=\"rank\"} 1\n"),
      std::string::npos);
  EXPECT_NE(body.find("asrankd_query_latency_micros_bucket{type=\"rank\",le=\"+Inf\"} 1\n"),
            std::string::npos);
}

TEST(Handlers, TextErrorsNameTheProblem) {
  obs::Registry registry;
  QueryEngine engine(make_index(), 4096, &registry);
  EXPECT_EQ(handle_text_request(engine, "rel 1"), "ERR usage: REL <asn> <asn>");
  EXPECT_EQ(handle_text_request(engine, "rank notanasn"),
            "ERR usage: RANK <asn>");
  const auto unknown = handle_text_request(engine, "frobnicate 1");
  EXPECT_TRUE(unknown.starts_with("ERR unknown command 'frobnicate'")) << unknown;
  EXPECT_TRUE(handle_text_request(engine, "   ").starts_with("ERR"));
}

TEST(Handlers, BinaryRejectsMalformedRequests) {
  obs::Registry registry;
  QueryEngine engine(make_index(), 4096, &registry);
  // Unknown opcode.
  auto response = handle_binary_request(engine, std::vector<std::uint8_t>{0x7F});
  ASSERT_FALSE(response.empty());
  EXPECT_EQ(response[0], static_cast<std::uint8_t>(Status::kError));
  // Truncated operand (kRank wants a u32).
  response = handle_binary_request(
      engine, std::vector<std::uint8_t>{static_cast<std::uint8_t>(Op::kRank), 1});
  EXPECT_EQ(response[0], static_cast<std::uint8_t>(Status::kError));
  // Trailing junk after a complete request.
  response = handle_binary_request(
      engine, std::vector<std::uint8_t>{static_cast<std::uint8_t>(Op::kPing), 0});
  EXPECT_EQ(response[0], static_cast<std::uint8_t>(Status::kError));
  // Empty payload.
  response = handle_binary_request(engine, std::vector<std::uint8_t>{});
  EXPECT_EQ(response[0], static_cast<std::uint8_t>(Status::kError));
}

// --------------------------------------------------------- socket serve --

class ServeFixture : public testing::Test {
 protected:
  ServeFixture()
      : engine_(make_index(), 4096, &registry_), server_(engine_, config()) {
    thread_ = std::thread([this] { server_.run(); });
  }

  ~ServeFixture() override {
    server_.stop();
    thread_.join();
  }

  static ServerConfig config() {
    ServerConfig config;
    config.port = 0;  // ephemeral
    config.threads = 2;
    return config;
  }

  obs::Registry registry_;  ///< must outlive engine_ (declared first)
  QueryEngine engine_;
  Server server_;
  std::thread thread_;
};

TEST_F(ServeFixture, SocketAnswersMatchBatchComputation) {
  Client client("127.0.0.1", server_.port());
  const auto graph = make_graph();
  const auto cones = core::recursive_cone(graph);

  client.ping();
  for (const Asn as : graph.ases()) {
    EXPECT_EQ(client.cone(as), cones.at(as));
    EXPECT_EQ(client.cone_size(as), cones.at(as).size());
    std::vector<Asn> providers(graph.providers(as).begin(),
                               graph.providers(as).end());
    std::sort(providers.begin(), providers.end());
    EXPECT_EQ(client.providers(as), providers);
    for (const Asn other : graph.ases()) {
      EXPECT_EQ(client.relationship(as, other), graph.view(as, other));
    }
  }
  EXPECT_EQ(client.clique(), asns({1, 2}));
  EXPECT_EQ(client.rank(Asn(1)), 1u);
  EXPECT_EQ(client.rank(Asn(99)), std::nullopt);
  EXPECT_EQ(client.cone_intersection(Asn(1), Asn(2)), asns({3, 4}));
  EXPECT_EQ(client.path_to_clique(Asn(4)), asns({4, 3, 1}));
  EXPECT_TRUE(client.in_cone(Asn(1), Asn(4)));

  const auto top = client.top(3);
  ASSERT_EQ(top.size(), 3u);
  EXPECT_EQ(top[0].as, Asn(1));
  EXPECT_EQ(top[0].cone_size, 4u);

  const auto stats = client.stats_text();
  EXPECT_NE(stats.find("relationship"), std::string::npos);
}

TEST_F(ServeFixture, ConcurrentClientsAreServed) {
  std::vector<std::thread> workers;
  std::atomic<int> failures{0};
  for (int w = 0; w < 4; ++w) {
    workers.emplace_back([this, &failures] {
      try {
        Client client("127.0.0.1", server_.port());
        for (int i = 0; i < 25; ++i) {
          if (client.cone_size(Asn(1)) != 4) ++failures;
          if (client.rank(Asn(2)) != 2u) ++failures;
        }
      } catch (const std::exception&) {
        ++failures;
      }
    });
  }
  for (auto& worker : workers) worker.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_GE(server_.connections_served(), 4u);
}

TEST_F(ServeFixture, TextModeOverSocket) {
  // Raw socket speaking the nc-style text protocol.
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(server_.port());
  ASSERT_EQ(::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr), 1);
  ASSERT_EQ(::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr), 0);

  const std::string request = "rank 1\nquit\n";
  write_all(fd, request.data(), request.size());
  std::string response;
  char c = 0;
  while (read_exact(fd, &c, 1)) response.push_back(c);  // until server closes
  ::close(fd);
  EXPECT_EQ(response, "OK 1\n");
}

TEST_F(ServeFixture, MetricsScrapeOverSocket) {
  Client client("127.0.0.1", server_.port());
  (void)client.rank(Asn(1));
  (void)client.rank(Asn(2));
  const auto text = client.metrics_text();
  // Valid Prometheus exposition with per-query-type latency histograms and
  // the daemon's own connection/frame counters.
  EXPECT_NE(text.find("# TYPE asrankd_query_latency_micros histogram\n"),
            std::string::npos);
  EXPECT_NE(text.find("asrankd_query_latency_micros_count{type=\"rank\"} 2\n"),
            std::string::npos);
  EXPECT_NE(text.find("asrankd_queries_total 2\n"), std::string::npos);
  EXPECT_NE(text.find("asrankd_connections_total 1\n"), std::string::npos);
  EXPECT_NE(text.find("asrankd_frames_total"), std::string::npos);
  EXPECT_NE(text.find("asrankd_metrics_requests_total 1\n"), std::string::npos);
}

TEST(Server, StopBeforeRunReturnsImmediately) {
  obs::Registry registry;
  QueryEngine engine(make_index(), 4096, &registry);
  ServerConfig config;
  config.port = 0;
  config.threads = 1;
  Server server(engine, config);
  server.stop();
  server.run();  // must observe the queued stop and return
  EXPECT_EQ(server.connections_served(), 0u);
}

TEST(Server, GracefulShutdownWithIdleClientConnected) {
  obs::Registry registry;
  QueryEngine engine(make_index(), 4096, &registry);
  ServerConfig config;
  config.port = 0;
  config.threads = 1;
  Server server(engine, config);
  std::thread thread([&server] { server.run(); });
  {
    // An idle keep-alive connection must not wedge shutdown.
    Client idle("127.0.0.1", server.port());
    idle.ping();
    server.stop();
    thread.join();
  }
  EXPECT_EQ(server.connections_served(), 1u);
}

TEST(Server, RejectsBadListenAddress) {
  obs::Registry registry;
  QueryEngine engine(make_index(), 4096, &registry);
  ServerConfig config;
  config.host = "not-an-address";
  EXPECT_THROW((Server{engine, config}), ProtocolError);
}

}  // namespace
}  // namespace asrank::serve
