#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <csignal>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <fstream>
#include <optional>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/cones.h"
#include "obs/metrics.h"
#include "serve/client.h"
#include "serve/protocol.h"
#include "serve/query_engine.h"
#include "serve/server.h"
#include "serve/snapshot_registry.h"
#include "snapshot/snapshot.h"
#include "util/rng.h"

namespace asrank::serve {
namespace {

// Same fixture as test_snapshot: clique {1,2}, 3 multihomed, chain to 4,
// peering 4-5, siblings 6-7.
AsGraph make_graph() {
  AsGraph graph;
  graph.add_p2p(Asn(1), Asn(2));
  graph.add_p2c(Asn(1), Asn(3));
  graph.add_p2c(Asn(2), Asn(3));
  graph.add_p2c(Asn(3), Asn(4));
  graph.add_p2c(Asn(1), Asn(5));
  graph.add_p2p(Asn(4), Asn(5));
  graph.add_p2c(Asn(2), Asn(6));
  graph.add_s2s(Asn(6), Asn(7));
  return graph;
}

snapshot::SnapshotIndex make_index() {
  const auto graph = make_graph();
  const std::unordered_map<Asn, std::size_t> tdeg = {
      {Asn(1), 3}, {Asn(2), 3}, {Asn(3), 2}};
  return snapshot::build_snapshot(graph, tdeg, core::recursive_cone(graph),
                                  {Asn(1), Asn(2)});
}

// A second epoch: 4 and 5 are gone, 8 appeared under 3.  cone(1) shifts from
// {1,3,4,5} to {1,3,8}, which the CONE_DIFF tests below rely on.
snapshot::SnapshotIndex make_index_b() {
  AsGraph graph;
  graph.add_p2p(Asn(1), Asn(2));
  graph.add_p2c(Asn(1), Asn(3));
  graph.add_p2c(Asn(2), Asn(3));
  graph.add_p2c(Asn(3), Asn(8));
  graph.add_p2c(Asn(2), Asn(6));
  graph.add_s2s(Asn(6), Asn(7));
  const std::unordered_map<Asn, std::size_t> tdeg = {
      {Asn(1), 2}, {Asn(2), 2}, {Asn(3), 1}};
  return snapshot::build_snapshot(graph, tdeg, core::recursive_cone(graph),
                                  {Asn(1), Asn(2)});
}

// A second algorithm's view of the seed topology: 1->5 is gone and the 4-5
// peering is inverted into 5->4 transit, so the two sections disagree on
// exactly two links — (1,5) customer/none and (4,5) peer/provider — and
// cone(1) shrinks from {1,3,4,5} to {1,3,4}.
snapshot::SnapshotIndex make_variant_index() {
  AsGraph graph;
  graph.add_p2p(Asn(1), Asn(2));
  graph.add_p2c(Asn(1), Asn(3));
  graph.add_p2c(Asn(2), Asn(3));
  graph.add_p2c(Asn(3), Asn(4));
  graph.add_p2c(Asn(5), Asn(4));
  graph.add_p2c(Asn(2), Asn(6));
  graph.add_s2s(Asn(6), Asn(7));
  const std::unordered_map<Asn, std::size_t> tdeg = {
      {Asn(1), 3}, {Asn(2), 3}, {Asn(3), 2}};
  return snapshot::build_snapshot(graph, tdeg, core::recursive_cone(graph),
                                  {Asn(1), Asn(2)});
}

// Two algorithm sections in one snapshot: asrank primary, gao2001 extra.
snapshot::SnapshotIndex make_multi_index() {
  std::vector<std::pair<std::string, snapshot::SnapshotIndex>> parts;
  parts.emplace_back("asrank", make_index());
  parts.emplace_back("gao2001", make_variant_index());
  auto combined = snapshot::combine_snapshots(std::move(parts));
  EXPECT_TRUE(combined.ok());
  return std::move(combined).value();
}

std::vector<Asn> asns(std::initializer_list<std::uint32_t> values) {
  std::vector<Asn> out;
  for (const auto v : values) out.emplace_back(v);
  return out;
}

// Every test rig gets its own obs::Registry: engines sharing a registry
// share metric series, so isolated registries keep the exact-count
// assertions below valid regardless of what other tests in this process do.
std::uint64_t stat_count(const QueryEngine& engine, QueryType type) {
  return engine.stats()[static_cast<std::size_t>(type)].count;
}

std::uint64_t stat_hits(const QueryEngine& engine, QueryType type) {
  return engine.stats()[static_cast<std::size_t>(type)].cache_hits;
}

// A metrics registry plus a SnapshotRegistry with one installed epoch —
// the minimum serving state the handlers need.
struct ServeRig {
  explicit ServeRig(std::size_t retention = 4) {
    SnapshotRegistryConfig config;
    config.retention = retention;
    snapshots.emplace(config, &metrics);
    EXPECT_TRUE(snapshots->install("seed", make_index()).ok());
  }

  obs::Registry metrics;
  std::optional<SnapshotRegistry> snapshots;
};

// --------------------------------------------------------- query engine --

TEST(QueryEngine, DirectQueriesMatchIndex) {
  obs::Registry registry;
  QueryEngine engine(make_index(), 4096, &registry);
  EXPECT_EQ(engine.relationship(Asn(1), Asn(3)), RelView::kCustomer);
  EXPECT_EQ(engine.rank(Asn(1)), 1u);
  EXPECT_EQ(engine.rank(Asn(99)), std::nullopt);
  EXPECT_EQ(engine.cone_size(Asn(1)), 4u);
  EXPECT_TRUE(engine.in_cone(Asn(1), Asn(4)));
  EXPECT_FALSE(engine.in_cone(Asn(1), Asn(6)));
  EXPECT_EQ(engine.providers(Asn(3)), asns({1, 2}));
  EXPECT_EQ(engine.customers(Asn(1)), asns({3, 5}));
  EXPECT_EQ(engine.peers(Asn(4)), asns({5}));
  const auto top = engine.top(2);
  ASSERT_EQ(top.size(), 2u);
  EXPECT_EQ(top[0].as, Asn(1));
  EXPECT_EQ(top[1].as, Asn(2));
  EXPECT_EQ(stat_count(engine, QueryType::kRank), 2u);
  EXPECT_EQ(stat_count(engine, QueryType::kNeighborSet), 3u);
}

TEST(QueryEngine, ConeIntersectionIsCachedAndOrderInsensitive) {
  obs::Registry registry;
  QueryEngine engine(make_index(), 4096, &registry);
  const auto first = engine.cone_intersection(Asn(1), Asn(2));
  EXPECT_EQ(*first, asns({3, 4}));
  EXPECT_EQ(stat_hits(engine, QueryType::kConeIntersect), 0u);
  // Same pair again, both orders: served from cache.
  EXPECT_EQ(*engine.cone_intersection(Asn(1), Asn(2)), asns({3, 4}));
  EXPECT_EQ(*engine.cone_intersection(Asn(2), Asn(1)), asns({3, 4}));
  EXPECT_EQ(stat_hits(engine, QueryType::kConeIntersect), 2u);
  EXPECT_EQ(stat_count(engine, QueryType::kConeIntersect), 3u);
  // Disjoint cones intersect to nothing.
  EXPECT_TRUE(engine.cone_intersection(Asn(5), Asn(6))->empty());
}

TEST(QueryEngine, PathToCliqueIsDeterministicBfs) {
  obs::Registry registry;
  QueryEngine engine(make_index(), 4096, &registry);
  // 4's only provider chain is 4 -> 3 -> {1,2}; lowest-ASN tiebreak picks 1.
  EXPECT_EQ(*engine.path_to_clique(Asn(4)), asns({4, 3, 1}));
  // A clique member is its own path.
  EXPECT_EQ(*engine.path_to_clique(Asn(1)), asns({1}));
  // 7 has no providers at all (sibling link only).
  EXPECT_TRUE(engine.path_to_clique(Asn(7))->empty());
  // Unknown AS: empty, not a throw.
  EXPECT_TRUE(engine.path_to_clique(Asn(99))->empty());
  // Second identical query hits the cache.
  EXPECT_EQ(*engine.path_to_clique(Asn(4)), asns({4, 3, 1}));
  EXPECT_EQ(stat_hits(engine, QueryType::kPathToClique), 1u);
}

TEST(QueryEngine, LruEvictsLeastRecentlyUsed) {
  obs::Registry registry;
  QueryEngine engine(make_index(), /*cache_capacity=*/1, &registry);
  (void)engine.cone_intersection(Asn(1), Asn(2));
  (void)engine.cone_intersection(Asn(1), Asn(3));  // evicts (1,2)
  (void)engine.cone_intersection(Asn(1), Asn(2));  // recomputed
  EXPECT_EQ(stat_hits(engine, QueryType::kConeIntersect), 0u);
  (void)engine.cone_intersection(Asn(1), Asn(2));  // now cached again
  EXPECT_EQ(stat_hits(engine, QueryType::kConeIntersect), 1u);
}

TEST(QueryEngine, RenderStatsListsEveryQueryType) {
  obs::Registry registry;
  QueryEngine engine(make_index(), 4096, &registry);
  (void)engine.rank(Asn(1));
  const auto text = engine.render_stats();
  EXPECT_NE(text.find("rank"), std::string::npos);
  EXPECT_NE(text.find("cone_intersect"), std::string::npos);
}

TEST(QueryEngine, StatsWireFormatIsByteStable) {
  // The STATS response body is a wire format consumed by existing clients;
  // the registry-backed stats() must reproduce it byte for byte.
  obs::Registry registry;
  QueryEngine engine(make_index(), 4096, &registry);
  EXPECT_EQ(engine.render_stats(),
            "query_type count cache_hits avg_micros\n"
            "relationship 0 0 0\n"
            "rank 0 0 0\n"
            "cone_size 0 0 0\n"
            "cone 0 0 0\n"
            "in_cone 0 0 0\n"
            "neighbor_set 0 0 0\n"
            "top 0 0 0\n"
            "cone_intersect 0 0 0\n"
            "path_to_clique 0 0 0\n"
            "clique 0 0 0\n"
            "stats 0 0 0\n"
            "ping 0 0 0\n");
  (void)engine.rank(Asn(1));
  (void)engine.rank(Asn(2));
  const auto text = engine.render_stats();
  EXPECT_NE(text.find("\nrank 2 0 "), std::string::npos) << text;
}

TEST(QueryEngine, SnapshotIndexIsSharedNotCopied) {
  auto index =
      std::make_shared<const snapshot::SnapshotIndex>(make_index());
  obs::Registry registry_a;
  obs::Registry registry_b;
  QueryEngine a(index, 4096, &registry_a);
  QueryEngine b(index, 4096, &registry_b);
  EXPECT_EQ(a.index_ptr().get(), index.get());
  EXPECT_EQ(a.index_ptr().get(), b.index_ptr().get());
  EXPECT_EQ(a.rank(Asn(1)), b.rank(Asn(1)));
  // Metrics are per registry: a's query did not count against b.
  EXPECT_EQ(stat_count(a, QueryType::kRank), 1u);
  EXPECT_EQ(stat_count(b, QueryType::kRank), 1u);
}

TEST(QueryEngine, EnginesSharingARegistryShareSeries) {
  auto index =
      std::make_shared<const snapshot::SnapshotIndex>(make_index());
  obs::Registry registry;
  QueryEngine a(index, 4096, &registry);
  QueryEngine b(index, 4096, &registry);
  (void)a.rank(Asn(1));
  (void)b.rank(Asn(2));
  EXPECT_EQ(stat_count(a, QueryType::kRank), 2u);
  EXPECT_EQ(stat_count(b, QueryType::kRank), 2u);
}

// ------------------------------------------------------ snapshot registry --

TEST(SnapshotRegistry, InstallLookupAndEpochOrder) {
  obs::Registry metrics;
  SnapshotRegistry snapshots({}, &metrics);
  EXPECT_EQ(snapshots.current(), nullptr);
  EXPECT_EQ(snapshots.current_label(), "");
  EXPECT_EQ(snapshots.epoch_count(), 0u);

  ASSERT_TRUE(snapshots.install("a", make_index()).ok());
  ASSERT_NE(snapshots.current(), nullptr);
  EXPECT_EQ(snapshots.current_label(), "a");
  EXPECT_EQ(snapshots.epoch("a"), snapshots.current());
  EXPECT_EQ(snapshots.epoch("zzz"), nullptr);
  EXPECT_EQ(snapshots.reloads(), 0u);  // the first install is not a reload

  ASSERT_TRUE(snapshots.install("b", make_index_b()).ok());
  EXPECT_EQ(snapshots.current_label(), "b");
  EXPECT_EQ(snapshots.epochs(), (std::vector<std::string>{"b", "a"}));
  EXPECT_EQ(snapshots.reloads(), 1u);
  // The superseded epoch stays queryable.
  EXPECT_EQ(snapshots.epoch("a")->cone_size(Asn(1)), 4u);
  EXPECT_EQ(snapshots.current()->cone_size(Asn(1)), 3u);
}

TEST(SnapshotRegistry, ReinstallingALabelReplacesThatEpoch) {
  obs::Registry metrics;
  SnapshotRegistry snapshots({}, &metrics);
  ASSERT_TRUE(snapshots.install("cur", make_index()).ok());
  ASSERT_TRUE(snapshots.install("cur", make_index_b()).ok());
  EXPECT_EQ(snapshots.epoch_count(), 1u);
  EXPECT_EQ(snapshots.current()->cone_size(Asn(1)), 3u);
  EXPECT_EQ(snapshots.reloads(), 1u);
}

TEST(SnapshotRegistry, RetentionEvictsLeastRecentlyQueriedEpoch) {
  obs::Registry metrics;
  SnapshotRegistryConfig config;
  config.retention = 2;
  SnapshotRegistry snapshots(config, &metrics);
  ASSERT_TRUE(snapshots.install("a", make_index()).ok());
  ASSERT_TRUE(snapshots.install("b", make_index()).ok());
  // Touch "a" so "b" becomes the least-recently-queried non-current epoch.
  ASSERT_NE(snapshots.epoch("a"), nullptr);
  ASSERT_TRUE(snapshots.install("c", make_index()).ok());
  EXPECT_EQ(snapshots.epochs(), (std::vector<std::string>{"c", "a"}));
  EXPECT_EQ(snapshots.epoch("b"), nullptr);
}

TEST(SnapshotRegistry, InvalidLabelIsRejectedWithoutSideEffects) {
  obs::Registry metrics;
  SnapshotRegistry snapshots({}, &metrics);
  ASSERT_TRUE(snapshots.install("good", make_index()).ok());
  auto rejected = snapshots.install("bad label!", make_index());
  ASSERT_FALSE(rejected.ok());
  EXPECT_EQ(rejected.error().code, ErrorCode::kInvalidArgument);
  EXPECT_EQ(snapshots.current_label(), "good");
  EXPECT_EQ(snapshots.epoch_count(), 1u);
  EXPECT_EQ(snapshots.reload_failures(), 1u);
  EXPECT_EQ(snapshots.reloads(), 0u);
}

TEST(SnapshotRegistry, FailedLoadLeavesServingStateUntouched) {
  obs::Registry metrics;
  SnapshotRegistry snapshots({}, &metrics);
  ASSERT_TRUE(snapshots.install("good", make_index()).ok());

  // Missing file.
  auto missing = snapshots.load_file(testing::TempDir() + "/no-such.asrk");
  ASSERT_FALSE(missing.ok());
  EXPECT_EQ(missing.error().code, ErrorCode::kNotFound);

  // Garbage bytes: not an ASRK1 snapshot.
  const std::string corrupt_path = testing::TempDir() + "/corrupt-epoch.asrk";
  {
    std::ofstream out(corrupt_path, std::ios::binary);
    out << "this is not a snapshot";
  }
  auto corrupt = snapshots.load_file(corrupt_path);
  ASSERT_FALSE(corrupt.ok());

  EXPECT_EQ(snapshots.current_label(), "good");
  EXPECT_EQ(snapshots.epoch_count(), 1u);
  EXPECT_EQ(snapshots.reload_failures(), 2u);
  EXPECT_EQ(snapshots.reloads(), 0u);
  EXPECT_EQ(snapshots.current()->cone_size(Asn(1)), 4u);
}

TEST(SnapshotRegistry, LoadFileInstallsAndDerivesLabel) {
  const std::string path = testing::TempDir() + "/epoch-2013-04.asrk";
  snapshot::write_snapshot_file(make_index_b(), path);
  obs::Registry metrics;
  SnapshotRegistry snapshots({}, &metrics);
  auto loaded = snapshots.load_file(path);
  ASSERT_TRUE(loaded.ok()) << loaded.error().context;
  EXPECT_EQ(snapshots.current_label(), "epoch-2013-04");
  EXPECT_EQ(loaded.value().label, "epoch-2013-04");
  EXPECT_EQ(loaded.value().engine->cone_size(Asn(1)), 3u);
  // Explicit label wins over derivation.
  ASSERT_TRUE(snapshots.load_file(path, "named").ok());
  EXPECT_EQ(snapshots.current_label(), "named");
}

TEST(SnapshotRegistry, DerivedLabelCollisionsDeduplicateWithSuffix) {
  const std::string path = testing::TempDir() + "/dup-epoch.asrk";
  snapshot::write_snapshot_file(make_index_b(), path);
  obs::Registry metrics;
  SnapshotRegistryConfig config;
  config.retention = 8;
  SnapshotRegistry snapshots(config, &metrics);

  // Same file loaded three times with no explicit label: each vintage stays
  // resident under a suffixed name instead of clobbering the previous one.
  auto first = snapshots.load_file(path);
  ASSERT_TRUE(first.ok()) << first.error().context;
  EXPECT_EQ(first.value().label, "dup-epoch");
  auto second = snapshots.load_file(path);
  ASSERT_TRUE(second.ok()) << second.error().context;
  EXPECT_EQ(second.value().label, "dup-epoch-2");
  auto third = snapshots.load_file(path);
  ASSERT_TRUE(third.ok()) << third.error().context;
  EXPECT_EQ(third.value().label, "dup-epoch-3");

  EXPECT_EQ(snapshots.epoch_count(), 3u);
  EXPECT_EQ(snapshots.current_label(), "dup-epoch-3");
  EXPECT_NE(snapshots.epoch("dup-epoch"), nullptr);
  EXPECT_NE(snapshots.epoch("dup-epoch-2"), nullptr);

  // An explicit label keeps replace semantics even when it collides.
  ASSERT_TRUE(snapshots.load_file(path, "dup-epoch").ok());
  EXPECT_EQ(snapshots.epoch_count(), 3u);
  EXPECT_EQ(snapshots.current_label(), "dup-epoch");

  // The suffix trims the stem when the 64-char label cap would overflow.
  const std::string long_stem(64, 'x');
  const std::string long_path = testing::TempDir() + "/" + long_stem + ".asrk";
  snapshot::write_snapshot_file(make_index(), long_path);
  auto long_first = snapshots.load_file(long_path);
  ASSERT_TRUE(long_first.ok()) << long_first.error().context;
  EXPECT_EQ(long_first.value().label, long_stem);
  auto long_second = snapshots.load_file(long_path);
  ASSERT_TRUE(long_second.ok()) << long_second.error().context;
  EXPECT_EQ(long_second.value().label, long_stem.substr(0, 62) + "-2");
  EXPECT_EQ(long_second.value().label.size(), 64u);

  std::remove(path.c_str());
  std::remove(long_path.c_str());
}

TEST(SnapshotRegistry, LabelValidationAndDerivation) {
  EXPECT_TRUE(SnapshotRegistry::valid_label("2013-04"));
  EXPECT_TRUE(SnapshotRegistry::valid_label("rib.20260801:v2_x"));
  EXPECT_FALSE(SnapshotRegistry::valid_label(""));
  EXPECT_FALSE(SnapshotRegistry::valid_label("has space"));
  EXPECT_FALSE(SnapshotRegistry::valid_label(std::string(65, 'a')));

  auto derived = SnapshotRegistry::derive_label("/data/runs/2013-04.asrk");
  ASSERT_TRUE(derived.ok());
  EXPECT_EQ(derived.value(), "2013-04");
  EXPECT_EQ(SnapshotRegistry::derive_label("plain").value(), "plain");
  EXPECT_FALSE(SnapshotRegistry::derive_label("/x/bad name.asrk").ok());
}

// ------------------------------------------------- sans-socket handlers --

TEST(Handlers, TextCommands) {
  ServeRig rig;
  auto& snapshots = *rig.snapshots;
  EXPECT_EQ(handle_text_request(snapshots, "PING"), "OK pong");
  EXPECT_EQ(handle_text_request(snapshots, "rel 1 3"), "OK customer");
  EXPECT_EQ(handle_text_request(snapshots, "rel 3 1"), "OK provider");
  EXPECT_EQ(handle_text_request(snapshots, "rel 1 4"), "OK none");
  EXPECT_EQ(handle_text_request(snapshots, "rank 1"), "OK 1");
  EXPECT_EQ(handle_text_request(snapshots, "conesize 1"), "OK 4");
  EXPECT_EQ(handle_text_request(snapshots, "cone 3"), "OK 3 4");
  EXPECT_EQ(handle_text_request(snapshots, "incone 1 4"), "OK yes");
  EXPECT_EQ(handle_text_request(snapshots, "incone 1 6"), "OK no");
  EXPECT_EQ(handle_text_request(snapshots, "providers 3"), "OK 1 2");
  EXPECT_EQ(handle_text_request(snapshots, "intersect 1 2"), "OK 3 4");
  EXPECT_EQ(handle_text_request(snapshots, "cliquepath 4"), "OK 4 3 1");
  EXPECT_EQ(handle_text_request(snapshots, "clique"), "OK 1 2");
  EXPECT_TRUE(handle_text_request(snapshots, "stats").starts_with("OK\n"));
  EXPECT_TRUE(handle_text_request(snapshots, "stats").ends_with("."));
}

TEST(Handlers, MetricsTextCommandServesPrometheus) {
  ServeRig rig;
  (void)rig.snapshots->current()->rank(Asn(1));
  const auto response = handle_text_request(*rig.snapshots, "metrics");
  EXPECT_TRUE(response.starts_with("OK\n")) << response;
  EXPECT_TRUE(response.ends_with(".")) << response;
  EXPECT_NE(response.find("# TYPE asrankd_query_latency_micros histogram"),
            std::string::npos);
  EXPECT_NE(response.find("asrankd_queries_total 1\n"), std::string::npos);
  EXPECT_NE(response.find("asrankd_metrics_requests_total"), std::string::npos);
  // Registry-level series are exported through the same registry.
  EXPECT_NE(response.find("asrankd_epochs_loaded 1\n"), std::string::npos);
}

TEST(Handlers, MetricsOpcodeServesPrometheus) {
  ServeRig rig;
  (void)rig.snapshots->current()->rank(Asn(1));
  const auto response = handle_binary_request(
      *rig.snapshots,
      std::vector<std::uint8_t>{static_cast<std::uint8_t>(Op::kMetrics)});
  ASSERT_FALSE(response.empty());
  EXPECT_EQ(response[0], static_cast<std::uint8_t>(Status::kOk));
  const std::string body(response.begin() + 1, response.end());
  EXPECT_NE(
      body.find("asrankd_query_latency_micros_count{type=\"rank\"} 1\n"),
      std::string::npos);
  EXPECT_NE(body.find("asrankd_query_latency_micros_bucket{type=\"rank\",le=\"+Inf\"} 1\n"),
            std::string::npos);
}

TEST(Handlers, TextErrorsNameTheProblem) {
  ServeRig rig;
  auto& snapshots = *rig.snapshots;
  EXPECT_EQ(handle_text_request(snapshots, "rel 1"), "ERR usage: REL <asn> <asn>");
  EXPECT_EQ(handle_text_request(snapshots, "rank notanasn"),
            "ERR usage: RANK <asn>");
  const auto unknown = handle_text_request(snapshots, "frobnicate 1");
  EXPECT_TRUE(unknown.starts_with("ERR unknown command 'frobnicate'")) << unknown;
  EXPECT_TRUE(handle_text_request(snapshots, "   ").starts_with("ERR"));
}

TEST(Handlers, BinaryRejectsMalformedRequests) {
  ServeRig rig;
  auto& snapshots = *rig.snapshots;
  // Unknown opcode.
  auto response =
      handle_binary_request(snapshots, std::vector<std::uint8_t>{0x7F});
  ASSERT_FALSE(response.empty());
  EXPECT_EQ(response[0], static_cast<std::uint8_t>(Status::kError));
  // Truncated operand (kRank wants a u32).
  response = handle_binary_request(
      snapshots, std::vector<std::uint8_t>{static_cast<std::uint8_t>(Op::kRank), 1});
  EXPECT_EQ(response[0], static_cast<std::uint8_t>(Status::kError));
  // Trailing junk after a complete request.
  response = handle_binary_request(
      snapshots, std::vector<std::uint8_t>{static_cast<std::uint8_t>(Op::kPing), 0});
  EXPECT_EQ(response[0], static_cast<std::uint8_t>(Status::kError));
  // Empty payload.
  response = handle_binary_request(snapshots, std::vector<std::uint8_t>{});
  EXPECT_EQ(response[0], static_cast<std::uint8_t>(Status::kError));
}

TEST(Handlers, QueriesWithoutASnapshotAreErrors) {
  obs::Registry metrics;
  SnapshotRegistry snapshots({}, &metrics);
  EXPECT_EQ(handle_text_request(snapshots, "rank 1"), "ERR no snapshot loaded");
  // PING and EPOCHS answer without an engine.
  EXPECT_EQ(handle_text_request(snapshots, "ping"), "OK pong");
  EXPECT_EQ(handle_text_request(snapshots, "epochs"), "OK");
}

TEST(Handlers, EpochScopedTextCommands) {
  ServeRig rig;
  auto& snapshots = *rig.snapshots;
  ASSERT_TRUE(snapshots.install("next", make_index_b()).ok());
  // Current epoch is now "next"; the old one answers via @seed.
  EXPECT_EQ(handle_text_request(snapshots, "conesize 1"), "OK 3");
  EXPECT_EQ(handle_text_request(snapshots, "@seed conesize 1"), "OK 4");
  EXPECT_EQ(handle_text_request(snapshots, "@next conesize 1"), "OK 3");
  EXPECT_EQ(handle_text_request(snapshots, "@zzz conesize 1"),
            "ERR unknown epoch or algorithm 'zzz'");
  EXPECT_EQ(handle_text_request(snapshots, "@seed"),
            "ERR usage: @<epoch|algorithm> <command>");
}

TEST(Handlers, TextEpochsConediffAndReload) {
  ServeRig rig;
  auto& snapshots = *rig.snapshots;
  ASSERT_TRUE(snapshots.install("next", make_index_b()).ok());
  EXPECT_EQ(handle_text_request(snapshots, "epochs"), "OK next seed");
  // cone(1): seed {1,3,4,5} -> next {1,3,8}: +8, -4, -5.
  EXPECT_EQ(handle_text_request(snapshots, "conediff 1 seed next"),
            "OK +8 -4 -5");
  EXPECT_EQ(handle_text_request(snapshots, "conediff 1 seed zzz"),
            "ERR unknown epoch 'zzz'");
  EXPECT_EQ(handle_text_request(snapshots, "conediff x seed next"),
            "ERR usage: CONEDIFF <asn> <epochA> <epochB>");

  const std::string path = testing::TempDir() + "/text-reload.asrk";
  snapshot::write_snapshot_file(make_index(), path);
  EXPECT_EQ(handle_text_request(snapshots, "reload " + path + " fresh"),
            "OK fresh 7");
  EXPECT_EQ(snapshots.current_label(), "fresh");
  EXPECT_TRUE(handle_text_request(snapshots, "reload /no/such.asrk")
                  .starts_with("ERR"));
  EXPECT_EQ(snapshots.current_label(), "fresh");
}

TEST(Handlers, ReloadIsDeniedForNonLocalPeers) {
  ServeRig rig;
  auto& snapshots = *rig.snapshots;
  EXPECT_EQ(handle_text_request(snapshots, "reload /tmp/x.asrk", /*local_peer=*/false),
            "ERR reload denied: not a local peer");

  WireWriter request;
  request.u8(static_cast<std::uint8_t>(Op::kReload));
  request.str16("/tmp/x.asrk");
  request.str16("");
  const auto response =
      handle_binary_request(snapshots, request.payload(), /*local_peer=*/false);
  ASSERT_FALSE(response.empty());
  EXPECT_EQ(response[0], static_cast<std::uint8_t>(Status::kError));
  const std::string text(response.begin() + 1, response.end());
  EXPECT_EQ(text, "reload denied: not a local peer");
  EXPECT_EQ(snapshots.reload_failures(), 0u);  // denied before any load
}

TEST(Handlers, BinaryEpochsConeDiffAndWithEpoch) {
  ServeRig rig;
  auto& snapshots = *rig.snapshots;
  ASSERT_TRUE(snapshots.install("next", make_index_b()).ok());

  // EPOCHS: u32 count + str16 labels, current first.
  auto response = handle_binary_request(
      snapshots, std::vector<std::uint8_t>{static_cast<std::uint8_t>(Op::kEpochs)});
  ASSERT_EQ(response[0], static_cast<std::uint8_t>(Status::kOk));
  {
    WireReader reader(std::span<const std::uint8_t>(response).subspan(1));
    ASSERT_EQ(reader.u32().value(), 2u);
    EXPECT_EQ(reader.str16().value(), "next");
    EXPECT_EQ(reader.str16().value(), "seed");
    EXPECT_TRUE(reader.done());
  }

  // CONE_DIFF: added list then removed list.
  WireWriter diff_req;
  diff_req.u8(static_cast<std::uint8_t>(Op::kConeDiff));
  diff_req.u32(1);
  diff_req.str16("seed");
  diff_req.str16("next");
  response = handle_binary_request(snapshots, diff_req.payload());
  ASSERT_EQ(response[0], static_cast<std::uint8_t>(Status::kOk));
  {
    WireReader reader(std::span<const std::uint8_t>(response).subspan(1));
    ASSERT_EQ(reader.u32().value(), 1u);  // added
    EXPECT_EQ(reader.u32().value(), 8u);
    ASSERT_EQ(reader.u32().value(), 2u);  // removed
    EXPECT_EQ(reader.u32().value(), 4u);
    EXPECT_EQ(reader.u32().value(), 5u);
    EXPECT_TRUE(reader.done());
  }

  // WITH_EPOCH wraps an engine-scoped request.
  WireWriter scoped;
  scoped.u8(static_cast<std::uint8_t>(Op::kWithEpoch));
  scoped.str16("seed");
  scoped.u8(static_cast<std::uint8_t>(Op::kConeSize));
  scoped.u32(1);
  response = handle_binary_request(snapshots, scoped.payload());
  ASSERT_EQ(response[0], static_cast<std::uint8_t>(Status::kOk));
  {
    WireReader reader(std::span<const std::uint8_t>(response).subspan(1));
    EXPECT_EQ(reader.u64().value(), 4u);
  }

  // WITH_EPOCH with an unknown label fails with the typed message.
  WireWriter unknown;
  unknown.u8(static_cast<std::uint8_t>(Op::kWithEpoch));
  unknown.str16("zzz");
  unknown.u8(static_cast<std::uint8_t>(Op::kPing));
  response = handle_binary_request(snapshots, unknown.payload());
  ASSERT_EQ(response[0], static_cast<std::uint8_t>(Status::kError));
  EXPECT_EQ(std::string(response.begin() + 1, response.end()),
            "unknown epoch 'zzz'");

  // Registry ops cannot nest inside WITH_EPOCH.
  WireWriter nested;
  nested.u8(static_cast<std::uint8_t>(Op::kWithEpoch));
  nested.str16("seed");
  nested.u8(static_cast<std::uint8_t>(Op::kEpochs));
  response = handle_binary_request(snapshots, nested.payload());
  EXPECT_EQ(response[0], static_cast<std::uint8_t>(Status::kError));
}

// ------------------------------------------------- algorithm selectors --

TEST(Handlers, AlgoScopedTextCommands) {
  ServeRig rig;
  auto& snapshots = *rig.snapshots;
  ASSERT_TRUE(snapshots.install("multi", make_multi_index()).ok());

  // ALGOS lists the current (or @epoch-scoped) epoch's sections in slot order.
  EXPECT_EQ(handle_text_request(snapshots, "algos"), "OK asrank gao2001");
  EXPECT_EQ(handle_text_request(snapshots, "algorithms"), "OK asrank gao2001");
  EXPECT_EQ(handle_text_request(snapshots, "@seed algos"), "OK asrank");

  // @<algorithm> scopes engine commands to that section of the current epoch.
  EXPECT_EQ(handle_text_request(snapshots, "conesize 1"), "OK 4");
  EXPECT_EQ(handle_text_request(snapshots, "@asrank conesize 1"), "OK 4");
  EXPECT_EQ(handle_text_request(snapshots, "@gao2001 conesize 1"), "OK 3");
  EXPECT_EQ(handle_text_request(snapshots, "@gao2001 rel 4 5"), "OK provider");
  EXPECT_EQ(handle_text_request(snapshots, "@gao2001 rel 1 5"), "OK none");

  // Epoch and algorithm selectors combine, epoch first.
  EXPECT_EQ(handle_text_request(snapshots, "@multi @gao2001 conesize 1"), "OK 3");
  EXPECT_EQ(handle_text_request(snapshots, "@gao2001 @asrank conesize 1"),
            "ERR at most one @<algorithm> selector");
  EXPECT_EQ(handle_text_request(snapshots, "@seed @gao2001 conesize 1"),
            "ERR unknown algorithm 'gao2001' (epoch 'seed' carries: asrank)");
}

TEST(Handlers, DisagreeTextCommand) {
  ServeRig rig;
  auto& snapshots = *rig.snapshots;
  ASSERT_TRUE(snapshots.install("multi", make_multi_index()).ok());

  // Exact row format: ascending (a, b), rels from a's perspective, "none"
  // when that algorithm has no such link.
  EXPECT_EQ(handle_text_request(snapshots, "disagree asrank gao2001"),
            "OK 2 1:5:customer:none 4:5:peer:provider");
  // Swapping the operands swaps the per-row perspective, not the order.
  EXPECT_EQ(handle_text_request(snapshots, "disagree gao2001 asrank"),
            "OK 2 1:5:none:customer 4:5:provider:peer");
  // A limit truncates rows but the total stays exact.
  EXPECT_EQ(handle_text_request(snapshots, "disagree asrank gao2001 1"),
            "OK 2 1:5:customer:none");
  // An algorithm never disagrees with itself.
  EXPECT_EQ(handle_text_request(snapshots, "disagree asrank asrank"), "OK 0");

  const auto unknown = handle_text_request(snapshots, "disagree asrank nope");
  EXPECT_TRUE(unknown.starts_with("ERR unknown algorithm 'nope'")) << unknown;
  EXPECT_EQ(handle_text_request(snapshots, "@seed disagree asrank gao2001"),
            "ERR unknown algorithm 'gao2001' (epoch 'seed' carries: asrank)");
  EXPECT_EQ(handle_text_request(snapshots, "disagree asrank"),
            "ERR usage: DISAGREE <algoA> <algoB> [limit]");
  EXPECT_EQ(handle_text_request(snapshots, "disagree asrank gao2001 x"),
            "ERR usage: DISAGREE <algoA> <algoB> [limit]");
}

TEST(Handlers, BinaryDisagreeWireBytes) {
  ServeRig rig;
  auto& snapshots = *rig.snapshots;
  ASSERT_TRUE(snapshots.install("multi", make_multi_index()).ok());

  const auto customer = static_cast<std::uint8_t>(RelView::kCustomer);
  const auto provider = static_cast<std::uint8_t>(RelView::kProvider);
  const auto peer = static_cast<std::uint8_t>(RelView::kPeer);

  WireWriter req;
  req.u8(static_cast<std::uint8_t>(Op::kDisagree));
  req.str16("asrank");
  req.str16("gao2001");
  req.u32(0);
  const auto response = handle_binary_request(snapshots, req.payload());

  WireWriter body;
  body.u32(2);  // total
  body.u32(2);  // returned
  body.u32(1); body.u32(5); body.u8(customer); body.u8(kRelNone);
  body.u32(4); body.u32(5); body.u8(peer); body.u8(provider);
  std::vector<std::uint8_t> expected{static_cast<std::uint8_t>(Status::kOk)};
  const auto bytes = body.take();
  expected.insert(expected.end(), bytes.begin(), bytes.end());
  EXPECT_EQ(response, expected);

  // limit=1 truncates the rows; the total stays exact.
  WireWriter limited;
  limited.u8(static_cast<std::uint8_t>(Op::kDisagree));
  limited.str16("asrank");
  limited.str16("gao2001");
  limited.u32(1);
  const auto truncated = handle_binary_request(snapshots, limited.payload());
  WireWriter limited_body;
  limited_body.u32(2);
  limited_body.u32(1);
  limited_body.u32(1); limited_body.u32(5);
  limited_body.u8(customer); limited_body.u8(kRelNone);
  std::vector<std::uint8_t> limited_expected{static_cast<std::uint8_t>(Status::kOk)};
  const auto limited_bytes = limited_body.take();
  limited_expected.insert(limited_expected.end(), limited_bytes.begin(),
                          limited_bytes.end());
  EXPECT_EQ(truncated, limited_expected);

  // Trailing bytes after the operands are a protocol error.
  WireWriter trailing;
  trailing.u8(static_cast<std::uint8_t>(Op::kDisagree));
  trailing.str16("asrank");
  trailing.str16("gao2001");
  trailing.u32(0);
  trailing.u8(0);
  EXPECT_EQ(handle_binary_request(snapshots, trailing.payload())[0],
            static_cast<std::uint8_t>(Status::kError));

  // An unknown algorithm reports the carried set.
  WireWriter unknown;
  unknown.u8(static_cast<std::uint8_t>(Op::kDisagree));
  unknown.str16("asrank");
  unknown.str16("zzz");
  unknown.u32(0);
  const auto error = handle_binary_request(snapshots, unknown.payload());
  ASSERT_EQ(error[0], static_cast<std::uint8_t>(Status::kError));
  EXPECT_EQ(std::string(error.begin() + 1, error.end()),
            "unknown algorithm 'zzz' (epoch 'multi' carries: asrank, gao2001)");
}

TEST(Handlers, BinaryWithAlgoWireBytes) {
  ServeRig rig;
  auto& snapshots = *rig.snapshots;
  ASSERT_TRUE(snapshots.install("multi", make_multi_index()).ok());

  const auto ok_u64 = [](std::uint64_t v) {
    WireWriter body;
    body.u64(v);
    std::vector<std::uint8_t> expected{static_cast<std::uint8_t>(Status::kOk)};
    const auto bytes = body.take();
    expected.insert(expected.end(), bytes.begin(), bytes.end());
    return expected;
  };

  // WITH_ALGO answers from the named section of the current epoch.
  WireWriter scoped;
  scoped.u8(static_cast<std::uint8_t>(Op::kWithAlgo));
  scoped.str16("gao2001");
  scoped.u8(static_cast<std::uint8_t>(Op::kConeSize));
  scoped.u32(1);
  EXPECT_EQ(handle_binary_request(snapshots, scoped.payload()), ok_u64(3));

  // And nests inside WITH_EPOCH (epoch outermost).
  WireWriter nested;
  nested.u8(static_cast<std::uint8_t>(Op::kWithEpoch));
  nested.str16("multi");
  nested.u8(static_cast<std::uint8_t>(Op::kWithAlgo));
  nested.str16("asrank");
  nested.u8(static_cast<std::uint8_t>(Op::kConeSize));
  nested.u32(1);
  EXPECT_EQ(handle_binary_request(snapshots, nested.payload()), ok_u64(4));

  // WITH_ALGO cannot nest inside itself.
  WireWriter doubled;
  doubled.u8(static_cast<std::uint8_t>(Op::kWithAlgo));
  doubled.str16("asrank");
  doubled.u8(static_cast<std::uint8_t>(Op::kWithAlgo));
  doubled.str16("gao2001");
  doubled.u8(static_cast<std::uint8_t>(Op::kPing));
  EXPECT_EQ(handle_binary_request(snapshots, doubled.payload())[0],
            static_cast<std::uint8_t>(Status::kError));

  // Unknown algorithm: stable "unknown algorithm" prefix (the client maps
  // it to kUnknownAlgorithm).
  WireWriter unknown;
  unknown.u8(static_cast<std::uint8_t>(Op::kWithAlgo));
  unknown.str16("zzz");
  unknown.u8(static_cast<std::uint8_t>(Op::kPing));
  const auto error = handle_binary_request(snapshots, unknown.payload());
  ASSERT_EQ(error[0], static_cast<std::uint8_t>(Status::kError));
  EXPECT_EQ(std::string(error.begin() + 1, error.end()),
            "unknown algorithm 'zzz' (epoch 'multi' carries: asrank, gao2001)");
}

// ------------------------------------------- bitset kernel regression --

// A rig whose engines use a chosen cone-bitset threshold; 0 = every cone
// gets a row, disabled() = sorted kernels only.
struct KernelRig {
  explicit KernelRig(core::ConeBitsetConfig cone_config) {
    SnapshotRegistryConfig config;
    config.cone_bitset = cone_config;
    snapshots.emplace(config, &metrics);
    EXPECT_TRUE(snapshots->install("seed", make_index()).ok());
    EXPECT_TRUE(snapshots->install("next", make_index_b()).ok());
  }

  obs::Registry metrics;
  std::optional<SnapshotRegistry> snapshots;
};

TEST(Handlers, WireBytesIdenticalAcrossConeKernels) {
  // The bitset kernels are an internal representation swap: every response
  // the server emits — text lines and binary frames — must be byte-identical
  // to the sorted-array build, for every cone-flavored command.
  KernelRig bitset({0});
  KernelRig sorted(core::ConeBitsetConfig::disabled());

  const std::vector<std::string> text_requests = {
      "intersect 1 2", "intersect 2 1", "intersect 5 6", "incone 1 4",
      "incone 1 6",    "incone 99 1",   "cone 1",        "cone 3",
      "conesize 1",    "conediff 1 seed next", "conediff 3 next seed",
      "conediff 99 seed next", "@seed intersect 1 2", "@seed incone 1 5",
  };
  for (const auto& request : text_requests) {
    EXPECT_EQ(handle_text_request(*bitset.snapshots, request),
              handle_text_request(*sorted.snapshots, request))
        << request;
  }

  const auto binary_pair = [&](Op op, std::uint32_t a, std::uint32_t b) {
    WireWriter request;
    request.u8(static_cast<std::uint8_t>(op));
    request.u32(a);
    request.u32(b);
    return request.payload();
  };
  for (std::uint32_t a : {1u, 2u, 5u, 99u}) {
    for (std::uint32_t b : {1u, 2u, 4u, 6u}) {
      EXPECT_EQ(handle_binary_request(*bitset.snapshots,
                                      binary_pair(Op::kConeIntersect, a, b)),
                handle_binary_request(*sorted.snapshots,
                                      binary_pair(Op::kConeIntersect, a, b)))
          << "INTERSECT " << a << " " << b;
      EXPECT_EQ(handle_binary_request(*bitset.snapshots,
                                      binary_pair(Op::kInCone, a, b)),
                handle_binary_request(*sorted.snapshots,
                                      binary_pair(Op::kInCone, a, b)))
          << "IN_CONE " << a << " " << b;
    }
  }

  WireWriter diff;
  diff.u8(static_cast<std::uint8_t>(Op::kConeDiff));
  diff.u32(1);
  diff.str16("seed");
  diff.str16("next");
  EXPECT_EQ(handle_binary_request(*bitset.snapshots, diff.payload()),
            handle_binary_request(*sorted.snapshots, diff.payload()));

  // The bitset rig actually used its fast kernels for the work above.
  EXPECT_GT(bitset.metrics
                .counter("asrankd_cone_kernel_total",
                         "Cone intersection/diff/membership queries by "
                         "answering kernel",
                         {{"kernel", "bitset"}})
                .value(),
            0u);
}

TEST(Handlers, StatsAndMetricsShapeUnchangedWithBitsetKernels) {
  // STATS is a byte-stable wire format; enabling the bitset kernels must
  // not change it (same query types, same counts).
  KernelRig bitset({0});
  KernelRig sorted(core::ConeBitsetConfig::disabled());
  for (auto* rig : {&bitset, &sorted}) {
    EXPECT_EQ(handle_text_request(*rig->snapshots, "intersect 1 2"), "OK 3 8");
    EXPECT_EQ(handle_text_request(*rig->snapshots, "incone 1 3"), "OK yes");
  }
  // Identical modulo the avg_micros column, which is wall time.
  const auto normalized_stats = [](const std::string& text) {
    std::string out;
    std::istringstream lines(text);
    std::string line;
    while (std::getline(lines, line)) {
      const auto last_space = line.find_last_of(' ');
      if (last_space != std::string::npos &&
          line.find_first_of("0123456789", last_space) != std::string::npos) {
        line.resize(last_space);
      }
      out += line;
      out += '\n';
    }
    return out;
  };
  EXPECT_EQ(normalized_stats(handle_text_request(*bitset.snapshots, "stats")),
            normalized_stats(handle_text_request(*sorted.snapshots, "stats")));

  // METRICS gains the kernel/bitset series but keeps every query series
  // intact and well-formed.
  const auto scrape = handle_text_request(*bitset.snapshots, "metrics");
  EXPECT_NE(scrape.find("asrankd_cone_kernel_total{kernel=\"bitset\"}"),
            std::string::npos);
  EXPECT_NE(scrape.find("asrankd_cone_bitset_rows"), std::string::npos);
  EXPECT_NE(scrape.find("asrankd_query_latency_micros_count{type=\"cone_intersect\"} 1\n"),
            std::string::npos);
}

TEST(SnapshotRegistry, LoadFileInstallsMmapBackedEpoch) {
  const std::string path = testing::TempDir() + "/mmap-epoch.asrk";
  snapshot::write_snapshot_file(make_index_b(), path);

  // Default config: zero-copy load.  The library-level mmap counter lives
  // in the process-global registry (snapshot loads predate any daemon).
  auto& mmap_loads = obs::Registry::global().counter(
      "asrank_snapshot_mmap_loads_total",
      "Snapshot indexes served zero-copy from an mmap'd file");
  const auto mmap_loads_before = mmap_loads.value();
  obs::Registry metrics;
  SnapshotRegistry snapshots({}, &metrics);
  auto loaded = snapshots.load_file(path, "zero-copy");
  ASSERT_TRUE(loaded.ok()) << loaded.error().context;
  EXPECT_TRUE(loaded.value().engine->index().mmap_backed());
  EXPECT_EQ(loaded.value().engine->cone_size(Asn(1)), 3u);
  EXPECT_EQ(mmap_loads.value(), mmap_loads_before + 1);

  // Opting out falls back to the heap parse, same answers.
  SnapshotRegistryConfig heap_config;
  heap_config.mmap_load = false;
  obs::Registry heap_metrics;
  SnapshotRegistry heap_snapshots(heap_config, &heap_metrics);
  auto heap_loaded = heap_snapshots.load_file(path, "heap");
  ASSERT_TRUE(heap_loaded.ok()) << heap_loaded.error().context;
  EXPECT_FALSE(heap_loaded.value().engine->index().mmap_backed());
  EXPECT_EQ(heap_loaded.value().engine->cone_size(Asn(1)),
            loaded.value().engine->cone_size(Asn(1)));

  // A reload over the running registry swaps in another mmap-backed epoch.
  snapshot::write_snapshot_file(make_index(), path);
  auto reloaded = snapshots.load_file(path, "zero-copy");
  ASSERT_TRUE(reloaded.ok());
  EXPECT_TRUE(reloaded.value().engine->index().mmap_backed());
  EXPECT_EQ(reloaded.value().engine->cone_size(Asn(1)), 4u);
  EXPECT_EQ(snapshots.reloads(), 1u);
  std::remove(path.c_str());
}

// --------------------------------------------------------- socket serve --

class ServeFixture : public testing::Test {
 protected:
  ServeFixture() : rig_(), server_(*rig_.snapshots, config()) {
    thread_ = std::thread([this] { server_.run(); });
  }

  ~ServeFixture() override {
    server_.stop();
    thread_.join();
  }

  static ServerConfig config() {
    ServerConfig config;
    config.port = 0;  // ephemeral
    config.threads = 2;
    return config;
  }

  ServeRig rig_;
  Server server_;
  std::thread thread_;
};

TEST_F(ServeFixture, SocketAnswersMatchBatchComputation) {
  Client client = Client::dial("127.0.0.1", server_.port()).value();
  const auto graph = make_graph();
  const auto cones = core::recursive_cone(graph);

  ASSERT_TRUE(client.try_ping().ok());
  for (const Asn as : graph.ases()) {
    EXPECT_EQ(client.try_cone(as).value(), cones.at(as));
    EXPECT_EQ(client.try_cone_size(as).value(), cones.at(as).size());
    std::vector<Asn> providers(graph.providers(as).begin(),
                               graph.providers(as).end());
    std::sort(providers.begin(), providers.end());
    EXPECT_EQ(client.try_providers(as).value(), providers);
    for (const Asn other : graph.ases()) {
      EXPECT_EQ(client.try_relationship(as, other).value(), graph.view(as, other));
    }
  }
  EXPECT_EQ(client.try_clique().value(), asns({1, 2}));
  EXPECT_EQ(client.try_rank(Asn(1)).value(), 1u);
  EXPECT_EQ(client.try_rank(Asn(99)).value(), std::nullopt);
  EXPECT_EQ(client.try_cone_intersection(Asn(1), Asn(2)).value(), asns({3, 4}));
  EXPECT_EQ(client.try_path_to_clique(Asn(4)).value(), asns({4, 3, 1}));
  EXPECT_TRUE(client.try_in_cone(Asn(1), Asn(4)).value());

  const auto top = client.try_top(3).value();
  ASSERT_EQ(top.size(), 3u);
  EXPECT_EQ(top[0].as, Asn(1));
  EXPECT_EQ(top[0].cone_size, 4u);

  const auto stats = client.try_stats_text().value();
  EXPECT_NE(stats.find("relationship"), std::string::npos);
}

TEST_F(ServeFixture, ConcurrentClientsAreServed) {
  std::vector<std::thread> workers;
  std::atomic<int> failures{0};
  for (int w = 0; w < 4; ++w) {
    workers.emplace_back([this, &failures] {
      try {
        Client client = Client::dial("127.0.0.1", server_.port()).value();
        for (int i = 0; i < 25; ++i) {
          auto size = client.try_cone_size(Asn(1));
          if (!size.ok() || size.value() != 4) ++failures;
          auto rank = client.try_rank(Asn(2));
          if (!rank.ok() || rank.value() != 2u) ++failures;
        }
      } catch (const std::exception&) {
        ++failures;
      }
    });
  }
  for (auto& worker : workers) worker.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_GE(server_.connections_served(), 4u);
}

TEST_F(ServeFixture, TextModeOverSocket) {
  // Raw socket speaking the nc-style text protocol.
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(server_.port());
  ASSERT_EQ(::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr), 1);
  ASSERT_EQ(::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr), 0);

  const std::string request = "rank 1\nquit\n";
  write_all(fd, request.data(), request.size());
  std::string response;
  char c = 0;
  while (read_exact(fd, &c, 1)) response.push_back(c);  // until server closes
  ::close(fd);
  EXPECT_EQ(response, "OK 1\n");
}

TEST_F(ServeFixture, MetricsScrapeOverSocket) {
  Client client = Client::dial("127.0.0.1", server_.port()).value();
  (void)client.try_rank(Asn(1));
  (void)client.try_rank(Asn(2));
  const auto text = client.try_metrics_text().value();
  // Valid Prometheus exposition with per-query-type latency histograms and
  // the daemon's own connection/frame counters.
  EXPECT_NE(text.find("# TYPE asrankd_query_latency_micros histogram\n"),
            std::string::npos);
  EXPECT_NE(text.find("asrankd_query_latency_micros_count{type=\"rank\"} 2\n"),
            std::string::npos);
  EXPECT_NE(text.find("asrankd_queries_total 2\n"), std::string::npos);
  EXPECT_NE(text.find("asrankd_connections_total 1\n"), std::string::npos);
  EXPECT_NE(text.find("asrankd_frames_total"), std::string::npos);
  EXPECT_NE(text.find("asrankd_metrics_requests_total 1\n"), std::string::npos);
}

TEST_F(ServeFixture, EpochAwareQueriesOverSocket) {
  ASSERT_TRUE(rig_.snapshots->install("next", make_index_b()).ok());
  Client client = Client::dial("127.0.0.1", server_.port()).value();

  auto epochs = client.try_epochs();
  ASSERT_TRUE(epochs.ok());
  EXPECT_EQ(epochs.value(), (std::vector<std::string>{"next", "seed"}));

  // Unqualified queries answer from the current epoch; qualified ones from
  // the named one.
  EXPECT_EQ(client.try_cone_size(Asn(1)).value(), 3u);
  EXPECT_EQ(client.try_cone_size(Asn(1), "seed").value(), 4u);
  EXPECT_EQ(client.try_rank(Asn(1), "seed").value(), 1u);

  auto diff = client.try_cone_diff(Asn(1), "seed", "next");
  ASSERT_TRUE(diff.ok());
  EXPECT_EQ(diff.value().added, asns({8}));
  EXPECT_EQ(diff.value().removed, asns({4, 5}));

  auto unknown = client.try_rank(Asn(1), "zzz");
  ASSERT_FALSE(unknown.ok());
  EXPECT_EQ(unknown.error().code, ErrorCode::kUnknownEpoch);
  EXPECT_NE(unknown.error().context.find("unknown epoch 'zzz'"),
            std::string::npos);
}

TEST_F(ServeFixture, AlgorithmScopedQueriesOverSocket) {
  ASSERT_TRUE(rig_.snapshots->install("multi", make_multi_index()).ok());
  Client client = Client::dial("127.0.0.1", server_.port()).value();

  // Unscoped queries answer from the primary (asrank) section.
  EXPECT_EQ(client.try_cone_size(Asn(1)).value(), 4u);

  // set_algorithm wraps every engine query in WITH_ALGO...
  client.set_algorithm("gao2001");
  EXPECT_EQ(client.try_cone_size(Asn(1)).value(), 3u);
  EXPECT_EQ(client.try_relationship(Asn(4), Asn(5)).value(), RelView::kProvider);
  EXPECT_EQ(client.try_relationship(Asn(1), Asn(5)).value(), std::nullopt);
  // ...nesting inside WITH_EPOCH when an epoch is also named.
  EXPECT_EQ(client.try_cone_size(Asn(1), "multi").value(), 3u);

  // An algorithm the named epoch lacks surfaces on the Result rail as
  // kUnknownAlgorithm, per query.
  auto missing = client.try_rank(Asn(1), "seed");
  ASSERT_FALSE(missing.ok());
  EXPECT_EQ(missing.error().code, ErrorCode::kUnknownAlgorithm);

  client.set_algorithm("tor-local-search");
  auto unknown = client.try_cone_size(Asn(1));
  ASSERT_FALSE(unknown.ok());
  EXPECT_EQ(unknown.error().code, ErrorCode::kUnknownAlgorithm);
  EXPECT_NE(unknown.error().context.find("unknown algorithm 'tor-local-search'"),
            std::string::npos);

  // Empty restores the server default.
  client.set_algorithm("");
  EXPECT_EQ(client.try_cone_size(Asn(1)).value(), 4u);

  // DISAGREE round-trips the typed report.
  auto report = client.try_disagree("asrank", "gao2001");
  ASSERT_TRUE(report.ok()) << report.error().context;
  EXPECT_EQ(report.value().total, 2u);
  ASSERT_EQ(report.value().rows.size(), 2u);
  EXPECT_EQ(report.value().rows[0],
            (Disagreement{Asn(1), Asn(5), RelView::kCustomer, std::nullopt}));
  EXPECT_EQ(report.value().rows[1],
            (Disagreement{Asn(4), Asn(5), RelView::kPeer, RelView::kProvider}));
  auto limited = client.try_disagree("asrank", "gao2001", 1);
  ASSERT_TRUE(limited.ok());
  EXPECT_EQ(limited.value().total, 2u);
  EXPECT_EQ(limited.value().rows.size(), 1u);

  // Per-algorithm metric series appear alongside the aggregate ones.
  const auto text = client.try_metrics_text().value();
  EXPECT_NE(text.find("asrankd_algo_queries_total{algo=\"gao2001\"}"),
            std::string::npos);
  EXPECT_NE(text.find("asrankd_algo_selected_queries_total"), std::string::npos);
  EXPECT_NE(text.find("asrankd_disagreements_total 2\n"), std::string::npos);
}

TEST_F(ServeFixture, ReloadOverSocket) {
  const std::string path = testing::TempDir() + "/socket-reload.asrk";
  snapshot::write_snapshot_file(make_index_b(), path);
  Client client = Client::dial("127.0.0.1", server_.port()).value();

  auto info = client.try_reload(path);
  ASSERT_TRUE(info.ok()) << info.error().context;
  EXPECT_EQ(info.value().label, "socket-reload");
  EXPECT_EQ(info.value().ases, 6u);
  EXPECT_EQ(rig_.snapshots->reloads(), 1u);
  EXPECT_EQ(rig_.snapshots->current_label(), "socket-reload");

  // A failed reload reports the error and leaves the serving epoch alone.
  auto bad = client.try_reload(testing::TempDir() + "/missing.asrk");
  ASSERT_FALSE(bad.ok());
  EXPECT_TRUE(bad.error().context.find("server error:") != std::string::npos);
  EXPECT_EQ(rig_.snapshots->current_label(), "socket-reload");
  EXPECT_GE(rig_.snapshots->reload_failures(), 1u);
}

TEST(Server, StopBeforeRunReturnsImmediately) {
  ServeRig rig;
  ServerConfig config;
  config.port = 0;
  config.threads = 1;
  Server server(*rig.snapshots, config);
  server.stop();
  server.run();  // must observe the queued stop and return
  EXPECT_EQ(server.connections_served(), 0u);
}

TEST(Server, GracefulShutdownWithIdleClientConnected) {
  ServeRig rig;
  ServerConfig config;
  config.port = 0;
  config.threads = 1;
  Server server(*rig.snapshots, config);
  std::thread thread([&server] { server.run(); });
  {
    // An idle keep-alive connection must not wedge shutdown.
    Client idle = Client::dial("127.0.0.1", server.port()).value();
    ASSERT_TRUE(idle.try_ping().ok());
    server.stop();
    thread.join();
  }
  EXPECT_EQ(server.connections_served(), 1u);
}

TEST(Server, RejectsBadListenAddress) {
  ServeRig rig;
  ServerConfig config;
  config.host = "not-an-address";
  EXPECT_THROW((Server{*rig.snapshots, config}), ProtocolError);
}

TEST(Server, PollTickDerivesFromIdleTimeout) {
  ServeRig rig;
  const auto tick_for = [&rig](int idle_timeout_ms) {
    ServerConfig config;
    config.port = 0;
    config.idle_timeout_ms = idle_timeout_ms;
    return Server(*rig.snapshots, config).poll_tick_ms();
  };
  EXPECT_EQ(tick_for(60000), 200);  // capped
  EXPECT_EQ(tick_for(40), 10);      // idle/4
  EXPECT_EQ(tick_for(8), 5);        // floored
  EXPECT_EQ(tick_for(0), 200);      // disabled -> default tick
}

TEST(Server, ShutdownWakesIdleWorkersWithinOneTick) {
  ServeRig rig;
  ServerConfig config;
  config.port = 0;
  config.threads = 2;
  Server server(*rig.snapshots, config);
  std::thread runner([&server] { server.run(); });
  Client idle = Client::dial("127.0.0.1", server.port()).value();
  ASSERT_TRUE(idle.try_ping().ok());  // the worker is now parked in its keep-alive poll

  const auto start = std::chrono::steady_clock::now();
  server.stop();
  runner.join();
  const auto elapsed_ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                              std::chrono::steady_clock::now() - start)
                              .count();
  // The shutdown broadcast pipe wakes pollers immediately; without it the
  // idle worker would sleep out a full tick before noticing.
  EXPECT_LT(elapsed_ms, server.poll_tick_ms());
}

TEST(Server, SighupReloadsAndSigtermStopsWithinOneTick) {
  const std::string path = testing::TempDir() + "/sighup-epoch.asrk";
  snapshot::write_snapshot_file(make_index_b(), path);

  ServeRig rig;
  ServerConfig config;
  config.port = 0;
  config.threads = 1;
  config.reload_path = path;  // label derives to "sighup-epoch"
  Server server(*rig.snapshots, config);
  server.install_signal_handlers();
  std::thread runner([&server] { server.run(); });
  Client client = Client::dial("127.0.0.1", server.port()).value();
  ASSERT_TRUE(client.try_ping().ok());

  ::raise(SIGHUP);
  const auto reload_deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (rig.snapshots->reloads() < 1 &&
         std::chrono::steady_clock::now() < reload_deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  EXPECT_EQ(rig.snapshots->reloads(), 1u);
  EXPECT_EQ(rig.snapshots->current_label(), "sighup-epoch");
  // The reload swapped epochs under the live connection.
  EXPECT_EQ(client.try_cone_size(Asn(1)).value(), 3u);
  EXPECT_EQ(client.try_cone_size(Asn(1), "seed").value(), 4u);

  const auto start = std::chrono::steady_clock::now();
  ::raise(SIGTERM);
  runner.join();
  const auto elapsed_ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                              std::chrono::steady_clock::now() - start)
                              .count();
  EXPECT_LT(elapsed_ms, server.poll_tick_ms());
}

TEST(Server, ShedsConnectionsOverTheAdmissionLimit) {
  ServeRig rig;
  ServerConfig config;
  config.port = 0;
  config.threads = 2;
  config.max_connections = 1;
  Server server(*rig.snapshots, config);
  std::thread runner([&server] { server.run(); });

  Client first = Client::dial("127.0.0.1", server.port()).value();
  ASSERT_TRUE(first.try_ping().ok());  // occupies the single admission slot

  // A second connection gets the one-line shed notice and a close.  (The
  // client-side mapping of that line to ErrorCode::kShedding is covered by
  // the scripted-server retry test below, where the read/write order is
  // deterministic.)
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(server.port());
  ASSERT_EQ(::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr), 1);
  ASSERT_EQ(::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr), 0);
  std::string notice;
  char c = 0;
  while (read_exact(fd, &c, 1)) notice.push_back(c);  // until the shed close
  ::close(fd);
  EXPECT_TRUE(notice.starts_with("ERR shedding")) << notice;
  EXPECT_TRUE(notice.ends_with("\n")) << notice;
  EXPECT_GE(rig.metrics
                .counter("asrankd_connections_shed_total",
                         "Connections refused at the admission limit")
                .value(),
            1u);

  server.stop();
  runner.join();
}

TEST(Server, IdleConnectionsAreClosedAndCounted) {
  ServeRig rig;
  ServerConfig config;
  config.port = 0;
  config.threads = 1;
  config.idle_timeout_ms = 40;  // tick = 10ms
  Server server(*rig.snapshots, config);
  std::thread runner([&server] { server.run(); });

  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(server.port());
  ASSERT_EQ(::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr), 1);
  ASSERT_EQ(::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr), 0);

  // Send nothing: the server must close the connection on its own.
  const auto start = std::chrono::steady_clock::now();
  char byte = 0;
  const ssize_t n = ::read(fd, &byte, 1);
  const auto elapsed_ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                              std::chrono::steady_clock::now() - start)
                              .count();
  ::close(fd);
  EXPECT_EQ(n, 0);  // clean EOF from the server side
  EXPECT_LT(elapsed_ms, 2000);
  EXPECT_GE(rig.metrics
                .counter("asrankd_idle_timeouts_total",
                         "Connections closed after the idle timeout")
                .value(),
            1u);

  server.stop();
  runner.join();
}

TEST(Server, StalledRequestsHitTheReadDeadline) {
  ServeRig rig;
  ServerConfig config;
  config.port = 0;
  config.threads = 1;
  config.query_deadline_ms = 40;
  Server server(*rig.snapshots, config);
  std::thread runner([&server] { server.run(); });

  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(server.port());
  ASSERT_EQ(::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr), 1);
  ASSERT_EQ(::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr), 0);

  // Start a binary frame but never send the length: the per-query deadline
  // must fire even though the connection is not idle.
  const std::uint8_t marker = kBinaryMarker;
  write_all(fd, &marker, 1);
  char byte = 0;
  const ssize_t n = ::read(fd, &byte, 1);
  ::close(fd);
  EXPECT_EQ(n, 0);
  EXPECT_GE(rig.metrics
                .counter("asrankd_deadline_timeouts_total",
                         "Connections closed when a request missed its read deadline")
                .value(),
            1u);

  server.stop();
  runner.join();
}

TEST(Server, ConcurrentReloadTorture) {
  // Reinstall the same epoch label with alternating indexes while clients
  // hammer queries: every answer must be internally consistent with one of
  // the two snapshots (cone(1) is 4 ASes in A, 3 in B), and nothing may
  // error or crash.
  ServeRig rig;
  ASSERT_TRUE(rig.snapshots->install("flip", make_index()).ok());
  ServerConfig config;
  config.port = 0;
  config.threads = 2;
  Server server(*rig.snapshots, config);
  std::thread runner([&server] { server.run(); });

  std::atomic<bool> done{false};
  std::atomic<int> failures{0};
  std::atomic<int> answers{0};

  std::vector<std::thread> clients;
  for (int w = 0; w < 2; ++w) {
    clients.emplace_back([&server, &done, &failures, &answers] {
      try {
        Client client = Client::dial("127.0.0.1", server.port()).value();
        while (!done.load(std::memory_order_relaxed)) {
          auto size = client.try_cone_size(Asn(1));
          if (!size.ok()) {
            ++failures;
            continue;
          }
          if (size.value() != 4 && size.value() != 3) ++failures;
          auto cone = client.try_cone(Asn(1), "flip");
          if (!cone.ok()) {
            ++failures;
            continue;
          }
          if (cone.value() != asns({1, 3, 4, 5}) && cone.value() != asns({1, 3, 8})) {
            ++failures;
          }
          ++answers;
        }
      } catch (const std::exception&) {
        ++failures;
      }
    });
  }

  for (int i = 0; i < 40; ++i) {
    auto swapped = (i % 2 == 0) ? rig.snapshots->install("flip", make_index_b())
                                : rig.snapshots->install("flip", make_index());
    if (!swapped.ok()) ++failures;
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  done.store(true);
  for (auto& client : clients) client.join();
  server.stop();
  runner.join();

  EXPECT_EQ(failures.load(), 0);
  EXPECT_GT(answers.load(), 0);
  EXPECT_EQ(rig.snapshots->reloads(), 41u);  // 40 flips + the initial reinstall
}

// ------------------------------------------------------- client backoff --

TEST(ClientBackoff, DelayIsDeterministicAndCapped) {
  util::Rng a(42);
  util::Rng b(42);
  for (int attempt = 0; attempt < 12; ++attempt) {
    const int x = backoff_delay_ms(attempt, 50, 2000, a);
    EXPECT_EQ(x, backoff_delay_ms(attempt, 50, 2000, b)) << attempt;
    const auto d = static_cast<int>(
        std::min<std::int64_t>(2000, std::int64_t{50} << std::min(attempt, 20)));
    EXPECT_GE(x, d / 2) << attempt;
    EXPECT_LE(x, d) << attempt;
  }
  // Absurd attempt counts saturate at the cap instead of overflowing.
  util::Rng c(1);
  for (int i = 0; i < 8; ++i) {
    const int x = backoff_delay_ms(1 << 30, 1, 30, c);
    EXPECT_GE(x, 15);
    EXPECT_LE(x, 30);
  }
}

namespace {

/// Bind a loopback listener on an ephemeral port.
int make_listener(std::uint16_t* port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = 0;
  EXPECT_EQ(::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr), 1);
  EXPECT_EQ(::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr), 0);
  EXPECT_EQ(::listen(fd, 8), 0);
  sockaddr_in bound{};
  socklen_t len = sizeof bound;
  EXPECT_EQ(::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len), 0);
  *port = ntohs(bound.sin_port);
  return fd;
}

}  // namespace

TEST(Client, DialRefusedYieldsTypedError) {
  // Reserve an ephemeral port, then close the listener so nothing accepts.
  std::uint16_t port = 0;
  const int fd = make_listener(&port);
  ::close(fd);

  auto dialed = Client::dial("127.0.0.1", port);
  ASSERT_FALSE(dialed.ok());
  EXPECT_EQ(dialed.error().code, ErrorCode::kRefused);
  EXPECT_NE(dialed.error().context.find("connect 127.0.0.1:"),
            std::string::npos);
}

TEST(Client, RetriesThroughRefuseAndShedWithDeterministicBackoff) {
  std::uint16_t port = 0;
  const int listen_fd = make_listener(&port);

  // A scripted server: first exchange is cut off (client sees "refused"),
  // the second is shed, the third is answered.
  std::thread fake([listen_fd] {
    // Connection 1: read the request, then slam the connection shut.
    int c = ::accept(listen_fd, nullptr, nullptr);
    ASSERT_GE(c, 0);
    std::uint8_t marker = 0;
    ASSERT_TRUE(read_exact(c, &marker, 1));
    (void)read_frame_body(c);
    ::close(c);
    // Connection 2: admission-control shed notice.
    c = ::accept(listen_fd, nullptr, nullptr);
    ASSERT_GE(c, 0);
    ASSERT_TRUE(read_exact(c, &marker, 1));
    (void)read_frame_body(c);
    const std::string shed = "ERR shedding: connection limit reached, retry later\n";
    write_all(c, shed.data(), shed.size());
    ::close(c);
    // Connection 3: a real OK response to the ping.
    c = ::accept(listen_fd, nullptr, nullptr);
    ASSERT_GE(c, 0);
    ASSERT_TRUE(read_exact(c, &marker, 1));
    (void)read_frame_body(c);
    const std::vector<std::uint8_t> ok{static_cast<std::uint8_t>(Status::kOk)};
    write_frame(c, ok);
    ::close(c);
  });

  ClientConfig config;
  config.max_retries = 3;
  config.backoff_base_ms = 10;
  config.backoff_cap_ms = 40;
  config.backoff_seed = 7;
  std::vector<int> sleeps;
  config.sleep_ms = [&sleeps](int ms) { sleeps.push_back(ms); };  // no real wait

  auto dialed = Client::dial("127.0.0.1", port, config);
  ASSERT_TRUE(dialed.ok()) << dialed.error().context;
  Client client = std::move(dialed).value();
  EXPECT_TRUE(client.try_ping().ok());

  fake.join();
  ::close(listen_fd);

  // Two failures -> two backoff sleeps, reproducible from the seed.
  ASSERT_EQ(sleeps.size(), 2u);
  util::Rng expected_rng(config.backoff_seed);
  EXPECT_EQ(sleeps[0], backoff_delay_ms(0, 10, 40, expected_rng));
  EXPECT_EQ(sleeps[1], backoff_delay_ms(1, 10, 40, expected_rng));
}

TEST(Client, ReadDeadlineSurfacesTimeout) {
  std::uint16_t port = 0;
  const int listen_fd = make_listener(&port);

  std::atomic<bool> stop{false};
  std::thread fake([listen_fd, &stop] {
    const int c = ::accept(listen_fd, nullptr, nullptr);
    ASSERT_GE(c, 0);
    // Read the request, then stall until the client gives up.
    std::uint8_t marker = 0;
    ASSERT_TRUE(read_exact(c, &marker, 1));
    (void)read_frame_body(c);
    while (!stop.load()) std::this_thread::sleep_for(std::chrono::milliseconds(1));
    ::close(c);
  });

  ClientConfig config;
  config.io_timeout_ms = 50;
  auto dialed = Client::dial("127.0.0.1", port, config);
  ASSERT_TRUE(dialed.ok());
  Client client = std::move(dialed).value();
  auto response = client.try_ping();
  ASSERT_FALSE(response.ok());
  EXPECT_EQ(response.error().code, ErrorCode::kTimeout);

  stop.store(true);
  fake.join();
  ::close(listen_fd);
}

}  // namespace
}  // namespace asrank::serve
