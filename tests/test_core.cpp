#include <gtest/gtest.h>

#include "core/asrank.h"
#include "core/clique.h"
#include "core/cones.h"
#include "core/degrees.h"
#include "core/ranking.h"

namespace asrank::core {
namespace {

paths::PathRecord rec(std::uint32_t vp, std::uint32_t prefix_id,
                      std::initializer_list<std::uint32_t> hops) {
  return paths::PathRecord{Asn(vp), Prefix::v4(prefix_id << 8, 24), AsPath(hops)};
}

// ------------------------------------------------------------- degrees ----

TEST(Degrees, TransitVsNodeDegree) {
  paths::PathCorpus corpus;
  corpus.add(rec(1, 1, {1, 2, 3}));
  corpus.add(rec(1, 2, {1, 2, 4}));
  const auto degrees = Degrees::compute(corpus);
  // 2 transits between 1 and {3,4}: transit neighbours {1,3,4}.
  EXPECT_EQ(degrees.transit_degree(Asn(2)), 3u);
  EXPECT_EQ(degrees.node_degree(Asn(2)), 3u);
  // 1, 3, 4 never transit.
  EXPECT_EQ(degrees.transit_degree(Asn(1)), 0u);
  EXPECT_EQ(degrees.transit_degree(Asn(3)), 0u);
  EXPECT_EQ(degrees.node_degree(Asn(3)), 1u);
}

TEST(Degrees, PrependingDoesNotInflate) {
  paths::PathCorpus corpus;
  corpus.add(rec(1, 1, {1, 2, 2, 3}));
  const auto degrees = Degrees::compute(corpus);
  EXPECT_EQ(degrees.node_degree(Asn(2)), 2u);
  EXPECT_EQ(degrees.transit_degree(Asn(2)), 2u);
}

TEST(Degrees, RankingOrderAndTies) {
  paths::PathCorpus corpus;
  corpus.add(rec(1, 1, {1, 10, 3}));
  corpus.add(rec(1, 2, {1, 10, 4}));
  corpus.add(rec(1, 3, {1, 20, 5}));
  const auto degrees = Degrees::compute(corpus);
  // 10 has transit degree 3; 20 has 2; leaf ties broken by ASN.
  EXPECT_EQ(degrees.ranked().front(), Asn(10));
  EXPECT_EQ(degrees.rank_of(Asn(10)), 0u);
  EXPECT_LT(degrees.rank_of(Asn(20)), degrees.rank_of(Asn(3)));
  EXPECT_LT(degrees.rank_of(Asn(3)), degrees.rank_of(Asn(4)));  // ASN tiebreak
  // Unknown AS ranks past the end.
  EXPECT_EQ(degrees.rank_of(Asn(999)), degrees.ranked().size());
}

// -------------------------------------------------------------- clique ----

TEST(Clique, BronKerboschFindsAllMaximalCliques) {
  // Graph: triangle {1,2,3} plus edge 3-4.
  AdjacencySet adjacency;
  auto connect = [&](std::uint32_t a, std::uint32_t b) {
    adjacency[Asn(a)].insert(Asn(b));
    adjacency[Asn(b)].insert(Asn(a));
  };
  connect(1, 2);
  connect(1, 3);
  connect(2, 3);
  connect(3, 4);
  auto cliques = maximal_cliques(adjacency, {Asn(1), Asn(2), Asn(3), Asn(4)});
  std::sort(cliques.begin(), cliques.end());
  ASSERT_EQ(cliques.size(), 2u);
  EXPECT_EQ(cliques[0], (std::vector<Asn>{Asn(1), Asn(2), Asn(3)}));
  EXPECT_EQ(cliques[1], (std::vector<Asn>{Asn(3), Asn(4)}));
}

TEST(Clique, SingletonWhenNoEdges) {
  AdjacencySet adjacency;
  const auto cliques = maximal_cliques(adjacency, {Asn(1), Asn(2)});
  EXPECT_EQ(cliques.size(), 2u);  // two singletons
}

TEST(Clique, InferRecoversMeshedTop) {
  // Three meshed top ASes (10,20,30) each serving customers; the mesh is
  // visible because paths cross it.
  paths::PathCorpus corpus;
  corpus.add(rec(100, 1, {100, 10, 20, 200}));
  corpus.add(rec(100, 2, {100, 10, 30, 300}));
  corpus.add(rec(200, 3, {200, 20, 10, 100}));
  corpus.add(rec(200, 4, {200, 20, 30, 300}));
  corpus.add(rec(300, 5, {300, 30, 10, 100}));
  corpus.add(rec(300, 6, {300, 30, 20, 200}));
  const auto degrees = Degrees::compute(corpus);
  const auto clique = infer_clique(corpus, degrees, CliqueConfig{});
  EXPECT_EQ(clique, (std::vector<Asn>{Asn(10), Asn(20), Asn(30)}));
}

TEST(Clique, CustomerEvidenceBlocksBigCustomer) {
  // 40 is a large transit customer: it is adjacent to clique members and
  // has plenty of transit degree of its own, but appears after the
  // consecutive pair (10,20) in a path, which proves it buys transit.
  paths::PathCorpus corpus;
  // Make 10 and 20 clearly the top by transit degree.
  for (std::uint32_t i = 0; i < 8; ++i) {
    corpus.add(rec(100, 10 + i, {100, 10, 500 + i}));
    corpus.add(rec(200, 30 + i, {200, 20, 600 + i}));
  }
  corpus.add(rec(100, 1, {100, 10, 20, 200}));
  corpus.add(rec(200, 2, {200, 20, 10, 100}));
  corpus.add(rec(100, 3, {100, 10, 20, 40, 400}));
  corpus.add(rec(300, 4, {300, 40, 401}));
  corpus.add(rec(300, 5, {300, 40, 402}));
  corpus.add(rec(300, 6, {300, 40, 403}));
  const auto degrees = Degrees::compute(corpus);
  ASSERT_LT(degrees.rank_of(Asn(10)), degrees.rank_of(Asn(40)));
  CliqueConfig config;
  config.max_missing_links = 3;  // adjacency tolerance alone could admit 40
  const auto clique = infer_clique(corpus, degrees, config);
  EXPECT_EQ(std::count(clique.begin(), clique.end(), Asn(40)), 0);
}

TEST(Clique, EmptyCorpusYieldsEmptyClique) {
  const paths::PathCorpus corpus;
  const auto degrees = Degrees::compute(corpus);
  EXPECT_TRUE(infer_clique(corpus, degrees, CliqueConfig{}).empty());
}

// ------------------------------------------------------------ pipeline ----

/// Corpus over the hand topology used in test_bgpsim:
///   1-2 p2p (clique);  1->3, 1->4, 2->5 p2c;  4-5 p2p;  3->6, 4->7, 5->8.
/// Paths are written as a collector behind VPs 3 and 5 would see them.
paths::PathCorpus hand_corpus() {
  paths::PathCorpus corpus;
  std::uint32_t prefix = 0;
  auto add = [&](std::uint32_t vp, std::initializer_list<std::uint32_t> hops) {
    corpus.add(rec(vp, ++prefix, hops));
  };
  add(3, {3, 6});            // own customer
  add(3, {3, 1, 4, 7});      // via provider, descend to 7
  add(3, {3, 1, 2, 5, 8});   // cross the clique
  add(3, {3, 1, 2, 5});      //
  add(3, {3, 1, 4});         //
  add(3, {3, 1, 2});         //
  add(5, {5, 8});            //
  add(5, {5, 4, 7});         // peer route
  add(5, {5, 2, 1, 3, 6});   // cross the clique
  add(5, {5, 2, 1, 4});      // via provider
  add(5, {5, 2, 1, 3});      //
  add(4, {4, 7});            //
  add(4, {4, 1, 3, 6});      //
  add(4, {4, 5, 8});         // peer route from 4's side
  add(4, {4, 1, 2, 5});      //
  return corpus;
}

// The hand topology is tiny, so the Bron-Kerbosch seed must be wide enough
// to reach AS2, whose transit degree trails the tier-2 ASes.
InferenceConfig hand_config() {
  InferenceConfig config;
  config.clique.seed_size = 4;
  return config;
}

InferenceResult run_hand(InferenceConfig config = hand_config()) {
  return AsRankInference(config).run(hand_corpus());
}

TEST(Pipeline, InfersCliqueOnHandTopology) {
  const auto result = run_hand();
  EXPECT_EQ(result.clique, (std::vector<Asn>{Asn(1), Asn(2)}));
  EXPECT_EQ(result.graph.view(Asn(1), Asn(2)), RelView::kPeer);
}

TEST(Pipeline, InfersTransitChains) {
  const auto result = run_hand();
  EXPECT_EQ(result.graph.view(Asn(3), Asn(1)), RelView::kProvider);
  EXPECT_EQ(result.graph.view(Asn(4), Asn(1)), RelView::kProvider);
  EXPECT_EQ(result.graph.view(Asn(5), Asn(2)), RelView::kProvider);
  EXPECT_EQ(result.graph.view(Asn(6), Asn(3)), RelView::kProvider);
  EXPECT_EQ(result.graph.view(Asn(7), Asn(4)), RelView::kProvider);
  EXPECT_EQ(result.graph.view(Asn(8), Asn(5)), RelView::kProvider);
}

TEST(Pipeline, InfersMidLevelPeering) {
  const auto result = run_hand();
  EXPECT_EQ(result.graph.view(Asn(4), Asn(5)), RelView::kPeer);
}

TEST(Pipeline, ResultIsAcyclicAndComplete) {
  const auto result = run_hand();
  EXPECT_TRUE(result.audit.p2c_acyclic);
  // Every observed link is annotated.
  EXPECT_EQ(result.graph.link_count(), hand_corpus().link_observations().size());
}

TEST(Pipeline, SanitizesBeforeInference) {
  auto corpus = hand_corpus();
  corpus.add(rec(3, 900, {3, 1, 64512, 2, 5}));  // leaked private ASN
  corpus.add(rec(3, 901, {3, 1, 2, 1, 5}));      // loop
  InferenceConfig config;
  config.clique.seed_size = 4;
  const auto result = AsRankInference(config).run(corpus);
  EXPECT_EQ(result.audit.sanitize.reserved_discarded, 1u);
  EXPECT_EQ(result.audit.sanitize.loops_discarded, 1u);
  EXPECT_FALSE(result.graph.has_as(Asn(64512)));
}

TEST(Pipeline, DiscardsPoisonedPaths) {
  auto corpus = hand_corpus();
  // Paths with clique members separated by a non-clique AS.  Two distinct
  // origins witness AS9 between the tier-1s, so the clique's
  // customer-evidence rule (min 2 origins) refuses to admit it, and the
  // paths are then non-contiguous in clique hops -> poisoned.
  corpus.add(rec(3, 902, {3, 1, 9, 2, 5}));
  corpus.add(rec(5, 903, {5, 2, 9, 1, 3}));
  InferenceConfig config;
  config.clique.seed_size = 4;
  const auto result = AsRankInference(config).run(corpus);
  EXPECT_EQ(result.audit.poisoned_discarded, 2u);
  EXPECT_FALSE(result.graph.has_as(Asn(9)));
}

TEST(Pipeline, PoisonDiscardCanBeDisabled) {
  auto corpus = hand_corpus();
  corpus.add(rec(3, 902, {3, 1, 9, 2, 5}));
  corpus.add(rec(5, 903, {5, 2, 9, 1, 3}));
  InferenceConfig config;
  config.clique.seed_size = 4;
  config.discard_poisoned = false;
  const auto result = AsRankInference(config).run(corpus);
  EXPECT_EQ(result.audit.poisoned_discarded, 0u);
  EXPECT_TRUE(result.graph.has_as(Asn(9)));
}

TEST(Pipeline, SingleOriginCannotPoisonClique) {
  // One poisoning origin alone must not eject true members or smuggle its
  // inserted AS into the clique.
  auto corpus = hand_corpus();
  corpus.add(rec(3, 904, {3, 1, 9, 2, 5}));  // only origin 5 witnesses
  InferenceConfig config;
  config.clique.seed_size = 4;
  const auto result = AsRankInference(config).run(corpus);
  EXPECT_EQ(result.clique.size(), 2u);
  EXPECT_TRUE(std::binary_search(result.clique.begin(), result.clique.end(), Asn(1)));
  EXPECT_TRUE(std::binary_search(result.clique.begin(), result.clique.end(), Asn(2)));
}

TEST(Pipeline, PartialVpPathsDescend) {
  // VP 50 is partial: tiny table, all customer routes.
  paths::PathCorpus corpus = hand_corpus();
  corpus.add(rec(50, 910, {50, 51}));
  corpus.add(rec(50, 911, {50, 51, 52}));
  InferenceConfig config;
  config.clique.seed_size = 4;
  config.partial_vp_threshold = 0.5;
  const auto result = AsRankInference(config).run(corpus);
  EXPECT_GE(result.audit.partial_vps, 1u);
  EXPECT_EQ(result.graph.view(Asn(51), Asn(50)), RelView::kProvider);
  EXPECT_EQ(result.graph.view(Asn(52), Asn(51)), RelView::kProvider);
}

TEST(Pipeline, StubCliqueHeuristic) {
  auto corpus = hand_corpus();
  // Stub 60 hangs directly off clique member 1 and is seen nowhere else.
  corpus.add(rec(3, 920, {3, 1, 60}));
  InferenceConfig config;
  config.clique.seed_size = 4;
  const auto result = AsRankInference(config).run(corpus);
  EXPECT_EQ(result.graph.view(Asn(60), Asn(1)), RelView::kProvider);
}

TEST(Pipeline, EmptyCorpus) {
  const auto result = AsRankInference().run(paths::PathCorpus{});
  EXPECT_EQ(result.graph.link_count(), 0u);
  EXPECT_TRUE(result.clique.empty());
  EXPECT_TRUE(result.audit.p2c_acyclic);
}

TEST(Pipeline, DeterministicAcrossRuns) {
  const auto a = run_hand();
  const auto b = run_hand();
  EXPECT_EQ(a.graph.links(), b.graph.links());
  EXPECT_EQ(a.clique, b.clique);
}

TEST(Pipeline, EnforcesTransitFreeClique) {
  // Overwhelm the voting with paths that make clique member 2 look like a
  // customer of tier-2 AS 5 (e.g. systematic apex misidentification); the
  // A1-enforcement stage must re-orient the link.
  auto corpus = hand_corpus();
  const auto result = run_hand();
  ASSERT_TRUE(result.audit.p2c_acyclic);
  for (const Asn member : result.clique) {
    // No neighbour may be the member's provider: tier-1s are transit-free.
    EXPECT_TRUE(result.graph.providers(member).empty())
        << "clique member AS" << member.value() << " buys transit";
  }
}

TEST(Pipeline, InfersSiblingsFromBidirectionalTransit) {
  // 21 and 22 are siblings under 1: each appears providing for the other
  // (routes flow 1 -> 21 -> 22 -> leaf and 1 -> 22 -> 21 -> leaf).
  auto corpus = hand_corpus();
  std::uint32_t prefix = 5000;
  auto add = [&](std::uint32_t vp, std::initializer_list<std::uint32_t> hops) {
    corpus.add(paths::PathRecord{Asn(vp), Prefix::v4(++prefix << 8, 24), AsPath(hops)});
  };
  for (int i = 0; i < 4; ++i) {
    add(3, {3, 1, 21, 22, 31});
    add(4, {4, 1, 22, 21, 32});
    add(5, {5, 2, 1, 21, 22, 31});
    add(5, {5, 2, 1, 22, 21, 32});
  }
  auto config = hand_config();
  const auto result = AsRankInference(config).run(corpus);
  EXPECT_EQ(result.graph.view(Asn(21), Asn(22)), RelView::kSibling);
  EXPECT_GE(result.audit.siblings_inferred, 1u);
  // The links above/below the sibling pair stay transit.
  EXPECT_EQ(result.graph.view(Asn(21), Asn(1)), RelView::kProvider);
  EXPECT_EQ(result.graph.view(Asn(31), Asn(22)), RelView::kProvider);
}

TEST(Pipeline, SiblingDetectionCanBeDisabled) {
  auto corpus = hand_corpus();
  std::uint32_t prefix = 5000;
  auto add = [&](std::uint32_t vp, std::initializer_list<std::uint32_t> hops) {
    corpus.add(paths::PathRecord{Asn(vp), Prefix::v4(++prefix << 8, 24), AsPath(hops)});
  };
  for (int i = 0; i < 4; ++i) {
    add(3, {3, 1, 21, 22, 31});
    add(4, {4, 1, 22, 21, 32});
  }
  auto config = hand_config();
  config.sibling_conflict_ratio = 0.0;
  const auto result = AsRankInference(config).run(corpus);
  EXPECT_EQ(result.audit.siblings_inferred, 0u);
  const auto view = result.graph.view(Asn(21), Asn(22));
  ASSERT_TRUE(view);
  EXPECT_NE(*view, RelView::kSibling);
}

TEST(Pipeline, OneSidedEvidenceIsNotASibling) {
  // A plain transit chain must never be labelled s2s however often seen.
  auto corpus = hand_corpus();
  std::uint32_t prefix = 6000;
  for (int i = 0; i < 10; ++i) {
    corpus.add(paths::PathRecord{Asn(3), Prefix::v4(++prefix << 8, 24),
                                 AsPath({3, 1, 4, 7})});
  }
  const auto result = AsRankInference(hand_config()).run(corpus);
  EXPECT_EQ(result.graph.view(Asn(7), Asn(4)), RelView::kProvider);
  EXPECT_EQ(result.audit.siblings_inferred, 0u);
}

// --------------------------------------------------------------- cones ----

/// Hand DAG:  1 -> 2 -> 4;  1 -> 3;  2 -> 5;  3 -> 5  (5 multihomed).
AsGraph cone_graph() {
  AsGraph g;
  g.add_p2c(Asn(1), Asn(2));
  g.add_p2c(Asn(1), Asn(3));
  g.add_p2c(Asn(2), Asn(4));
  g.add_p2c(Asn(2), Asn(5));
  g.add_p2c(Asn(3), Asn(5));
  return g;
}

TEST(Cones, RecursiveClosure) {
  const auto cones = recursive_cone(cone_graph());
  EXPECT_EQ(cones.at(Asn(1)),
            (std::vector<Asn>{Asn(1), Asn(2), Asn(3), Asn(4), Asn(5)}));
  EXPECT_EQ(cones.at(Asn(2)), (std::vector<Asn>{Asn(2), Asn(4), Asn(5)}));
  EXPECT_EQ(cones.at(Asn(3)), (std::vector<Asn>{Asn(3), Asn(5)}));
  EXPECT_EQ(cones.at(Asn(4)), (std::vector<Asn>{Asn(4)}));
}

TEST(Cones, RecursiveRejectsCycles) {
  AsGraph g;
  g.add_p2c(Asn(1), Asn(2));
  g.add_p2c(Asn(2), Asn(3));
  g.add_p2c(Asn(3), Asn(1));
  EXPECT_THROW((void)recursive_cone(g), std::invalid_argument);
}

TEST(Cones, BreakProviderCyclesImposesRankOrder) {
  // 1 -> 2 -> 3 -> 1 is a provider cycle.  Transit evidence ranks 1 above
  // 2 above 3, so the repair re-orients only the 3 -> 1 edge and the result
  // satisfies the closure's DAG precondition.
  AsGraph g;
  g.add_p2c(Asn(1), Asn(2));
  g.add_p2c(Asn(2), Asn(3));
  g.add_p2c(Asn(3), Asn(1));
  paths::PathCorpus corpus;
  corpus.add(rec(9, 1, {9, 1, 2}));
  corpus.add(rec(9, 2, {9, 1, 3}));
  corpus.add(rec(8, 3, {8, 2, 3}));
  const auto degrees = Degrees::compute(corpus);
  ASSERT_LT(degrees.rank_of(Asn(1)), degrees.rank_of(Asn(2)));
  ASSERT_LT(degrees.rank_of(Asn(2)), degrees.rank_of(Asn(3)));

  EXPECT_EQ(break_provider_cycles(g, degrees), 1u);
  EXPECT_TRUE(g.p2c_acyclic());
  // Edges agreeing with the ranking are untouched; 3 -> 1 flipped.
  EXPECT_EQ(g.view(Asn(1), Asn(2)), RelView::kCustomer);
  EXPECT_EQ(g.view(Asn(2), Asn(3)), RelView::kCustomer);
  EXPECT_EQ(g.view(Asn(1), Asn(3)), RelView::kCustomer);
  const auto cones = recursive_cone(g);
  EXPECT_EQ(cones.at(Asn(1)), (std::vector<Asn>{Asn(1), Asn(2), Asn(3)}));

  // Acyclic input is the common case and a strict no-op.
  AsGraph dag = cone_graph();
  EXPECT_EQ(break_provider_cycles(dag, degrees), 0u);
  EXPECT_EQ(dag.view(Asn(1), Asn(2)), RelView::kCustomer);
}

TEST(Cones, BgpObservedNeedsActualPaths) {
  const AsGraph g = cone_graph();
  paths::PathCorpus corpus;
  corpus.add(rec(9, 1, {1, 2, 4}));  // descent 1->2->4 observed
  const auto cones = bgp_observed_cone(g, corpus);
  EXPECT_EQ(cones.at(Asn(1)), (std::vector<Asn>{Asn(1), Asn(2), Asn(4)}));
  // 5 was never observed below anyone.
  EXPECT_EQ(cones.at(Asn(3)), (std::vector<Asn>{Asn(3)}));
}

TEST(Cones, BgpObservedStopsAtNonP2cLink) {
  AsGraph g = cone_graph();
  g.add_p2p(Asn(4), Asn(6));
  paths::PathCorpus corpus;
  corpus.add(rec(9, 1, {1, 2, 4, 6}));  // 4-6 is peering: descent ends at 4
  const auto cones = bgp_observed_cone(g, corpus);
  EXPECT_EQ(cones.at(Asn(1)), (std::vector<Asn>{Asn(1), Asn(2), Asn(4)}));
}

TEST(Cones, ProviderPeerObservedRequiresDescentFromAbove) {
  const AsGraph g = cone_graph();
  paths::PathCorpus corpus;
  // 2 is reached via its provider 1, then descends to 5: the 2->5 link is
  // proven.  The 1->2 link itself has nobody above 1, so cone(1) via this
  // method includes only what the closure over proven links gives it.
  corpus.add(rec(9, 1, {1, 2, 5}));
  const auto cones = provider_peer_observed_cone(g, corpus);
  EXPECT_EQ(cones.at(Asn(2)), (std::vector<Asn>{Asn(2), Asn(5)}));
  EXPECT_EQ(cones.at(Asn(1)), (std::vector<Asn>{Asn(1)}));  // no proven 1->x link
}

TEST(Cones, ProviderPeerUsesPeerPrecedingToo) {
  AsGraph g = cone_graph();
  g.add_p2p(Asn(1), Asn(7));
  paths::PathCorpus corpus;
  corpus.add(rec(9, 1, {7, 1, 2, 5}));  // 1 reached via peer 7: 1->2, 2->5 proven
  const auto cones = provider_peer_observed_cone(g, corpus);
  EXPECT_EQ(cones.at(Asn(1)), (std::vector<Asn>{Asn(1), Asn(2), Asn(5)}));
}

TEST(Cones, EveryConeContainsSelf) {
  const AsGraph g = cone_graph();
  for (const auto method : {ConeMethod::kRecursive, ConeMethod::kBgpObserved,
                            ConeMethod::kProviderPeerObserved}) {
    const auto cones = compute_cone(method, g, paths::PathCorpus{});
    for (const auto& [as, members] : cones) {
      EXPECT_TRUE(std::binary_search(members.begin(), members.end(), as))
          << to_string(method);
    }
  }
}

TEST(Cones, ContainmentInvariant) {
  // recursive >= ppdc and recursive >= bgp-observed, member-wise.
  const auto result = run_hand();
  const auto recursive = recursive_cone(result.graph);
  const auto ppdc = provider_peer_observed_cone(result.graph, result.sanitized);
  const auto observed = bgp_observed_cone(result.graph, result.sanitized);
  for (const auto& [as, members] : recursive) {
    const auto& p = ppdc.at(as);
    const auto& o = observed.at(as);
    EXPECT_TRUE(std::includes(members.begin(), members.end(), p.begin(), p.end()));
    EXPECT_TRUE(std::includes(members.begin(), members.end(), o.begin(), o.end()));
  }
}

// ------------------------------------------------------------- ranking ----

TEST(Ranking, OrdersByConeSizeThenTransitDegree) {
  const auto result = run_hand();
  const auto cones = recursive_cone(result.graph);
  const auto entries = rank_by_cone(cones, result.degrees);
  ASSERT_FALSE(entries.empty());
  for (std::size_t i = 1; i < entries.size(); ++i) {
    EXPECT_GE(entries[i - 1].cone_size, entries[i].cone_size);
    EXPECT_EQ(entries[i].rank, i + 1);
  }
  // Clique members 1 and 2 have the two largest cones.
  EXPECT_TRUE(entries[0].as == Asn(1) || entries[0].as == Asn(2));
}

TEST(Ranking, TopNTruncates) {
  const auto result = run_hand();
  const auto cones = recursive_cone(result.graph);
  EXPECT_EQ(top_n(cones, result.degrees, 3).size(), 3u);
  EXPECT_EQ(top_n(cones, result.degrees, 1000).size(), cones.size());
}

}  // namespace
}  // namespace asrank::core
