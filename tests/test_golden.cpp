// Golden-fixture equivalence tests for the dense inference pipeline.
//
// The files under tests/golden/ were produced by the pre-refactor (hash-map)
// pipeline on seeded topogen topologies and committed verbatim.  These tests
// regenerate the same runs on the current code and require byte-identical
// serialized output — the strongest possible check that the dense
// NodeId/CSR refactor changed the representation and nothing else — at 1, 2,
// and 8 worker threads.
//
// If an intentional inference-semantics change ever lands, regenerate the
// fixtures with the recipe below and explain the diff in the commit.
#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>
#include <tuple>

#include "bgpsim/observation.h"
#include "core/asrank.h"
#include "core/cones.h"
#include "topogen/topogen.h"
#include "topology/serialization.h"

namespace asrank {
namespace {

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.is_open()) << "missing golden fixture: " << path;
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

struct Fixture {
  std::uint64_t gen_seed;
  std::uint64_t obs_seed;
  const char* tag;
};

constexpr Fixture kFixtures[] = {
    {20130817u, 20130818u, "20130817"},
    {424242u, 424243u, "424242"},
};

TEST(Golden, InferenceOutputIsByteIdenticalToCommittedFixtures) {
  for (const Fixture& fixture : kFixtures) {
    auto gen = topogen::GenParams::preset("small");
    gen.seed = fixture.gen_seed;
    const auto truth = topogen::generate(gen);
    bgpsim::ObservationParams obs;
    obs.seed = fixture.obs_seed;
    obs.full_vps = 25;
    obs.partial_vps = 8;
    const auto corpus =
        paths::PathCorpus::from_records(bgpsim::observe(truth, obs).routes);

    const std::string base =
        std::string(ASRANK_GOLDEN_DIR) + "/topogen_small_" + fixture.tag;
    const std::string want_rel = slurp(base + ".as-rel");
    const std::string want_ppdc = slurp(base + ".ppdc-ases");

    for (const std::size_t threads : {1u, 2u, 8u}) {
      core::InferenceConfig config;
      config.threads = threads;
      config.sanitizer.ixp_asns.insert(truth.ixp_asns.begin(), truth.ixp_asns.end());
      const auto result = core::AsRankInference(config).run(corpus);

      std::ostringstream rel;
      write_as_rel(result.graph, rel);
      EXPECT_EQ(rel.str(), want_rel)
          << fixture.tag << " as-rel differs at " << threads << " threads";

      std::ostringstream ppdc;
      write_ppdc(core::provider_peer_observed_cone(result.graph, result.sanitized,
                                                   threads),
                 ppdc);
      EXPECT_EQ(ppdc.str(), want_ppdc)
          << fixture.tag << " ppdc differs at " << threads << " threads";
    }
  }
}

}  // namespace
}  // namespace asrank
