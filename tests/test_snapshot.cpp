#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "core/cones.h"
#include "paths/corpus.h"
#include "core/degrees.h"
#include "core/ranking.h"
#include "snapshot/format.h"
#include "snapshot/snapshot.h"
#include "topology/serialization.h"

namespace asrank::snapshot {
namespace {

// Fixture topology: clique {1,2} at the top, 3 multihomed below both, a
// chain to 4, a side peering 4-5, and a sibling pair 6-7 under 2.
AsGraph make_graph() {
  AsGraph graph;
  graph.add_p2p(Asn(1), Asn(2));
  graph.add_p2c(Asn(1), Asn(3));
  graph.add_p2c(Asn(2), Asn(3));
  graph.add_p2c(Asn(3), Asn(4));
  graph.add_p2c(Asn(1), Asn(5));
  graph.add_p2p(Asn(4), Asn(5));
  graph.add_p2c(Asn(2), Asn(6));
  graph.add_s2s(Asn(6), Asn(7));
  return graph;
}

std::unordered_map<Asn, std::size_t> make_tdeg() {
  return {{Asn(1), 3}, {Asn(2), 3}, {Asn(3), 2}};
}

std::vector<Asn> make_clique() { return {Asn(1), Asn(2)}; }

SnapshotIndex make_index() {
  const auto graph = make_graph();
  return build_snapshot(graph, make_tdeg(), core::recursive_cone(graph),
                        make_clique());
}

std::vector<std::uint8_t> serialized_bytes(const SnapshotIndex& index) {
  std::ostringstream os(std::ios::binary);
  write_snapshot(index, os);
  const std::string raw = os.str();
  return {raw.begin(), raw.end()};
}

SnapshotIndex read_bytes(const std::vector<std::uint8_t>& bytes) {
  std::istringstream is(std::string(bytes.begin(), bytes.end()), std::ios::binary);
  return read_snapshot(is);
}

std::vector<Asn> to_vec(std::span<const Asn> span) {
  return {span.begin(), span.end()};
}

void expect_equivalent(const SnapshotIndex& index, const AsGraph& graph,
                       const ConeMap& cones) {
  EXPECT_EQ(index.as_count(), graph.as_count());
  EXPECT_EQ(index.link_count(), graph.link_count());
  for (const Asn as : graph.ases()) {
    ASSERT_TRUE(index.has_as(as));
    EXPECT_EQ(to_vec(index.cone(as)), cones.at(as));
    EXPECT_EQ(index.cone_size(as), cones.at(as).size());
    for (const Asn member : cones.at(as)) EXPECT_TRUE(index.in_cone(as, member));
    for (const Asn other : graph.ases()) {
      EXPECT_EQ(index.relationship(as, other), graph.view(as, other))
          << as.str() << " -> " << other.str();
    }
    std::vector<Asn> providers = to_vec(graph.providers(as));
    std::sort(providers.begin(), providers.end());
    EXPECT_EQ(index.providers(as), providers);
    std::vector<Asn> customers = to_vec(graph.customers(as));
    std::sort(customers.begin(), customers.end());
    EXPECT_EQ(index.customers(as), customers);
  }
}

// ----------------------------------------------------------- build/query --

TEST(Snapshot, BuildAnswersMatchInputs) {
  const auto graph = make_graph();
  const auto cones = core::recursive_cone(graph);
  const auto index = build_snapshot(graph, make_tdeg(), cones, make_clique());
  expect_equivalent(index, graph, cones);

  EXPECT_EQ(index.relationship(Asn(1), Asn(3)), RelView::kCustomer);
  EXPECT_EQ(index.relationship(Asn(3), Asn(1)), RelView::kProvider);
  EXPECT_EQ(index.relationship(Asn(4), Asn(5)), RelView::kPeer);
  EXPECT_EQ(index.relationship(Asn(6), Asn(7)), RelView::kSibling);
  EXPECT_EQ(index.relationship(Asn(1), Asn(4)), std::nullopt);  // not adjacent
  EXPECT_EQ(index.relationship(Asn(99), Asn(1)), std::nullopt);

  EXPECT_EQ(index.transit_degree(Asn(1)), 3u);
  EXPECT_EQ(index.transit_degree(Asn(4)), 0u);  // omitted from the map
  EXPECT_EQ(to_vec(index.clique()), make_clique());
  EXPECT_FALSE(index.has_as(Asn(99)));
  EXPECT_TRUE(index.cone(Asn(99)).empty());
  EXPECT_FALSE(index.in_cone(Asn(99), Asn(1)));
}

TEST(Snapshot, RankingMatchesBatchPipeline) {
  // Build via the core::Degrees overload and require the frozen ranking to
  // be exactly core::rank_by_cone's output, entry by entry.
  paths::PathCorpus corpus;
  corpus.add({Asn(1), Prefix::v4(1 << 8, 24), AsPath({1, 3, 4})});
  corpus.add({Asn(1), Prefix::v4(2 << 8, 24), AsPath({2, 3, 4})});
  const auto degrees = core::Degrees::compute(corpus);
  const auto graph = make_graph();
  const auto cones = core::recursive_cone(graph);
  const auto index = build_snapshot(graph, degrees, cones, make_clique());

  const auto expected = core::rank_by_cone(cones, degrees);
  const auto got = index.top(expected.size() + 10);  // over-ask: clamps
  ASSERT_EQ(got.size(), expected.size());
  for (std::size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(got[i].rank, expected[i].rank);
    EXPECT_EQ(got[i].as, expected[i].as);
    EXPECT_EQ(got[i].cone_size, expected[i].cone_size);
    EXPECT_EQ(got[i].transit_degree, expected[i].transit_degree);
    EXPECT_EQ(index.rank(expected[i].as), expected[i].rank);
    EXPECT_EQ(index.as_at_rank(expected[i].rank), expected[i].as);
  }
  EXPECT_EQ(index.rank(Asn(99)), std::nullopt);
  EXPECT_EQ(index.as_at_rank(0), std::nullopt);
  EXPECT_EQ(index.as_at_rank(expected.size() + 1), std::nullopt);
}

TEST(Snapshot, TextFormatsToSnapshotEquivalence) {
  // The satellite round trip: .as-rel/.ppdc text -> parse -> snapshot ->
  // stream -> index, answers identical to direct computation on the parse.
  const auto graph = make_graph();
  const auto cones = core::recursive_cone(graph);
  std::stringstream rel_text, ppdc_text;
  write_as_rel(graph, rel_text);
  write_ppdc(cones, ppdc_text);

  const auto reparsed_graph = read_as_rel(rel_text);
  const auto reparsed_cones = read_ppdc(ppdc_text);
  const auto index = read_bytes(serialized_bytes(
      build_snapshot(reparsed_graph, make_tdeg(), reparsed_cones, make_clique())));
  expect_equivalent(index, graph, cones);
}

TEST(Snapshot, BuildRejectsInconsistentInputs) {
  const auto graph = make_graph();
  const auto cones = core::recursive_cone(graph);

  auto bad_cone_key = cones;
  bad_cone_key[Asn(99)] = {Asn(99)};
  EXPECT_THROW((void)build_snapshot(graph, make_tdeg(), bad_cone_key, make_clique()),
               SnapshotError);

  auto no_self = cones;
  no_self[Asn(4)] = {Asn(5)};
  EXPECT_THROW((void)build_snapshot(graph, make_tdeg(), no_self, make_clique()),
               SnapshotError);

  EXPECT_THROW((void)build_snapshot(graph, make_tdeg(), cones, {Asn(99)}),
               SnapshotError);
}

// ------------------------------------------------------------- round trip --

TEST(Snapshot, StreamRoundTrip) {
  const auto graph = make_graph();
  const auto cones = core::recursive_cone(graph);
  const auto index = build_snapshot(graph, make_tdeg(), cones, make_clique());
  const auto reread = read_bytes(serialized_bytes(index));
  expect_equivalent(reread, graph, cones);
  EXPECT_EQ(to_vec(reread.clique()), make_clique());
  EXPECT_EQ(reread.top(100).size(), index.top(100).size());
}

TEST(Snapshot, FileRoundTrip) {
  const std::string path = testing::TempDir() + "asrk1_roundtrip.snapshot";
  const auto index = make_index();
  write_snapshot_file(index, path);
  const auto reread = read_snapshot_file(path);
  EXPECT_EQ(serialized_bytes(reread), serialized_bytes(index));
  std::remove(path.c_str());
  EXPECT_THROW((void)read_snapshot_file(path), SnapshotError);
}

TEST(Snapshot, WriteIsByteForByteDeterministic) {
  const auto first = serialized_bytes(make_index());
  const auto second = serialized_bytes(make_index());
  EXPECT_EQ(first, second);
  // And a decode/encode cycle reproduces the same bytes.
  EXPECT_EQ(serialized_bytes(read_bytes(first)), first);
}

// ------------------------------------------------------------ corruption --

TEST(Snapshot, RejectsWrongMagic) {
  auto bytes = serialized_bytes(make_index());
  bytes[0] = 'X';
  try {
    (void)read_bytes(bytes);
    FAIL() << "wrong magic accepted";
  } catch (const SnapshotError& error) {
    EXPECT_NE(std::string(error.what()).find("magic"), std::string::npos);
  }
}

TEST(Snapshot, RejectsUnsupportedVersion) {
  auto bytes = serialized_bytes(make_index());
  bytes[kMagic.size()] = 0xFF;  // format version is LE u16 right after magic
  try {
    (void)read_bytes(bytes);
    FAIL() << "bad version accepted";
  } catch (const SnapshotError& error) {
    EXPECT_NE(std::string(error.what()).find("version"), std::string::npos);
  }
}

TEST(Snapshot, RejectsEveryTruncation) {
  const auto bytes = serialized_bytes(make_index());
  ASSERT_GT(bytes.size(), 0u);
  for (std::size_t cut = 0; cut < bytes.size(); ++cut) {
    EXPECT_THROW(
        (void)read_bytes(std::vector<std::uint8_t>(bytes.begin(),
                                                   bytes.begin() + cut)),
        SnapshotError)
        << "prefix of " << cut << " bytes accepted";
  }
}

TEST(Snapshot, RejectsFlippedSectionCrc) {
  // Byte 16 of a section table entry is its CRC field; flipping it must
  // surface as a header checksum failure (the table is header-covered).
  auto bytes = serialized_bytes(make_index());
  bytes[kHeaderPrefixSize + 16] ^= 0xFF;
  EXPECT_THROW((void)read_bytes(bytes), SnapshotError);
}

TEST(Snapshot, DetectsAnyMeaningfulByteFlip) {
  // Flip every byte in turn.  Each flip must either be rejected outright or
  // (only possible for alignment padding, which no checksum covers) leave
  // every answer identical to the pristine snapshot.
  const auto pristine_bytes = serialized_bytes(make_index());
  const auto pristine = serialized_bytes(read_bytes(pristine_bytes));
  std::size_t undetected = 0;
  for (std::size_t i = 0; i < pristine_bytes.size(); ++i) {
    auto bytes = pristine_bytes;
    bytes[i] ^= 0xFF;
    try {
      const auto index = read_bytes(bytes);
      ++undetected;
      EXPECT_EQ(serialized_bytes(index), pristine)
          << "flip at offset " << i << " silently changed answers";
    } catch (const SnapshotError&) {
      // Rejected: the desired outcome for any covered byte.
    }
  }
  // Padding is at most 7 bytes per boundary; anything more means a coverage
  // hole in the checksums.
  EXPECT_LT(undetected, 8 * (kSectionCount + 1));
}

TEST(Snapshot, RejectsGarbageStream) {
  std::istringstream text("this is not a snapshot file at all, honest\n");
  EXPECT_THROW((void)read_snapshot(text), SnapshotError);
  std::istringstream empty("");
  EXPECT_THROW((void)read_snapshot(empty), SnapshotError);
}

// ------------------------------------------------------------ mmap path --

// Write `bytes` to a fresh file and return the path (overwrites).
std::string write_temp(const std::vector<std::uint8_t>& bytes,
                       const std::string& name) {
  const std::string path = testing::TempDir() + "/" + name;
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
  return path;
}

TEST(SnapshotMmap, MapFileMatchesHeapRead) {
  const auto graph = make_graph();
  const auto cones = core::recursive_cone(graph);
  const auto index = build_snapshot(graph, make_tdeg(), cones, make_clique());
  const auto path = write_temp(serialized_bytes(index), "mmap-equiv.asrk");

  auto mapped = try_map_snapshot_file(path);
  ASSERT_TRUE(mapped.ok()) << mapped.error().context;
  EXPECT_TRUE(mapped.value().mmap_backed());
  EXPECT_FALSE(index.mmap_backed());
  expect_equivalent(mapped.value(), graph, cones);
  EXPECT_EQ(to_vec(mapped.value().clique()), make_clique());
  EXPECT_EQ(mapped.value().transit_degree(Asn(1)), 3u);
  EXPECT_EQ(mapped.value().rank(Asn(1)), index.rank(Asn(1)));
  // The mapped sections reserialize to the exact bytes on disk.
  EXPECT_EQ(serialized_bytes(mapped.value()), serialized_bytes(index));
  std::remove(path.c_str());
}

TEST(SnapshotMmap, MapFileReturnsTypedErrors) {
  auto missing = try_map_snapshot_file(testing::TempDir() + "/missing-map.asrk");
  ASSERT_FALSE(missing.ok());
  EXPECT_EQ(missing.error().code, ErrorCode::kNotFound);
  EXPECT_NE(missing.error().context.find("cannot open"), std::string::npos);

  // An empty file maps fine but is not a snapshot.
  auto empty = try_map_snapshot_file(write_temp({}, "empty-map.asrk"));
  ASSERT_FALSE(empty.ok());
  EXPECT_EQ(empty.error().code, ErrorCode::kTruncated);

  auto garbage = try_map_snapshot_file(write_temp(
      {'n', 'o', 't', ' ', 'a', ' ', 's', 'n', 'a', 'p'}, "garbage-map.asrk"));
  ASSERT_FALSE(garbage.ok());
  EXPECT_NE(garbage.error().code, ErrorCode::kNotFound);
}

TEST(SnapshotMmap, MapFileRejectsEveryTruncation) {
  // The heap loader's truncation fuzz, replayed through mmap: every proper
  // prefix must fail with a typed error, never crash, never validate.
  const auto bytes = serialized_bytes(make_index());
  ASSERT_GT(bytes.size(), 0u);
  for (std::size_t cut = 0; cut < bytes.size(); ++cut) {
    const auto path = write_temp(
        std::vector<std::uint8_t>(bytes.begin(), bytes.begin() + cut),
        "mmap-truncate.asrk");
    auto mapped = try_map_snapshot_file(path);
    ASSERT_FALSE(mapped.ok()) << "prefix of " << cut << " bytes accepted";
    EXPECT_TRUE(mapped.error().code == ErrorCode::kTruncated ||
                mapped.error().code == ErrorCode::kCorrupt ||
                mapped.error().code == ErrorCode::kUnsupported)
        << "cut " << cut << ": " << mapped.error().context;
    EXPECT_FALSE(mapped.error().context.empty());
  }
}

TEST(SnapshotMmap, MapFileDetectsAnyMeaningfulByteFlip) {
  // Byte-flip fuzz over the mmap path.  The mapped loader skips the deep
  // per-link re-validation (the CRCs attest it), so the bar is exactly the
  // heap loader's: every flip is either rejected with a typed error or —
  // checksum-free padding only — leaves all answers byte-identical.
  const auto pristine_bytes = serialized_bytes(make_index());
  std::size_t undetected = 0;
  for (std::size_t i = 0; i < pristine_bytes.size(); ++i) {
    auto bytes = pristine_bytes;
    bytes[i] ^= 0xFF;
    const auto path = write_temp(bytes, "mmap-flip.asrk");
    auto mapped = try_map_snapshot_file(path);
    if (mapped.ok()) {
      ++undetected;
      EXPECT_EQ(serialized_bytes(mapped.value()), pristine_bytes)
          << "flip at offset " << i << " silently changed answers";
    } else {
      EXPECT_FALSE(mapped.error().context.empty()) << "flip at offset " << i;
    }
  }
  EXPECT_LT(undetected, 8 * (kSectionCount + 1));
}

TEST(SnapshotMmap, MapFileAndReadFileRejectIdentically) {
  // Differential fuzz: both loaders must accept/reject the same inputs.
  // (Error messages may differ in depth — the mapped loader stops at the
  // first container defect — but the verdict may not.)
  const auto pristine = serialized_bytes(make_index());
  for (std::size_t i = 0; i < pristine.size(); i += 3) {
    auto bytes = pristine;
    bytes[i] ^= 0xFF;
    const auto path = write_temp(bytes, "mmap-vs-heap.asrk");
    const bool heap_ok = try_read_snapshot_file(path).ok();
    const bool mmap_ok = try_map_snapshot_file(path).ok();
    EXPECT_EQ(heap_ok, mmap_ok) << "loaders disagree on flip at offset " << i;
  }
}

TEST(SnapshotMmap, MappedIndexSurvivesMoves) {
  // The registry moves indexes into shared_ptrs; the mapping (and the spans
  // into it) must follow the move.
  const auto path = write_temp(serialized_bytes(make_index()), "mmap-move.asrk");
  auto mapped = try_map_snapshot_file(path);
  ASSERT_TRUE(mapped.ok());
  SnapshotIndex moved = std::move(mapped).value();
  SnapshotIndex again = std::move(moved);
  EXPECT_TRUE(again.mmap_backed());
  EXPECT_EQ(again.cone_size(Asn(1)), 4u);
  EXPECT_EQ(serialized_bytes(again), serialized_bytes(make_index()));
  std::remove(path.c_str());
}

TEST(Snapshot, TryReadSnapshotFileReturnsTypedErrors) {
  auto missing =
      try_read_snapshot_file(testing::TempDir() + "/definitely-missing.asrk");
  ASSERT_FALSE(missing.ok());
  EXPECT_EQ(missing.error().code, ErrorCode::kNotFound);
  EXPECT_NE(missing.error().context.find("cannot open"), std::string::npos);

  const std::string path = testing::TempDir() + "/result-roundtrip.asrk";
  write_snapshot_file(make_index(), path);
  auto loaded = try_read_snapshot_file(path);
  ASSERT_TRUE(loaded.ok()) << loaded.error().context;
  EXPECT_EQ(serialized_bytes(loaded.value()), serialized_bytes(make_index()));

  // Corrupt bytes travel the Result rail as kCorrupt, not an exception.
  {
    std::ofstream out(path, std::ios::binary);
    out << "not a snapshot";
  }
  auto corrupt = try_read_snapshot_file(path);
  ASSERT_FALSE(corrupt.ok());
  EXPECT_NE(corrupt.error().code, ErrorCode::kNotFound);
}

// ------------------------------------------------------- multi-algorithm --

// A second algorithm's view of the same topology: 1->5 is gone and the 4-5
// peering is inverted into 5->4 transit, so the sections genuinely differ
// per slot (different link sets, cones, and ranks).
SnapshotIndex make_variant_index() {
  AsGraph graph;
  graph.add_p2p(Asn(1), Asn(2));
  graph.add_p2c(Asn(1), Asn(3));
  graph.add_p2c(Asn(2), Asn(3));
  graph.add_p2c(Asn(3), Asn(4));
  graph.add_p2c(Asn(5), Asn(4));
  graph.add_p2c(Asn(2), Asn(6));
  graph.add_s2s(Asn(6), Asn(7));
  return build_snapshot(graph, make_tdeg(), core::recursive_cone(graph),
                        make_clique());
}

SnapshotIndex make_multi_index() {
  std::vector<std::pair<std::string, SnapshotIndex>> parts;
  parts.emplace_back("asrank", make_index());
  parts.emplace_back("gao2001", make_variant_index());
  auto combined = combine_snapshots(std::move(parts));
  EXPECT_TRUE(combined.ok());
  return std::move(combined).value();
}

TEST(SnapshotMultiAlgo, SingleAlgorithmIndexesLoadAsAsrank) {
  // Back compat: pre-registry files carry no directory section and must keep
  // identifying as the implicit {"asrank"} after a round trip.
  const auto index = make_index();
  EXPECT_EQ(index.algorithm_count(), 1u);
  ASSERT_EQ(index.algorithm_names().size(), 1u);
  EXPECT_EQ(index.algorithm_names()[0], "asrank");
  EXPECT_EQ(index.algorithm_slot("asrank"), 0u);
  EXPECT_EQ(index.algorithm_slot("gao2001"), std::nullopt);
  const auto reread = read_bytes(serialized_bytes(index));
  EXPECT_EQ(reread.algorithm_count(), 1u);
  EXPECT_EQ(reread.algorithm_names()[0], "asrank");
}

TEST(SnapshotMultiAlgo, OnePartAsrankCombineMatchesPlainWriterByteForByte) {
  std::vector<std::pair<std::string, SnapshotIndex>> parts;
  parts.emplace_back("asrank", make_index());
  auto combined = combine_snapshots(std::move(parts));
  ASSERT_TRUE(combined.ok()) << combined.error().context;
  EXPECT_EQ(serialized_bytes(combined.value()), serialized_bytes(make_index()));
}

TEST(SnapshotMultiAlgo, CombineRoundTripsEachSectionByteIdentical) {
  const auto combined = make_multi_index();
  ASSERT_EQ(combined.algorithm_count(), 2u);
  EXPECT_EQ(combined.algorithm_names()[0], "asrank");
  EXPECT_EQ(combined.algorithm_names()[1], "gao2001");
  EXPECT_EQ(combined.algorithm_slot("gao2001"), 1u);

  // Slot 0 is served by the combined index's own accessors.
  EXPECT_EQ(combined.cone_size(Asn(1)), make_index().cone_size(Asn(1)));
  EXPECT_EQ(&combined.algorithm_at(0), &combined);

  // Decode/encode reproduces the exact bytes, sections and directory alike.
  const auto bytes = serialized_bytes(combined);
  const auto reread = read_bytes(bytes);
  EXPECT_EQ(serialized_bytes(reread), bytes);
  ASSERT_EQ(reread.algorithm_count(), 2u);

  // Each slot answers as the original part did, and the extra slot — a
  // self-contained single-algorithm index — reserializes byte-identically
  // to a one-part combine of the original under the same name.
  const auto variant = make_variant_index();
  const auto& slot1 = reread.algorithm_at(1);
  EXPECT_EQ(slot1.cone_size(Asn(1)), variant.cone_size(Asn(1)));
  EXPECT_EQ(slot1.relationship(Asn(4), Asn(5)), variant.relationship(Asn(4), Asn(5)));
  EXPECT_EQ(slot1.rank(Asn(1)), variant.rank(Asn(1)));
  std::vector<std::pair<std::string, SnapshotIndex>> renamed;
  renamed.emplace_back("gao2001", make_variant_index());
  auto expected = combine_snapshots(std::move(renamed));
  ASSERT_TRUE(expected.ok());
  EXPECT_EQ(serialized_bytes(slot1), serialized_bytes(expected.value()));
}

TEST(SnapshotMultiAlgo, MappedMultiAlgorithmFileMatchesHeapRead) {
  const auto combined = make_multi_index();
  const auto bytes = serialized_bytes(combined);
  const auto path = write_temp(bytes, "mmap-multi.asrk");

  auto mapped = try_map_snapshot_file(path);
  ASSERT_TRUE(mapped.ok()) << mapped.error().context;
  EXPECT_TRUE(mapped.value().mmap_backed());
  ASSERT_EQ(mapped.value().algorithm_count(), 2u);
  EXPECT_EQ(mapped.value().algorithm_names()[1], "gao2001");
  // Extra slots share the file mapping and answer like the heap load.
  const auto& heap_slot1 = combined.algorithm_at(1);
  const auto& mmap_slot1 = mapped.value().algorithm_at(1);
  EXPECT_TRUE(mmap_slot1.mmap_backed());
  for (const Asn as : {Asn(1), Asn(2), Asn(3), Asn(4), Asn(5)}) {
    EXPECT_EQ(mmap_slot1.cone_size(as), heap_slot1.cone_size(as)) << as.str();
    EXPECT_EQ(mmap_slot1.rank(as), heap_slot1.rank(as)) << as.str();
  }
  EXPECT_EQ(mmap_slot1.relationship(Asn(4), Asn(5)), heap_slot1.relationship(Asn(4), Asn(5)));
  // And the mapped index reserializes to the exact bytes on disk.
  EXPECT_EQ(serialized_bytes(mapped.value()), bytes);
  std::remove(path.c_str());
}

TEST(SnapshotMultiAlgo, MappedMultiAlgorithmFileRejectsEveryTruncation) {
  const auto bytes = serialized_bytes(make_multi_index());
  // Step 7 keeps the fuzz tractable; byte 0 and every section boundary
  // region still get hit across the file.
  for (std::size_t cut = 0; cut < bytes.size(); cut += 7) {
    const auto path = write_temp(
        std::vector<std::uint8_t>(bytes.begin(), bytes.begin() + cut),
        "mmap-multi-truncate.asrk");
    auto mapped = try_map_snapshot_file(path);
    ASSERT_FALSE(mapped.ok()) << "prefix of " << cut << " bytes accepted";
    EXPECT_FALSE(mapped.error().context.empty());
    EXPECT_FALSE(try_read_snapshot_file(path).ok()) << "heap loader at " << cut;
  }
}

TEST(SnapshotMultiAlgo, CombineRejectsInvalidInputs) {
  const auto expect_rejected = [](std::vector<std::pair<std::string, SnapshotIndex>> parts,
                                  const std::string& needle) {
    auto combined = combine_snapshots(std::move(parts));
    ASSERT_FALSE(combined.ok()) << "combine accepted: " << needle;
    EXPECT_EQ(combined.error().code, ErrorCode::kInvalidArgument);
    EXPECT_NE(combined.error().context.find(needle), std::string::npos)
        << combined.error().context;
  };

  expect_rejected({}, "no parts");

  std::vector<std::pair<std::string, SnapshotIndex>> dup;
  dup.emplace_back("asrank", make_index());
  dup.emplace_back("asrank", make_variant_index());
  expect_rejected(std::move(dup), "duplicate algorithm name 'asrank'");

  std::vector<std::pair<std::string, SnapshotIndex>> bad_name;
  bad_name.emplace_back("not a name", make_index());
  expect_rejected(std::move(bad_name), "invalid algorithm name");

  std::vector<std::pair<std::string, SnapshotIndex>> empty_name;
  empty_name.emplace_back("", make_index());
  expect_rejected(std::move(empty_name), "invalid algorithm name");

  std::vector<std::pair<std::string, SnapshotIndex>> too_many;
  for (std::size_t i = 0; i < kMaxAlgorithms + 1; ++i) {
    too_many.emplace_back("algo" + std::to_string(i), make_index());
  }
  expect_rejected(std::move(too_many), "more than");

  std::vector<std::pair<std::string, SnapshotIndex>> nested;
  nested.emplace_back("outer", make_multi_index());
  expect_rejected(std::move(nested), "already multi-algorithm");
}

}  // namespace
}  // namespace asrank::snapshot
