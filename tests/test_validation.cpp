#include <gtest/gtest.h>

#include <sstream>

#include "bgpsim/observation.h"
#include "topogen/topogen.h"
#include "validation/communities.h"
#include "validation/corpus.h"
#include "validation/ppv.h"
#include "validation/rpsl.h"
#include "validation/synthesize.h"

namespace asrank::validation {
namespace {

// -------------------------------------------------------------- corpus ----

TEST(Corpus, AddAndLookupOrderIndependent) {
  ValidationCorpus corpus;
  corpus.add({Asn(1), Asn(2), LinkType::kP2C, Source::kRpsl});
  const auto hit = corpus.lookup(Asn(2), Asn(1));
  ASSERT_TRUE(hit);
  EXPECT_EQ(hit->a, Asn(1));
  EXPECT_EQ(hit->type, LinkType::kP2C);
  EXPECT_FALSE(corpus.lookup(Asn(1), Asn(3)));
}

TEST(Corpus, TrustOrderResolvesConflicts) {
  ValidationCorpus corpus;
  corpus.add({Asn(1), Asn(2), LinkType::kP2P, Source::kRpsl});
  corpus.add({Asn(1), Asn(2), LinkType::kP2C, Source::kDirectReport});
  EXPECT_EQ(corpus.conflicts(), 1u);
  EXPECT_EQ(corpus.lookup(Asn(1), Asn(2))->type, LinkType::kP2C);
  EXPECT_EQ(corpus.lookup(Asn(1), Asn(2))->source, Source::kDirectReport);
  // A later, less-trusted conflicting claim does not displace it.
  corpus.add({Asn(1), Asn(2), LinkType::kP2P, Source::kCommunities});
  EXPECT_EQ(corpus.lookup(Asn(1), Asn(2))->type, LinkType::kP2C);
  EXPECT_EQ(corpus.conflicts(), 2u);
}

TEST(Corpus, AgreementIsNotConflict) {
  ValidationCorpus corpus;
  corpus.add({Asn(1), Asn(2), LinkType::kP2C, Source::kRpsl});
  corpus.add({Asn(1), Asn(2), LinkType::kP2C, Source::kCommunities});
  EXPECT_EQ(corpus.conflicts(), 0u);
  EXPECT_EQ(corpus.size(), 1u);
}

TEST(Corpus, P2pOrientationIrrelevant) {
  ValidationCorpus corpus;
  corpus.add({Asn(1), Asn(2), LinkType::kP2P, Source::kRpsl});
  corpus.add({Asn(2), Asn(1), LinkType::kP2P, Source::kDirectReport});
  EXPECT_EQ(corpus.conflicts(), 0u);
}

TEST(Corpus, SourceCountsAndDeterministicList) {
  ValidationCorpus corpus;
  corpus.add({Asn(1), Asn(2), LinkType::kP2C, Source::kRpsl});
  corpus.add({Asn(3), Asn(4), LinkType::kP2P, Source::kDirectReport});
  const auto counts = corpus.source_counts();
  EXPECT_EQ(counts.at(Source::kRpsl), 1u);
  EXPECT_EQ(counts.at(Source::kDirectReport), 1u);
  const auto all = corpus.assertions();
  ASSERT_EQ(all.size(), 2u);
  EXPECT_EQ(all[0].a, Asn(1));  // link-key order
}

// ---------------------------------------------------------------- rpsl ----

TEST(Rpsl, ParsesAutNumObjects) {
  std::stringstream text(
      "aut-num: AS64500\n"
      "as-name: EXAMPLE\n"
      "import: from AS64496 accept ANY\n"
      "export: to AS64496 announce AS64500\n"
      "\n"
      "aut-num: AS64501\n"
      "import: from AS64502 accept AS64502\n"
      "export: to AS64502 announce AS64501\n");
  const auto objects = parse_rpsl(text);
  ASSERT_EQ(objects.size(), 2u);
  EXPECT_EQ(objects[0].as, Asn(64500));
  ASSERT_EQ(objects[0].policies.size(), 1u);
  EXPECT_TRUE(objects[0].policies[0].import_any);
  EXPECT_FALSE(objects[0].policies[0].export_any);
}

TEST(Rpsl, ImportAnyMeansProvider) {
  std::stringstream text(
      "aut-num: AS100\n"
      "import: from AS200 accept ANY\n"
      "export: to AS200 announce AS100\n");
  const auto assertions = assertions_from_rpsl(parse_rpsl(text));
  ASSERT_EQ(assertions.size(), 1u);
  EXPECT_EQ(assertions[0].type, LinkType::kP2C);
  EXPECT_EQ(assertions[0].a, Asn(200));  // provider
  EXPECT_EQ(assertions[0].b, Asn(100));
  EXPECT_EQ(assertions[0].source, Source::kRpsl);
}

TEST(Rpsl, ExportAnyMeansCustomer) {
  std::stringstream text(
      "aut-num: AS100\n"
      "import: from AS300 accept AS300\n"
      "export: to AS300 announce ANY\n");
  const auto assertions = assertions_from_rpsl(parse_rpsl(text));
  ASSERT_EQ(assertions.size(), 1u);
  EXPECT_EQ(assertions[0].type, LinkType::kP2C);
  EXPECT_EQ(assertions[0].a, Asn(100));  // provider
  EXPECT_EQ(assertions[0].b, Asn(300));
}

TEST(Rpsl, SpecificBothWaysMeansPeer) {
  std::stringstream text(
      "aut-num: AS100\n"
      "import: from AS400 accept AS400\n"
      "export: to AS400 announce AS100\n");
  const auto assertions = assertions_from_rpsl(parse_rpsl(text));
  ASSERT_EQ(assertions.size(), 1u);
  EXPECT_EQ(assertions[0].type, LinkType::kP2P);
}

TEST(Rpsl, MutualAnyIsAmbiguousAndSkipped) {
  std::stringstream text(
      "aut-num: AS100\n"
      "import: from AS500 accept ANY\n"
      "export: to AS500 announce ANY\n");
  EXPECT_TRUE(assertions_from_rpsl(parse_rpsl(text)).empty());
}

TEST(Rpsl, OneSidedPolicySkipped) {
  std::stringstream text(
      "aut-num: AS100\n"
      "import: from AS600 accept ANY\n");
  EXPECT_TRUE(assertions_from_rpsl(parse_rpsl(text)).empty());
}

TEST(Rpsl, IgnoresCommentsAndUnknownAttributes) {
  std::stringstream text(
      "% RIPE database comment\n"
      "aut-num: AS100\n"
      "descr: an example network\n"
      "mnt-by: MAINT-EX\n"
      "# another comment\n"
      "import: from AS200 accept ANY\n"
      "export: to AS200 announce AS100\n");
  EXPECT_EQ(assertions_from_rpsl(parse_rpsl(text)).size(), 1u);
}

TEST(Rpsl, MalformedLinesThrow) {
  std::stringstream bad_aut("aut-num: banana\n");
  EXPECT_THROW((void)parse_rpsl(bad_aut), std::runtime_error);
  std::stringstream bad_import(
      "aut-num: AS100\n"
      "import: junk here\n");
  EXPECT_THROW((void)parse_rpsl(bad_import), std::runtime_error);
}

TEST(Rpsl, WriteParseRoundTrip) {
  std::vector<AutNum> objects(1);
  objects[0].as = Asn(64500);
  objects[0].policies.push_back(RpslPolicy{Asn(64496), true, false, true, true});
  objects[0].policies.push_back(RpslPolicy{Asn(64497), false, true, true, true});
  objects[0].policies.push_back(RpslPolicy{Asn(64498), false, false, true, true});
  std::stringstream text;
  write_rpsl(objects, text);
  const auto parsed = parse_rpsl(text);
  ASSERT_EQ(parsed.size(), 1u);
  ASSERT_EQ(parsed[0].policies.size(), 3u);
  const auto assertions = assertions_from_rpsl(parsed);
  ASSERT_EQ(assertions.size(), 3u);
  EXPECT_EQ(assertions[0].a, Asn(64496));  // provider of 64500
  EXPECT_EQ(assertions[1].a, Asn(64500));  // provider of 64497
  EXPECT_EQ(assertions[2].type, LinkType::kP2P);
}

// ----------------------------------------------------------- community ----

TEST(Communities, DecodeEachTag) {
  ConventionMap conventions;
  conventions.emplace(Asn(100), CommunityConvention{});
  auto route_with = [&](std::uint16_t value) {
    TaggedRoute route;
    route.path = AsPath{100, 200, 300};
    route.communities = {mrt::Community{100, value}};
    return route;
  };
  {
    const auto a = assertions_from_communities({route_with(100)}, conventions);
    ASSERT_EQ(a.size(), 1u);
    EXPECT_EQ(a[0].type, LinkType::kP2C);
    EXPECT_EQ(a[0].a, Asn(100));  // 200 is 100's customer
    EXPECT_EQ(a[0].b, Asn(200));
  }
  {
    const auto a = assertions_from_communities({route_with(300)}, conventions);
    ASSERT_EQ(a.size(), 1u);
    EXPECT_EQ(a[0].a, Asn(200));  // 200 provides to 100
    EXPECT_EQ(a[0].b, Asn(100));
  }
  {
    const auto a = assertions_from_communities({route_with(200)}, conventions);
    ASSERT_EQ(a.size(), 1u);
    EXPECT_EQ(a[0].type, LinkType::kP2P);
  }
  {
    const auto a = assertions_from_communities({route_with(999)}, conventions);
    EXPECT_TRUE(a.empty());  // unknown value
  }
}

TEST(Communities, UnknownTaggerIgnored) {
  ConventionMap conventions;  // empty
  TaggedRoute route;
  route.path = AsPath{100, 200};
  route.communities = {mrt::Community{100, 100}};
  EXPECT_TRUE(assertions_from_communities({route}, conventions).empty());
}

TEST(Communities, TaggerMidPath) {
  ConventionMap conventions;
  conventions.emplace(Asn(200), CommunityConvention{});
  TaggedRoute route;
  route.path = AsPath{100, 200, 300};
  route.communities = {mrt::Community{200, 100}};
  const auto a = assertions_from_communities({route}, conventions);
  ASSERT_EQ(a.size(), 1u);
  EXPECT_EQ(a[0].a, Asn(200));
  EXPECT_EQ(a[0].b, Asn(300));
}

TEST(Communities, TaggerLastHopYieldsNothing) {
  ConventionMap conventions;
  conventions.emplace(Asn(300), CommunityConvention{});
  TaggedRoute route;
  route.path = AsPath{100, 200, 300};
  route.communities = {mrt::Community{300, 100}};
  EXPECT_TRUE(assertions_from_communities({route}, conventions).empty());
}

// ----------------------------------------------------------------- ppv ----

TEST(Ppv, ScoresAgainstCorpus) {
  AsGraph inferred;
  inferred.add_p2c(Asn(1), Asn(2));  // correct
  inferred.add_p2c(Asn(3), Asn(4));  // wrong direction
  inferred.add_p2p(Asn(5), Asn(6));  // correct
  inferred.add_p2p(Asn(7), Asn(8));  // not validated
  ValidationCorpus corpus;
  corpus.add({Asn(1), Asn(2), LinkType::kP2C, Source::kDirectReport});
  corpus.add({Asn(4), Asn(3), LinkType::kP2C, Source::kRpsl});
  corpus.add({Asn(5), Asn(6), LinkType::kP2P, Source::kCommunities});
  const auto report = evaluate_ppv(inferred, corpus);
  EXPECT_EQ(report.inferred_links, 4u);
  EXPECT_EQ(report.validated_links, 3u);
  EXPECT_NEAR(report.coverage(), 0.75, 1e-9);
  EXPECT_EQ(report.c2p.validated, 2u);
  EXPECT_EQ(report.c2p.correct, 1u);
  EXPECT_EQ(report.p2p.validated, 1u);
  EXPECT_EQ(report.p2p.correct, 1u);
  EXPECT_NEAR(report.overall.ppv(), 2.0 / 3.0, 1e-9);
  // Per-source cells.
  const auto& direct_c2p = report.cells[static_cast<std::size_t>(Source::kDirectReport)][0];
  EXPECT_EQ(direct_c2p.validated, 1u);
  EXPECT_EQ(direct_c2p.correct, 1u);
}

TEST(Ppv, EmptyCorpusGivesZeroCoverage) {
  AsGraph inferred;
  inferred.add_p2p(Asn(1), Asn(2));
  const auto report = evaluate_ppv(inferred, ValidationCorpus{});
  EXPECT_EQ(report.validated_links, 0u);
  EXPECT_DOUBLE_EQ(report.coverage(), 0.0);
  EXPECT_DOUBLE_EQ(report.overall.ppv(), 0.0);
}

TEST(Ppv, TruthAccuracyCategories) {
  AsGraph truth;
  truth.add_p2c(Asn(1), Asn(2));
  truth.add_p2p(Asn(3), Asn(4));
  truth.add_s2s(Asn(5), Asn(6));

  AsGraph inferred;
  inferred.add_p2c(Asn(1), Asn(2));  // correct c2p
  inferred.add_p2c(Asn(3), Asn(4));  // true p2p inferred c2p: wrong
  inferred.add_p2p(Asn(5), Asn(6));  // sibling: excluded
  inferred.add_p2p(Asn(7), Asn(8));  // unknown link

  const auto result = evaluate_against_truth(inferred, truth);
  EXPECT_EQ(result.compared, 3u);
  EXPECT_EQ(result.unknown_links, 1u);
  EXPECT_EQ(result.s2s_links, 1u);
  EXPECT_EQ(result.c2p.validated, 2u);
  EXPECT_EQ(result.c2p.correct, 1u);
  EXPECT_EQ(result.p2p.validated, 0u);
  EXPECT_DOUBLE_EQ(result.accuracy(), 0.5);
}

TEST(Ppv, DirectionErrorCounted) {
  AsGraph truth;
  truth.add_p2c(Asn(1), Asn(2));
  AsGraph inferred;
  inferred.add_p2c(Asn(2), Asn(1));  // flipped
  const auto result = evaluate_against_truth(inferred, truth);
  EXPECT_EQ(result.direction_errors, 1u);
  EXPECT_EQ(result.c2p.correct, 0u);
}

// ------------------------------------------------------------ synthesis ---

class SynthesisTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    truth_ = new topogen::GroundTruth(topogen::generate(topogen::GenParams::preset("small")));
    bgpsim::ObservationParams params;
    params.full_vps = 10;
    params.partial_vps = 3;
    observation_ = new bgpsim::Observation(bgpsim::observe(*truth_, params));
  }
  static void TearDownTestSuite() {
    delete truth_;
    delete observation_;
    truth_ = nullptr;
    observation_ = nullptr;
  }
  static topogen::GroundTruth* truth_;
  static bgpsim::Observation* observation_;
};

topogen::GroundTruth* SynthesisTest::truth_ = nullptr;
bgpsim::Observation* SynthesisTest::observation_ = nullptr;

TEST_F(SynthesisTest, ProducesAllThreeSources) {
  const auto result = synthesize_validation(*truth_, *observation_, SynthesisParams{});
  EXPECT_GT(result.direct_assertions, 0u);
  EXPECT_GT(result.rpsl_assertions, 0u);
  EXPECT_GT(result.community_assertions, 0u);
  const auto counts = result.corpus.source_counts();
  EXPECT_GT(counts.at(Source::kDirectReport), 0u);
  EXPECT_GT(counts.at(Source::kRpsl), 0u);
  EXPECT_GT(counts.at(Source::kCommunities), 0u);
}

TEST_F(SynthesisTest, DeterministicForSeed) {
  const auto a = synthesize_validation(*truth_, *observation_, SynthesisParams{});
  const auto b = synthesize_validation(*truth_, *observation_, SynthesisParams{});
  EXPECT_EQ(a.corpus.assertions(), b.corpus.assertions());
}

TEST_F(SynthesisTest, MostAssertionsMatchGroundTruth) {
  const auto result = synthesize_validation(*truth_, *observation_, SynthesisParams{});
  std::size_t correct = 0, total = 0;
  for (const auto& assertion : result.corpus.assertions()) {
    const auto link = truth_->graph.link(assertion.a, assertion.b);
    if (!link) continue;  // stale RPSL ghost
    ++total;
    const bool match = link->type == assertion.type &&
                       (assertion.type != LinkType::kP2C || link->a == assertion.a);
    if (match) ++correct;
  }
  ASSERT_GT(total, 0u);
  EXPECT_GT(static_cast<double>(correct) / static_cast<double>(total), 0.95);
}

TEST_F(SynthesisTest, CoverageScalesWithParams) {
  SynthesisParams sparse;
  sparse.direct_link_fraction = 0.01;
  sparse.rpsl_as_fraction = 0.05;
  sparse.community_vp_fraction = 0.1;
  SynthesisParams dense;
  dense.direct_link_fraction = 0.3;
  dense.rpsl_as_fraction = 0.6;
  dense.community_vp_fraction = 1.0;
  const auto a = synthesize_validation(*truth_, *observation_, sparse);
  const auto b = synthesize_validation(*truth_, *observation_, dense);
  EXPECT_LT(a.corpus.size(), b.corpus.size());
}

TEST_F(SynthesisTest, RpslObjectsRoundTripThroughText) {
  const auto result = synthesize_validation(*truth_, *observation_, SynthesisParams{});
  ASSERT_FALSE(result.rpsl_objects.empty());
  std::stringstream text;
  write_rpsl(result.rpsl_objects, text);
  const auto parsed = parse_rpsl(text);
  EXPECT_EQ(parsed.size(), result.rpsl_objects.size());
}


// ------------------------------------------------------------- IRR synth --

TEST_F(SynthesisTest, IrrRouteObjectsMostlyCorrect) {
  const auto irr = synthesize_irr(*truth_, IrrSynthesisParams{});
  ASSERT_FALSE(irr.routes.empty());
  std::size_t correct = 0;
  for (const RouteObject& route : irr.routes) {
    const auto it = truth_->originated.find(route.origin);
    if (it == truth_->originated.end()) continue;
    if (std::find(it->second.begin(), it->second.end(), route.prefix) != it->second.end()) {
      ++correct;
    }
  }
  EXPECT_GT(static_cast<double>(correct) / static_cast<double>(irr.routes.size()), 0.95);
}

TEST_F(SynthesisTest, IrrCoverageScalesWithFraction) {
  IrrSynthesisParams sparse;
  sparse.route_object_fraction = 0.1;
  IrrSynthesisParams dense;
  dense.route_object_fraction = 0.9;
  EXPECT_LT(synthesize_irr(*truth_, sparse).routes.size(),
            synthesize_irr(*truth_, dense).routes.size());
}

TEST_F(SynthesisTest, IrrCustomerSetsMatchGroundTruth) {
  IrrSynthesisParams params;
  params.customer_set_fraction = 1.0;  // register everyone
  const auto irr = synthesize_irr(*truth_, params);
  ASSERT_FALSE(irr.as_sets.empty());
  for (const auto& [name, set] : irr.as_sets) {
    const auto colon = name.find(':');
    const auto owner = Asn::parse(name.substr(0, colon));
    ASSERT_TRUE(owner) << name;
    const auto customers = truth_->graph.customers(*owner);
    std::vector<Asn> want(customers.begin(), customers.end());
    std::sort(want.begin(), want.end());
    EXPECT_EQ(set.asn_members, want) << name;
  }
}

TEST_F(SynthesisTest, IrrDeterministic) {
  const auto a = synthesize_irr(*truth_, IrrSynthesisParams{});
  const auto b = synthesize_irr(*truth_, IrrSynthesisParams{});
  EXPECT_EQ(a.routes, b.routes);
  EXPECT_EQ(a.as_sets.size(), b.as_sets.size());
}

TEST_F(SynthesisTest, IrrRoundTripsThroughText) {
  const auto irr = synthesize_irr(*truth_, IrrSynthesisParams{});
  std::stringstream text;
  write_irr(irr, text);
  const auto parsed = parse_irr(text);
  EXPECT_EQ(parsed.routes.size(), irr.routes.size());
  EXPECT_EQ(parsed.as_sets.size(), irr.as_sets.size());
}

}  // namespace
}  // namespace asrank::validation
