// Unit and stress tests for the task-serving runtime primitives
// (src/runtime): the MPSC task queue, the bounded MPMC admission queue, the
// timer heap, the reactor (both backends), epoch-based reclamation, and the
// per-core TaskScheduler. The stress tests are deliberately small enough to
// run under ThreadSanitizer in CI (the .github tsan job) yet still exercise
// real cross-thread interleavings.
#include <gtest/gtest.h>

#include <fcntl.h>
#include <poll.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <memory>
#include <set>
#include <thread>
#include <vector>

#include "core/cones.h"
#include "obs/metrics.h"
#include "runtime/ebr.h"
#include "runtime/mpmc_queue.h"
#include "runtime/mpsc_queue.h"
#include "runtime/reactor.h"
#include "runtime/scheduler.h"
#include "runtime/timer_queue.h"
#include "serve/snapshot_registry.h"
#include "snapshot/snapshot.h"

namespace asrank::runtime {
namespace {

using namespace std::chrono_literals;

// ------------------------------------------------------------ MPSC queue --

struct Node {
  std::atomic<Node*> next{nullptr};
  int producer = 0;
  int value = 0;
};

TEST(MpscQueue, FifoSingleThread) {
  MpscQueue<Node> queue;
  EXPECT_TRUE(queue.empty());
  EXPECT_EQ(queue.pop(), nullptr);

  std::vector<Node> nodes(16);
  for (int i = 0; i < 16; ++i) {
    nodes[i].value = i;
    queue.push(&nodes[i]);
  }
  EXPECT_FALSE(queue.empty());
  for (int i = 0; i < 16; ++i) {
    Node* node = queue.pop();
    ASSERT_NE(node, nullptr);
    EXPECT_EQ(node->value, i);
  }
  EXPECT_EQ(queue.pop(), nullptr);
  EXPECT_TRUE(queue.empty());
}

TEST(MpscQueue, InterleavedPushPopReusesNodes) {
  MpscQueue<Node> queue;
  Node a, b;
  a.value = 1;
  b.value = 2;
  queue.push(&a);
  EXPECT_EQ(queue.pop(), &a);
  queue.push(&b);
  EXPECT_EQ(queue.pop(), &b);
  EXPECT_EQ(queue.pop(), nullptr);
  queue.push(&a);  // a node may be re-pushed after it was popped
  EXPECT_EQ(queue.pop(), &a);
}

TEST(MpscQueue, MultiProducerStressDeliversEveryNodeInProducerOrder) {
  constexpr int kProducers = 4;
  constexpr int kPerProducer = 5000;
  MpscQueue<Node> queue;

  std::vector<std::deque<Node>> nodes(kProducers);
  for (int p = 0; p < kProducers; ++p) {
    nodes[p].resize(kPerProducer);
    for (int i = 0; i < kPerProducer; ++i) {
      nodes[p][i].producer = p;
      nodes[p][i].value = i;
    }
  }

  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&queue, &nodes, p] {
      for (int i = 0; i < kPerProducer; ++i) queue.push(&nodes[p][i]);
    });
  }

  // Single consumer: spin-pop (transient empties while a producer is between
  // its two stores are expected and must resolve).
  std::vector<int> next_expected(kProducers, 0);
  int received = 0;
  while (received < kProducers * kPerProducer) {
    Node* node = queue.pop();
    if (node == nullptr) continue;
    // Per-producer FIFO: each producer's nodes arrive in push order.
    EXPECT_EQ(node->value, next_expected[node->producer]);
    ++next_expected[node->producer];
    ++received;
  }
  for (auto& t : producers) t.join();
  EXPECT_EQ(queue.pop(), nullptr);
  for (int p = 0; p < kProducers; ++p) EXPECT_EQ(next_expected[p], kPerProducer);
}

// ------------------------------------------------------------ MPMC queue --

TEST(BoundedMpmcQueue, CapacityRoundsUpToPowerOfTwo) {
  EXPECT_EQ(BoundedMpmcQueue<int>(1).capacity(), 2u);
  EXPECT_EQ(BoundedMpmcQueue<int>(2).capacity(), 2u);
  EXPECT_EQ(BoundedMpmcQueue<int>(3).capacity(), 4u);
  EXPECT_EQ(BoundedMpmcQueue<int>(256).capacity(), 256u);
  EXPECT_EQ(BoundedMpmcQueue<int>(300).capacity(), 512u);
}

TEST(BoundedMpmcQueue, FifoAndFullEmptyBoundaries) {
  BoundedMpmcQueue<int> queue(4);
  EXPECT_EQ(queue.try_pop(), std::nullopt);
  for (int i = 0; i < 4; ++i) EXPECT_TRUE(queue.try_push(i));
  EXPECT_FALSE(queue.try_push(99));  // full
  for (int i = 0; i < 4; ++i) {
    auto v = queue.try_pop();
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(*v, i);
  }
  EXPECT_EQ(queue.try_pop(), std::nullopt);
  // The ring is reusable across laps.
  EXPECT_TRUE(queue.try_push(42));
  EXPECT_EQ(queue.try_pop(), 42);
}

TEST(BoundedMpmcQueue, MultiProducerMultiConsumerStress) {
  constexpr int kProducers = 3;
  constexpr int kConsumers = 3;
  constexpr int kPerProducer = 4000;
  BoundedMpmcQueue<std::uint64_t> queue(64);

  std::atomic<std::uint64_t> popped_sum{0};
  std::atomic<int> popped_count{0};
  std::uint64_t pushed_sum = 0;

  std::vector<std::thread> threads;
  for (int p = 0; p < kProducers; ++p) {
    threads.emplace_back([&queue, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        const std::uint64_t value =
            static_cast<std::uint64_t>(p) * kPerProducer + i + 1;
        while (!queue.try_push(value)) std::this_thread::yield();
      }
    });
  }
  for (int c = 0; c < kConsumers; ++c) {
    threads.emplace_back([&queue, &popped_sum, &popped_count] {
      while (popped_count.load(std::memory_order_relaxed) <
             kProducers * kPerProducer) {
        auto v = queue.try_pop();
        if (!v.has_value()) {
          std::this_thread::yield();
          continue;
        }
        popped_sum.fetch_add(*v, std::memory_order_relaxed);
        popped_count.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  for (auto& t : threads) t.join();

  for (int p = 0; p < kProducers; ++p) {
    for (int i = 0; i < kPerProducer; ++i) {
      pushed_sum += static_cast<std::uint64_t>(p) * kPerProducer + i + 1;
    }
  }
  EXPECT_EQ(popped_count.load(), kProducers * kPerProducer);
  EXPECT_EQ(popped_sum.load(), pushed_sum);
  EXPECT_EQ(queue.try_pop(), std::nullopt);
}

// ------------------------------------------------------------ timer heap --

TEST(TimerQueue, PollTimeoutClampsAndRoundsUp) {
  TimerQueue timers;
  const auto now = TimerQueue::Clock::now();
  EXPECT_EQ(timers.poll_timeout_ms(now, 200), 200);  // empty -> cap

  timers.schedule(now + 1500us, 1, 0);
  // 1.5ms rounds up to 2 so the worker does not wake just before the
  // deadline and spin.
  EXPECT_EQ(timers.poll_timeout_ms(now, 200), 2);
  EXPECT_EQ(timers.poll_timeout_ms(now, 1), 1);  // capped
  EXPECT_EQ(timers.poll_timeout_ms(now + 5ms, 200), 0);  // past due
}

TEST(TimerQueue, ExpireFiresDueEntriesInDeadlineOrder) {
  TimerQueue timers;
  const auto now = TimerQueue::Clock::now();
  timers.schedule(now + 30ms, 3, 0);
  timers.schedule(now + 10ms, 1, 7);
  timers.schedule(now + 20ms, 2, 0);

  std::vector<std::uint64_t> fired;
  std::uint32_t kind_seen = 0;
  EXPECT_EQ(timers.expire(now + 25ms,
                          [&](std::uint64_t id, std::uint32_t kind) {
                            fired.push_back(id);
                            if (id == 1) kind_seen = kind;
                          }),
            2u);
  EXPECT_EQ(fired, (std::vector<std::uint64_t>{1, 2}));
  EXPECT_EQ(kind_seen, 7u);
  EXPECT_EQ(timers.size(), 1u);

  // The callback may re-schedule (lazy-cancellation pattern).
  timers.expire(now + 35ms, [&](std::uint64_t id, std::uint32_t) {
    if (id == 3) timers.schedule(now + 50ms, 3, 0);
  });
  EXPECT_EQ(timers.size(), 1u);
  EXPECT_EQ(timers.poll_timeout_ms(now + 50ms, 200), 0);
}

// --------------------------------------------------------------- reactor --

class PipeEcho : public IoHandler {
 public:
  explicit PipeEcho(int fd) : fd_(fd) {}
  void on_io(std::uint32_t events) override {
    events_ |= events;
    if ((events & Reactor::kRead) != 0) {
      char buf[64];
      // Edge-triggered contract: drain until EAGAIN.
      while (::read(fd_, buf, sizeof buf) > 0) ++reads_;
    }
  }
  [[nodiscard]] std::uint32_t events() const { return events_; }
  [[nodiscard]] int reads() const { return reads_; }

 private:
  int fd_;
  std::uint32_t events_ = 0;
  int reads_ = 0;
};

class ReactorBackends : public ::testing::TestWithParam<bool> {};

TEST_P(ReactorBackends, DispatchesReadinessAndHonorsRemove) {
  const bool force_poll = GetParam();
  Reactor reactor(force_poll);
  if (!force_poll && !reactor.epoll_backed()) GTEST_SKIP() << "no epoll";

  int fds[2];
  ASSERT_EQ(::pipe(fds), 0);
  // Non-blocking read end so the ET drain loop terminates at EAGAIN.
  ASSERT_EQ(::fcntl(fds[0], F_SETFL, ::fcntl(fds[0], F_GETFL) | O_NONBLOCK), 0);
  PipeEcho echo(fds[0]);
  ASSERT_TRUE(reactor.add(fds[0], Reactor::kRead, &echo));
  EXPECT_EQ(reactor.watched(), 1u);

  EXPECT_EQ(reactor.poll_once(0), 0);  // nothing ready yet

  ASSERT_EQ(::write(fds[1], "x", 1), 1);
  int dispatched = 0;
  for (int i = 0; i < 100 && dispatched == 0; ++i) dispatched = reactor.poll_once(10);
  EXPECT_EQ(dispatched, 1);
  EXPECT_NE(echo.events() & Reactor::kRead, 0u);
  EXPECT_GE(echo.reads(), 1);

  reactor.remove(fds[0]);
  EXPECT_EQ(reactor.watched(), 0u);
  ASSERT_EQ(::write(fds[1], "y", 1), 1);
  EXPECT_EQ(reactor.poll_once(0), 0);  // removed fds are not dispatched

  ::close(fds[0]);
  ::close(fds[1]);
}

TEST_P(ReactorBackends, CrossThreadWakeInterruptsPoll) {
  const bool force_poll = GetParam();
  Reactor reactor(force_poll);
  if (!force_poll && !reactor.epoll_backed()) GTEST_SKIP() << "no epoll";

  const auto start = std::chrono::steady_clock::now();
  std::thread waker([&reactor] {
    std::this_thread::sleep_for(20ms);
    reactor.wake();
  });
  // Without the wake this would block for the full 5s.
  EXPECT_EQ(reactor.poll_once(5000), 0);
  const auto elapsed = std::chrono::steady_clock::now() - start;
  EXPECT_LT(elapsed, 2s);
  waker.join();

  // Coalesced wakes do not leave the reactor permanently hot.
  reactor.wake();
  reactor.wake();
  EXPECT_EQ(reactor.poll_once(0), 0);
  EXPECT_EQ(reactor.poll_once(0), 0);
}

INSTANTIATE_TEST_SUITE_P(Backends, ReactorBackends, ::testing::Values(false, true),
                         [](const auto& info) {
                           return info.param ? "poll" : "epoll";
                         });

// ------------------------------------------------------------------- EBR --

TEST(Ebr, NoReclamationWhileAReaderIsPinned) {
  ebr::Domain domain;
  std::atomic<int> reclaimed{0};

  auto* reader_slot = domain.acquire_slot();
  {
    ebr::Guard guard(domain, *reader_slot);
    domain.retire([&reclaimed] { reclaimed.fetch_add(1); });
    EXPECT_EQ(domain.pending(), 1u);
    // However often we try, a pinned reader from before the retire blocks
    // reclamation.
    for (int i = 0; i < 10; ++i) EXPECT_EQ(domain.try_advance(), 0u);
    EXPECT_EQ(reclaimed.load(), 0);
  }
  // Reader quiesced: a few advances (epoch must move twice past the
  // retirement epoch) now free the object.
  std::size_t freed = 0;
  for (int i = 0; i < 10 && freed == 0; ++i) freed = domain.try_advance();
  EXPECT_EQ(freed, 1u);
  EXPECT_EQ(reclaimed.load(), 1);
  EXPECT_EQ(domain.pending(), 0u);
  domain.release_slot(reader_slot);
}

TEST(Ebr, SlowPathGuardAcquiresAndReleasesTransientSlot) {
  ebr::Domain domain;
  std::atomic<int> reclaimed{0};
  {
    ebr::Guard guard(domain);
    domain.retire([&reclaimed] { reclaimed.fetch_add(1); });
    for (int i = 0; i < 10; ++i) EXPECT_EQ(domain.try_advance(), 0u);
  }
  std::size_t freed = 0;
  for (int i = 0; i < 10 && freed == 0; ++i) freed = domain.try_advance();
  EXPECT_EQ(freed, 1u);
  EXPECT_EQ(reclaimed.load(), 1);
}

TEST(Ebr, DomainDestructorRunsLeftoverReclaimers) {
  std::atomic<int> reclaimed{0};
  {
    ebr::Domain domain;
    domain.retire([&reclaimed] { reclaimed.fetch_add(1); });
    domain.retire([&reclaimed] { reclaimed.fetch_add(1); });
  }
  EXPECT_EQ(reclaimed.load(), 2);
}

TEST(Ebr, StressReadersNeverObserveAFreedObject) {
  // Writer repeatedly swaps a published pointer and retires the old target;
  // readers dereference under a guard. A use-after-free here is what TSan /
  // ASan exist to catch; the functional assertion is that every reader sees
  // a live value and everything is eventually reclaimed.
  constexpr int kReaders = 3;
  constexpr int kSwaps = 400;

  ebr::Domain domain;
  std::atomic<std::uint64_t*> published{new std::uint64_t(0)};
  std::atomic<bool> done{false};
  std::atomic<int> bad_reads{0};

  std::vector<std::thread> readers;
  for (int r = 0; r < kReaders; ++r) {
    readers.emplace_back([&] {
      auto* slot = domain.acquire_slot();
      while (!done.load(std::memory_order_acquire)) {
        ebr::Guard guard(domain, *slot);
        const std::uint64_t* p = published.load(std::memory_order_acquire);
        // Values are generation numbers; a freed object would be poisoned or
        // fault under sanitizers.
        if (*p > kSwaps) bad_reads.fetch_add(1);
      }
      domain.release_slot(slot);
    });
  }

  std::size_t reclaimed = 0;
  for (std::uint64_t gen = 1; gen <= kSwaps; ++gen) {
    auto* fresh = new std::uint64_t(gen);
    auto* old = published.exchange(fresh, std::memory_order_acq_rel);
    domain.retire([old] { delete old; });
    reclaimed += domain.try_advance();
  }
  done.store(true, std::memory_order_release);
  for (auto& t : readers) t.join();

  // Everything retires eventually once readers quiesce.
  for (int i = 0; i < 20 && domain.pending() > 0; ++i) {
    reclaimed += domain.try_advance();
  }
  EXPECT_EQ(domain.pending(), 0u);
  EXPECT_EQ(reclaimed, static_cast<std::size_t>(kSwaps));
  EXPECT_EQ(bad_reads.load(), 0);
  delete published.load();
}

// --------------------------------------------------------- TaskScheduler --

TEST(TaskScheduler, RunsPostedTasksOnTheTargetWorker) {
  obs::Registry metrics;
  TaskSchedulerConfig config;
  config.workers = 2;
  config.tick_ms = 5;
  TaskScheduler scheduler(config, &metrics);
  ASSERT_EQ(scheduler.worker_count(), 2u);

  std::atomic<int> ran{0};
  std::atomic<int> started{0};
  std::atomic<int> stopped{0};
  TaskScheduler::Hooks hooks;
  hooks.on_start = [&](std::size_t) { started.fetch_add(1); };
  hooks.on_stop = [&](std::size_t) { stopped.fetch_add(1); };
  scheduler.start(std::move(hooks));

  constexpr int kTasks = 200;
  for (int i = 0; i < kTasks; ++i) {
    scheduler.post(i % 2, [&ran] { ran.fetch_add(1); });
  }
  const auto deadline = std::chrono::steady_clock::now() + 5s;
  while (ran.load() < kTasks && std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(1ms);
  }
  EXPECT_EQ(ran.load(), kTasks);

  scheduler.stop();
  scheduler.join();
  EXPECT_EQ(started.load(), 2);
  EXPECT_EQ(stopped.load(), 2);
  EXPECT_TRUE(scheduler.stopping());

  // Per-worker instrumentation exists and adds up.
  const auto total =
      metrics.counter("asrank_runtime_tasks_total", "", {{"worker", "0"}}).value() +
      metrics.counter("asrank_runtime_tasks_total", "", {{"worker", "1"}}).value();
  EXPECT_EQ(total, static_cast<std::uint64_t>(kTasks));
}

TEST(TaskScheduler, FiresTimerCheckpointsViaHook) {
  obs::Registry metrics;
  TaskSchedulerConfig config;
  config.workers = 1;
  config.tick_ms = 5;
  TaskScheduler scheduler(config, &metrics);

  std::atomic<std::uint64_t> fired_id{0};
  std::atomic<std::uint32_t> fired_kind{0};
  TaskScheduler::Hooks hooks;
  hooks.on_timer = [&](std::size_t, std::uint64_t id, std::uint32_t kind) {
    fired_id.store(id);
    fired_kind.store(kind);
  };
  scheduler.start(std::move(hooks));

  // Timers are worker-owned: schedule from a task on that worker.
  scheduler.post(0, [&scheduler] {
    scheduler.timers(0).schedule(TimerQueue::Clock::now() + 10ms, 42, 7);
  });
  const auto deadline = std::chrono::steady_clock::now() + 5s;
  while (fired_id.load() == 0 && std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(1ms);
  }
  EXPECT_EQ(fired_id.load(), 42u);
  EXPECT_EQ(fired_kind.load(), 7u);

  scheduler.stop();
  scheduler.join();
}

TEST(TaskScheduler, StopIsIdempotentAndDrainsQueuedTasks) {
  obs::Registry metrics;
  TaskSchedulerConfig config;
  config.workers = 1;
  config.tick_ms = 5;
  TaskScheduler scheduler(config, &metrics);
  std::atomic<int> ran{0};
  scheduler.start({});
  for (int i = 0; i < 50; ++i) scheduler.post(0, [&ran] { ran.fetch_add(1); });
  scheduler.stop();
  scheduler.stop();
  scheduler.join();
  // The final drain runs tasks already queued at stop time.
  EXPECT_EQ(ran.load(), 50);
}

// ----------------------------------------- registry torture (EBR + RCU) --

snapshot::SnapshotIndex small_index(std::uint32_t leaf) {
  AsGraph graph;
  graph.add_p2p(Asn(1), Asn(2));
  graph.add_p2c(Asn(1), Asn(3));
  graph.add_p2c(Asn(2), Asn(3));
  graph.add_p2c(Asn(3), Asn(leaf));
  const std::unordered_map<Asn, std::size_t> tdeg = {
      {Asn(1), 2}, {Asn(2), 2}, {Asn(3), 1}};
  return snapshot::build_snapshot(graph, tdeg, core::recursive_cone(graph),
                                  {Asn(1), Asn(2)});
}

TEST(RegistryTorture, EbrGuardedReadersSurviveConcurrentInstallAndEvict) {
  constexpr int kReaders = 3;
  constexpr int kInstalls = 60;

  obs::Registry metrics;
  serve::SnapshotRegistryConfig config;
  config.retention = 2;  // force evictions while readers hold views
  serve::SnapshotRegistry registry(config, &metrics);
  ASSERT_TRUE(registry.install("seed", small_index(4)).ok());

  std::atomic<bool> done{false};
  std::atomic<int> failures{0};
  std::atomic<std::uint64_t> reads{0};

  std::vector<std::thread> readers;
  for (int r = 0; r < kReaders; ++r) {
    readers.emplace_back([&] {
      auto* slot = registry.reclaim_domain().acquire_slot();
      while (!done.load(std::memory_order_acquire)) {
        ebr::Guard guard(registry.reclaim_domain(), *slot);
        const auto view = registry.read_view();
        auto* engine = view.current();
        if (engine == nullptr) {
          failures.fetch_add(1);
          continue;
        }
        // cone(1) is {1,3,4} or {1,3,<leaf>} depending on the resident
        // generation; it must always be 3 ASes rooted at 1.
        const auto cone = engine->cone(Asn(1));
        if (cone.size() != 3 || cone.front() != Asn(1)) failures.fetch_add(1);
        if (view.epoch_count() == 0 || view.epochs().empty()) failures.fetch_add(1);
        reads.fetch_add(1);
      }
      registry.reclaim_domain().release_slot(slot);
    });
  }

  for (int i = 0; i < kInstalls; ++i) {
    // Alternate labels so retention (2) keeps evicting the older one.
    const std::string label = i % 2 == 0 ? "flip" : "flop";
    auto installed =
        registry.install(label, small_index(5 + static_cast<std::uint32_t>(i % 3)));
    if (!installed.ok()) failures.fetch_add(1);
    registry.reclaim_pass();
    std::this_thread::sleep_for(1ms);
  }
  done.store(true, std::memory_order_release);
  for (auto& t : readers) t.join();

  // All readers quiesced: the backlog drains completely.
  for (int i = 0; i < 20 && registry.reclaim_domain().pending() > 0; ++i) {
    registry.reclaim_pass();
  }
  EXPECT_EQ(registry.reclaim_domain().pending(), 0u);
  EXPECT_EQ(failures.load(), 0);
  EXPECT_GT(reads.load(), 0u);
  // Retired generations were actually freed, not just parked.
  EXPECT_GT(metrics
                .counter("asrankd_snapshot_generations_reclaimed_total",
                         "Retired snapshot generations freed after reader quiesce")
                .value(),
            0u);
}

}  // namespace
}  // namespace asrank::runtime
