#include <gtest/gtest.h>

#include "core/visibility.h"

namespace asrank::core {
namespace {

paths::PathRecord rec(std::uint32_t vp, std::uint32_t prefix_id,
                      std::initializer_list<std::uint32_t> hops) {
  return paths::PathRecord{Asn(vp), Prefix::v4(prefix_id << 8, 24), AsPath(hops)};
}

TEST(Visibility, CountsVpsAndObservations) {
  paths::PathCorpus corpus;
  corpus.add(rec(1, 1, {1, 2, 3}));
  corpus.add(rec(1, 2, {1, 2, 4}));
  corpus.add(rec(5, 3, {5, 2, 3}));
  const auto visibility = link_visibility(corpus);
  const auto& link12 = visibility.at(paths::PathCorpus::key(Asn(1), Asn(2)));
  EXPECT_EQ(link12.vp_count, 1u);
  EXPECT_EQ(link12.observations, 2u);
  const auto& link23 = visibility.at(paths::PathCorpus::key(Asn(2), Asn(3)));
  EXPECT_EQ(link23.vp_count, 2u);
  EXPECT_EQ(link23.observations, 2u);
}

TEST(Visibility, PositionClassification) {
  paths::PathCorpus corpus;
  corpus.add(rec(1, 1, {1, 2, 3, 4}));
  const auto visibility = link_visibility(corpus);
  // (1,2) and (3,4) touch the path edges; (2,3) is interior.
  EXPECT_FALSE(visibility.at(paths::PathCorpus::key(Asn(1), Asn(2))).interior());
  EXPECT_TRUE(visibility.at(paths::PathCorpus::key(Asn(2), Asn(3))).interior());
  EXPECT_FALSE(visibility.at(paths::PathCorpus::key(Asn(3), Asn(4))).interior());
}

TEST(Visibility, PrependingIsNotALink) {
  paths::PathCorpus corpus;
  corpus.add(rec(1, 1, {1, 2, 2, 3}));
  const auto visibility = link_visibility(corpus);
  EXPECT_EQ(visibility.size(), 2u);
  EXPECT_FALSE(visibility.contains(paths::PathCorpus::key(Asn(2), Asn(2))));
}

TEST(Visibility, CcdfThresholds) {
  paths::PathCorpus corpus;
  corpus.add(rec(1, 1, {1, 2}));
  corpus.add(rec(3, 2, {3, 2}));
  corpus.add(rec(4, 3, {4, 2}));
  corpus.add(rec(3, 4, {3, 2, 1}));  // (1,2) now seen by vp 3 too
  const auto visibility = link_visibility(corpus);
  const auto ccdf = visibility_ccdf(visibility, {1, 2, 3});
  ASSERT_EQ(ccdf.links_at_least.size(), 3u);
  EXPECT_EQ(ccdf.links_at_least[0], 3u);  // all links seen at least once
  EXPECT_EQ(ccdf.links_at_least[1], 1u);  // only (1,2) seen from two VPs
  EXPECT_EQ(ccdf.links_at_least[2], 0u);
}

TEST(Visibility, EmptyCorpus) {
  EXPECT_TRUE(link_visibility(paths::PathCorpus{}).empty());
}

}  // namespace
}  // namespace asrank::core
