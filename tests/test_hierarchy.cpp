#include <gtest/gtest.h>

#include "core/hierarchy.h"

namespace asrank::core {
namespace {

/// 1-2 clique; 1->3->5, 2->4; 6 has customers but no providers; 3 multihomed
/// to 1 and 2.
AsGraph hand_graph() {
  AsGraph g;
  g.add_p2p(Asn(1), Asn(2));
  g.add_p2c(Asn(1), Asn(3));
  g.add_p2c(Asn(2), Asn(3));
  g.add_p2c(Asn(2), Asn(4));
  g.add_p2c(Asn(3), Asn(5));
  g.add_p2c(Asn(6), Asn(7));
  return g;
}

TEST(Hierarchy, TierClassification) {
  const auto summary = analyze_hierarchy(hand_graph(), {Asn(1), Asn(2)});
  EXPECT_EQ(summary.tiers.at(Asn(1)), HierarchyTier::kClique);
  EXPECT_EQ(summary.tiers.at(Asn(2)), HierarchyTier::kClique);
  EXPECT_EQ(summary.tiers.at(Asn(3)), HierarchyTier::kTransit);
  EXPECT_EQ(summary.tiers.at(Asn(4)), HierarchyTier::kStub);
  EXPECT_EQ(summary.tiers.at(Asn(5)), HierarchyTier::kStub);
  EXPECT_EQ(summary.tiers.at(Asn(6)), HierarchyTier::kLeafProvider);
  EXPECT_EQ(summary.clique, 2u);
  EXPECT_EQ(summary.transit, 1u);
  EXPECT_EQ(summary.leaf_providers, 1u);
  EXPECT_EQ(summary.stubs, 3u);
}

TEST(Hierarchy, MeanProvidersCountsMultihoming) {
  const auto summary = analyze_hierarchy(hand_graph(), {Asn(1), Asn(2)});
  // Provider counts: 3 has 2; 4,5,7 have 1 each -> mean 5/4.
  EXPECT_DOUBLE_EQ(summary.mean_providers, 5.0 / 4.0);
}

TEST(Hierarchy, P2pShare) {
  const auto summary = analyze_hierarchy(hand_graph(), {Asn(1), Asn(2)});
  EXPECT_DOUBLE_EQ(summary.p2p_share, 1.0 / 6.0);
}

TEST(Hierarchy, Depths) {
  const auto depths = hierarchy_depths(hand_graph());
  EXPECT_EQ(depths.at(Asn(1)), 0u);
  EXPECT_EQ(depths.at(Asn(2)), 0u);
  EXPECT_EQ(depths.at(Asn(6)), 0u);
  EXPECT_EQ(depths.at(Asn(3)), 1u);
  EXPECT_EQ(depths.at(Asn(5)), 2u);
  EXPECT_EQ(depths.at(Asn(7)), 1u);
}

TEST(Hierarchy, ConeJaccard) {
  const std::vector<Asn> a{Asn(1), Asn(2), Asn(3)};
  const std::vector<Asn> b{Asn(2), Asn(3), Asn(4)};
  EXPECT_DOUBLE_EQ(cone_jaccard(a, a), 1.0);
  EXPECT_DOUBLE_EQ(cone_jaccard(a, b), 0.5);
  EXPECT_DOUBLE_EQ(cone_jaccard(a, {}), 0.0);
  EXPECT_DOUBLE_EQ(cone_jaccard({}, {}), 1.0);
}

TEST(Hierarchy, MeanRankChange) {
  const std::vector<Asn> before{Asn(1), Asn(2), Asn(3), Asn(4)};
  const std::vector<Asn> same = before;
  EXPECT_DOUBLE_EQ(mean_rank_change(before, same, 4), 0.0);
  const std::vector<Asn> swapped{Asn(2), Asn(1), Asn(3), Asn(4)};
  EXPECT_DOUBLE_EQ(mean_rank_change(before, swapped, 2), 1.0);
  // ASes missing from `after` are skipped.
  const std::vector<Asn> shrunk{Asn(1)};
  EXPECT_DOUBLE_EQ(mean_rank_change(before, shrunk, 4), 0.0);
}

}  // namespace
}  // namespace asrank::core
