file(REMOVE_RECURSE
  "CMakeFiles/test_graph_diff.dir/test_graph_diff.cpp.o"
  "CMakeFiles/test_graph_diff.dir/test_graph_diff.cpp.o.d"
  "test_graph_diff"
  "test_graph_diff.pdb"
  "test_graph_diff[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_graph_diff.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
