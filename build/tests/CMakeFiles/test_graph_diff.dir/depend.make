# Empty dependencies file for test_graph_diff.
# This may be replaced when dependencies are built.
