
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_collector.cpp" "tests/CMakeFiles/test_collector.dir/test_collector.cpp.o" "gcc" "tests/CMakeFiles/test_collector.dir/test_collector.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/validation/CMakeFiles/asrank_validation.dir/DependInfo.cmake"
  "/root/repo/build/src/baselines/CMakeFiles/asrank_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/asrank_core.dir/DependInfo.cmake"
  "/root/repo/build/src/paths/CMakeFiles/asrank_paths.dir/DependInfo.cmake"
  "/root/repo/build/src/bgpsim/CMakeFiles/asrank_bgpsim.dir/DependInfo.cmake"
  "/root/repo/build/src/mrt/CMakeFiles/asrank_mrt.dir/DependInfo.cmake"
  "/root/repo/build/src/topogen/CMakeFiles/asrank_topogen.dir/DependInfo.cmake"
  "/root/repo/build/src/topology/CMakeFiles/asrank_topology.dir/DependInfo.cmake"
  "/root/repo/build/src/asn/CMakeFiles/asrank_asn.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/asrank_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
