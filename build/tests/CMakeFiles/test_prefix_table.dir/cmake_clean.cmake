file(REMOVE_RECURSE
  "CMakeFiles/test_prefix_table.dir/test_prefix_table.cpp.o"
  "CMakeFiles/test_prefix_table.dir/test_prefix_table.cpp.o.d"
  "test_prefix_table"
  "test_prefix_table.pdb"
  "test_prefix_table[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_prefix_table.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
