# Empty compiler generated dependencies file for test_bgpsim.
# This may be replaced when dependencies are built.
