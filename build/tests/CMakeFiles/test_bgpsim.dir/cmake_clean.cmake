file(REMOVE_RECURSE
  "CMakeFiles/test_bgpsim.dir/test_bgpsim.cpp.o"
  "CMakeFiles/test_bgpsim.dir/test_bgpsim.cpp.o.d"
  "test_bgpsim"
  "test_bgpsim.pdb"
  "test_bgpsim[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_bgpsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
