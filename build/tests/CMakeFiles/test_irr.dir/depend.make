# Empty dependencies file for test_irr.
# This may be replaced when dependencies are built.
