file(REMOVE_RECURSE
  "CMakeFiles/test_irr.dir/test_irr.cpp.o"
  "CMakeFiles/test_irr.dir/test_irr.cpp.o.d"
  "test_irr"
  "test_irr.pdb"
  "test_irr[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_irr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
