# Empty dependencies file for test_asgraph_model.
# This may be replaced when dependencies are built.
