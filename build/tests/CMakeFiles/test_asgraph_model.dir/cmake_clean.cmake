file(REMOVE_RECURSE
  "CMakeFiles/test_asgraph_model.dir/test_asgraph_model.cpp.o"
  "CMakeFiles/test_asgraph_model.dir/test_asgraph_model.cpp.o.d"
  "test_asgraph_model"
  "test_asgraph_model.pdb"
  "test_asgraph_model[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_asgraph_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
