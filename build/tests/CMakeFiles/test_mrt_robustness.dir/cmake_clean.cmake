file(REMOVE_RECURSE
  "CMakeFiles/test_mrt_robustness.dir/test_mrt_robustness.cpp.o"
  "CMakeFiles/test_mrt_robustness.dir/test_mrt_robustness.cpp.o.d"
  "test_mrt_robustness"
  "test_mrt_robustness.pdb"
  "test_mrt_robustness[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mrt_robustness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
