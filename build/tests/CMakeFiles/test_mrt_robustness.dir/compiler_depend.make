# Empty compiler generated dependencies file for test_mrt_robustness.
# This may be replaced when dependencies are built.
