# Empty compiler generated dependencies file for test_asn.
# This may be replaced when dependencies are built.
