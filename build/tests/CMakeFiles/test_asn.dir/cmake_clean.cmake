file(REMOVE_RECURSE
  "CMakeFiles/test_asn.dir/test_asn.cpp.o"
  "CMakeFiles/test_asn.dir/test_asn.cpp.o.d"
  "test_asn"
  "test_asn.pdb"
  "test_asn[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_asn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
