file(REMOVE_RECURSE
  "CMakeFiles/test_mrt.dir/test_mrt.cpp.o"
  "CMakeFiles/test_mrt.dir/test_mrt.cpp.o.d"
  "test_mrt"
  "test_mrt.pdb"
  "test_mrt[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mrt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
