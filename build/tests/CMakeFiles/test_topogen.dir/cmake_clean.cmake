file(REMOVE_RECURSE
  "CMakeFiles/test_topogen.dir/test_topogen.cpp.o"
  "CMakeFiles/test_topogen.dir/test_topogen.cpp.o.d"
  "test_topogen"
  "test_topogen.pdb"
  "test_topogen[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_topogen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
