file(REMOVE_RECURSE
  "CMakeFiles/test_table_dump_v1.dir/test_table_dump_v1.cpp.o"
  "CMakeFiles/test_table_dump_v1.dir/test_table_dump_v1.cpp.o.d"
  "test_table_dump_v1"
  "test_table_dump_v1.pdb"
  "test_table_dump_v1[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_table_dump_v1.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
