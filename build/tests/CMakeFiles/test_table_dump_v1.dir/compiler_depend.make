# Empty compiler generated dependencies file for test_table_dump_v1.
# This may be replaced when dependencies are built.
