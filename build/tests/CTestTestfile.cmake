# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_smoke[1]_include.cmake")
include("/root/repo/build/tests/test_util[1]_include.cmake")
include("/root/repo/build/tests/test_asn[1]_include.cmake")
include("/root/repo/build/tests/test_topology[1]_include.cmake")
include("/root/repo/build/tests/test_topogen[1]_include.cmake")
include("/root/repo/build/tests/test_mrt[1]_include.cmake")
include("/root/repo/build/tests/test_bgpsim[1]_include.cmake")
include("/root/repo/build/tests/test_paths[1]_include.cmake")
include("/root/repo/build/tests/test_core[1]_include.cmake")
include("/root/repo/build/tests/test_baselines[1]_include.cmake")
include("/root/repo/build/tests/test_validation[1]_include.cmake")
include("/root/repo/build/tests/test_integration[1]_include.cmake")
include("/root/repo/build/tests/test_update_stream[1]_include.cmake")
include("/root/repo/build/tests/test_hierarchy[1]_include.cmake")
include("/root/repo/build/tests/test_prefix_table[1]_include.cmake")
include("/root/repo/build/tests/test_collector[1]_include.cmake")
include("/root/repo/build/tests/test_irr[1]_include.cmake")
include("/root/repo/build/tests/test_table_dump_v1[1]_include.cmake")
include("/root/repo/build/tests/test_mrt_robustness[1]_include.cmake")
include("/root/repo/build/tests/test_visibility[1]_include.cmake")
include("/root/repo/build/tests/test_graph_diff[1]_include.cmake")
include("/root/repo/build/tests/test_asgraph_model[1]_include.cmake")
include("/root/repo/build/tests/test_pipeline_sweep[1]_include.cmake")
