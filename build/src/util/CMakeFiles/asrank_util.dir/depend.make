# Empty dependencies file for asrank_util.
# This may be replaced when dependencies are built.
