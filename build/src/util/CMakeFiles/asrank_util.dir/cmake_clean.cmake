file(REMOVE_RECURSE
  "CMakeFiles/asrank_util.dir/rng.cpp.o"
  "CMakeFiles/asrank_util.dir/rng.cpp.o.d"
  "CMakeFiles/asrank_util.dir/stats.cpp.o"
  "CMakeFiles/asrank_util.dir/stats.cpp.o.d"
  "CMakeFiles/asrank_util.dir/strings.cpp.o"
  "CMakeFiles/asrank_util.dir/strings.cpp.o.d"
  "CMakeFiles/asrank_util.dir/table.cpp.o"
  "CMakeFiles/asrank_util.dir/table.cpp.o.d"
  "libasrank_util.a"
  "libasrank_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/asrank_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
