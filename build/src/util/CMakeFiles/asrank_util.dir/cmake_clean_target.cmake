file(REMOVE_RECURSE
  "libasrank_util.a"
)
