file(REMOVE_RECURSE
  "libasrank_topology.a"
)
