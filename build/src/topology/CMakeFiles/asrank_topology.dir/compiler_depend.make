# Empty compiler generated dependencies file for asrank_topology.
# This may be replaced when dependencies are built.
