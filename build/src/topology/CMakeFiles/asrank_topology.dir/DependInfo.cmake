
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/topology/as_graph.cpp" "src/topology/CMakeFiles/asrank_topology.dir/as_graph.cpp.o" "gcc" "src/topology/CMakeFiles/asrank_topology.dir/as_graph.cpp.o.d"
  "/root/repo/src/topology/graph_diff.cpp" "src/topology/CMakeFiles/asrank_topology.dir/graph_diff.cpp.o" "gcc" "src/topology/CMakeFiles/asrank_topology.dir/graph_diff.cpp.o.d"
  "/root/repo/src/topology/prefix_table.cpp" "src/topology/CMakeFiles/asrank_topology.dir/prefix_table.cpp.o" "gcc" "src/topology/CMakeFiles/asrank_topology.dir/prefix_table.cpp.o.d"
  "/root/repo/src/topology/serialization.cpp" "src/topology/CMakeFiles/asrank_topology.dir/serialization.cpp.o" "gcc" "src/topology/CMakeFiles/asrank_topology.dir/serialization.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/asn/CMakeFiles/asrank_asn.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/asrank_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
