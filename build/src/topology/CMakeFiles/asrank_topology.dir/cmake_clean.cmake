file(REMOVE_RECURSE
  "CMakeFiles/asrank_topology.dir/as_graph.cpp.o"
  "CMakeFiles/asrank_topology.dir/as_graph.cpp.o.d"
  "CMakeFiles/asrank_topology.dir/graph_diff.cpp.o"
  "CMakeFiles/asrank_topology.dir/graph_diff.cpp.o.d"
  "CMakeFiles/asrank_topology.dir/prefix_table.cpp.o"
  "CMakeFiles/asrank_topology.dir/prefix_table.cpp.o.d"
  "CMakeFiles/asrank_topology.dir/serialization.cpp.o"
  "CMakeFiles/asrank_topology.dir/serialization.cpp.o.d"
  "libasrank_topology.a"
  "libasrank_topology.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/asrank_topology.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
