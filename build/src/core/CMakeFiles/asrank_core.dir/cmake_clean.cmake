file(REMOVE_RECURSE
  "CMakeFiles/asrank_core.dir/asrank.cpp.o"
  "CMakeFiles/asrank_core.dir/asrank.cpp.o.d"
  "CMakeFiles/asrank_core.dir/clique.cpp.o"
  "CMakeFiles/asrank_core.dir/clique.cpp.o.d"
  "CMakeFiles/asrank_core.dir/cones.cpp.o"
  "CMakeFiles/asrank_core.dir/cones.cpp.o.d"
  "CMakeFiles/asrank_core.dir/degrees.cpp.o"
  "CMakeFiles/asrank_core.dir/degrees.cpp.o.d"
  "CMakeFiles/asrank_core.dir/hierarchy.cpp.o"
  "CMakeFiles/asrank_core.dir/hierarchy.cpp.o.d"
  "CMakeFiles/asrank_core.dir/ranking.cpp.o"
  "CMakeFiles/asrank_core.dir/ranking.cpp.o.d"
  "CMakeFiles/asrank_core.dir/visibility.cpp.o"
  "CMakeFiles/asrank_core.dir/visibility.cpp.o.d"
  "libasrank_core.a"
  "libasrank_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/asrank_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
