file(REMOVE_RECURSE
  "libasrank_core.a"
)
