
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/asrank.cpp" "src/core/CMakeFiles/asrank_core.dir/asrank.cpp.o" "gcc" "src/core/CMakeFiles/asrank_core.dir/asrank.cpp.o.d"
  "/root/repo/src/core/clique.cpp" "src/core/CMakeFiles/asrank_core.dir/clique.cpp.o" "gcc" "src/core/CMakeFiles/asrank_core.dir/clique.cpp.o.d"
  "/root/repo/src/core/cones.cpp" "src/core/CMakeFiles/asrank_core.dir/cones.cpp.o" "gcc" "src/core/CMakeFiles/asrank_core.dir/cones.cpp.o.d"
  "/root/repo/src/core/degrees.cpp" "src/core/CMakeFiles/asrank_core.dir/degrees.cpp.o" "gcc" "src/core/CMakeFiles/asrank_core.dir/degrees.cpp.o.d"
  "/root/repo/src/core/hierarchy.cpp" "src/core/CMakeFiles/asrank_core.dir/hierarchy.cpp.o" "gcc" "src/core/CMakeFiles/asrank_core.dir/hierarchy.cpp.o.d"
  "/root/repo/src/core/ranking.cpp" "src/core/CMakeFiles/asrank_core.dir/ranking.cpp.o" "gcc" "src/core/CMakeFiles/asrank_core.dir/ranking.cpp.o.d"
  "/root/repo/src/core/visibility.cpp" "src/core/CMakeFiles/asrank_core.dir/visibility.cpp.o" "gcc" "src/core/CMakeFiles/asrank_core.dir/visibility.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/paths/CMakeFiles/asrank_paths.dir/DependInfo.cmake"
  "/root/repo/build/src/topology/CMakeFiles/asrank_topology.dir/DependInfo.cmake"
  "/root/repo/build/src/asn/CMakeFiles/asrank_asn.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/asrank_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
