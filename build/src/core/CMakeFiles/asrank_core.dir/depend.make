# Empty dependencies file for asrank_core.
# This may be replaced when dependencies are built.
