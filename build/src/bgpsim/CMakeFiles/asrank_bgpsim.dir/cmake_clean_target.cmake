file(REMOVE_RECURSE
  "libasrank_bgpsim.a"
)
