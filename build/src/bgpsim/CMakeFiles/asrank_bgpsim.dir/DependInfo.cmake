
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/bgpsim/collector.cpp" "src/bgpsim/CMakeFiles/asrank_bgpsim.dir/collector.cpp.o" "gcc" "src/bgpsim/CMakeFiles/asrank_bgpsim.dir/collector.cpp.o.d"
  "/root/repo/src/bgpsim/observation.cpp" "src/bgpsim/CMakeFiles/asrank_bgpsim.dir/observation.cpp.o" "gcc" "src/bgpsim/CMakeFiles/asrank_bgpsim.dir/observation.cpp.o.d"
  "/root/repo/src/bgpsim/route_sim.cpp" "src/bgpsim/CMakeFiles/asrank_bgpsim.dir/route_sim.cpp.o" "gcc" "src/bgpsim/CMakeFiles/asrank_bgpsim.dir/route_sim.cpp.o.d"
  "/root/repo/src/bgpsim/update_stream.cpp" "src/bgpsim/CMakeFiles/asrank_bgpsim.dir/update_stream.cpp.o" "gcc" "src/bgpsim/CMakeFiles/asrank_bgpsim.dir/update_stream.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/topology/CMakeFiles/asrank_topology.dir/DependInfo.cmake"
  "/root/repo/build/src/topogen/CMakeFiles/asrank_topogen.dir/DependInfo.cmake"
  "/root/repo/build/src/mrt/CMakeFiles/asrank_mrt.dir/DependInfo.cmake"
  "/root/repo/build/src/asn/CMakeFiles/asrank_asn.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/asrank_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
