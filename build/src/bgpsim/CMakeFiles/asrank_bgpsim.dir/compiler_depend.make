# Empty compiler generated dependencies file for asrank_bgpsim.
# This may be replaced when dependencies are built.
