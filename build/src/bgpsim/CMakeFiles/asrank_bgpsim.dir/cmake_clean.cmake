file(REMOVE_RECURSE
  "CMakeFiles/asrank_bgpsim.dir/collector.cpp.o"
  "CMakeFiles/asrank_bgpsim.dir/collector.cpp.o.d"
  "CMakeFiles/asrank_bgpsim.dir/observation.cpp.o"
  "CMakeFiles/asrank_bgpsim.dir/observation.cpp.o.d"
  "CMakeFiles/asrank_bgpsim.dir/route_sim.cpp.o"
  "CMakeFiles/asrank_bgpsim.dir/route_sim.cpp.o.d"
  "CMakeFiles/asrank_bgpsim.dir/update_stream.cpp.o"
  "CMakeFiles/asrank_bgpsim.dir/update_stream.cpp.o.d"
  "libasrank_bgpsim.a"
  "libasrank_bgpsim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/asrank_bgpsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
