# Empty compiler generated dependencies file for asrank_topogen.
# This may be replaced when dependencies are built.
