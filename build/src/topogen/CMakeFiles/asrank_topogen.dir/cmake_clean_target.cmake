file(REMOVE_RECURSE
  "libasrank_topogen.a"
)
