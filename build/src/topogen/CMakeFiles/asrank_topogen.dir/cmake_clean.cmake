file(REMOVE_RECURSE
  "CMakeFiles/asrank_topogen.dir/topogen.cpp.o"
  "CMakeFiles/asrank_topogen.dir/topogen.cpp.o.d"
  "libasrank_topogen.a"
  "libasrank_topogen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/asrank_topogen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
