# Empty compiler generated dependencies file for asrank_paths.
# This may be replaced when dependencies are built.
