file(REMOVE_RECURSE
  "libasrank_paths.a"
)
