
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/paths/corpus.cpp" "src/paths/CMakeFiles/asrank_paths.dir/corpus.cpp.o" "gcc" "src/paths/CMakeFiles/asrank_paths.dir/corpus.cpp.o.d"
  "/root/repo/src/paths/sanitizer.cpp" "src/paths/CMakeFiles/asrank_paths.dir/sanitizer.cpp.o" "gcc" "src/paths/CMakeFiles/asrank_paths.dir/sanitizer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/asn/CMakeFiles/asrank_asn.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/asrank_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
