file(REMOVE_RECURSE
  "CMakeFiles/asrank_paths.dir/corpus.cpp.o"
  "CMakeFiles/asrank_paths.dir/corpus.cpp.o.d"
  "CMakeFiles/asrank_paths.dir/sanitizer.cpp.o"
  "CMakeFiles/asrank_paths.dir/sanitizer.cpp.o.d"
  "libasrank_paths.a"
  "libasrank_paths.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/asrank_paths.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
