# Empty dependencies file for asrank_baselines.
# This may be replaced when dependencies are built.
