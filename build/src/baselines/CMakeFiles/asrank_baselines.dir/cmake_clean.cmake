file(REMOVE_RECURSE
  "CMakeFiles/asrank_baselines.dir/degree_heuristic.cpp.o"
  "CMakeFiles/asrank_baselines.dir/degree_heuristic.cpp.o.d"
  "CMakeFiles/asrank_baselines.dir/gao.cpp.o"
  "CMakeFiles/asrank_baselines.dir/gao.cpp.o.d"
  "CMakeFiles/asrank_baselines.dir/tor_local_search.cpp.o"
  "CMakeFiles/asrank_baselines.dir/tor_local_search.cpp.o.d"
  "libasrank_baselines.a"
  "libasrank_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/asrank_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
