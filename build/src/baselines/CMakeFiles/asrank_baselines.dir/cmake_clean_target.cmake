file(REMOVE_RECURSE
  "libasrank_baselines.a"
)
