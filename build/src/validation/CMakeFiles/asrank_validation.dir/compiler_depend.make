# Empty compiler generated dependencies file for asrank_validation.
# This may be replaced when dependencies are built.
