file(REMOVE_RECURSE
  "libasrank_validation.a"
)
