file(REMOVE_RECURSE
  "CMakeFiles/asrank_validation.dir/communities.cpp.o"
  "CMakeFiles/asrank_validation.dir/communities.cpp.o.d"
  "CMakeFiles/asrank_validation.dir/corpus.cpp.o"
  "CMakeFiles/asrank_validation.dir/corpus.cpp.o.d"
  "CMakeFiles/asrank_validation.dir/irr.cpp.o"
  "CMakeFiles/asrank_validation.dir/irr.cpp.o.d"
  "CMakeFiles/asrank_validation.dir/ppv.cpp.o"
  "CMakeFiles/asrank_validation.dir/ppv.cpp.o.d"
  "CMakeFiles/asrank_validation.dir/rpsl.cpp.o"
  "CMakeFiles/asrank_validation.dir/rpsl.cpp.o.d"
  "CMakeFiles/asrank_validation.dir/synthesize.cpp.o"
  "CMakeFiles/asrank_validation.dir/synthesize.cpp.o.d"
  "libasrank_validation.a"
  "libasrank_validation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/asrank_validation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
