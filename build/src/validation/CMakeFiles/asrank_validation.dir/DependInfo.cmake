
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/validation/communities.cpp" "src/validation/CMakeFiles/asrank_validation.dir/communities.cpp.o" "gcc" "src/validation/CMakeFiles/asrank_validation.dir/communities.cpp.o.d"
  "/root/repo/src/validation/corpus.cpp" "src/validation/CMakeFiles/asrank_validation.dir/corpus.cpp.o" "gcc" "src/validation/CMakeFiles/asrank_validation.dir/corpus.cpp.o.d"
  "/root/repo/src/validation/irr.cpp" "src/validation/CMakeFiles/asrank_validation.dir/irr.cpp.o" "gcc" "src/validation/CMakeFiles/asrank_validation.dir/irr.cpp.o.d"
  "/root/repo/src/validation/ppv.cpp" "src/validation/CMakeFiles/asrank_validation.dir/ppv.cpp.o" "gcc" "src/validation/CMakeFiles/asrank_validation.dir/ppv.cpp.o.d"
  "/root/repo/src/validation/rpsl.cpp" "src/validation/CMakeFiles/asrank_validation.dir/rpsl.cpp.o" "gcc" "src/validation/CMakeFiles/asrank_validation.dir/rpsl.cpp.o.d"
  "/root/repo/src/validation/synthesize.cpp" "src/validation/CMakeFiles/asrank_validation.dir/synthesize.cpp.o" "gcc" "src/validation/CMakeFiles/asrank_validation.dir/synthesize.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/bgpsim/CMakeFiles/asrank_bgpsim.dir/DependInfo.cmake"
  "/root/repo/build/src/topogen/CMakeFiles/asrank_topogen.dir/DependInfo.cmake"
  "/root/repo/build/src/topology/CMakeFiles/asrank_topology.dir/DependInfo.cmake"
  "/root/repo/build/src/mrt/CMakeFiles/asrank_mrt.dir/DependInfo.cmake"
  "/root/repo/build/src/asn/CMakeFiles/asrank_asn.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/asrank_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
