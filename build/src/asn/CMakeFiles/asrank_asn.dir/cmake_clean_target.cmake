file(REMOVE_RECURSE
  "libasrank_asn.a"
)
