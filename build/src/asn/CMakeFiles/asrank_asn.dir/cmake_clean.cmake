file(REMOVE_RECURSE
  "CMakeFiles/asrank_asn.dir/as_path.cpp.o"
  "CMakeFiles/asrank_asn.dir/as_path.cpp.o.d"
  "CMakeFiles/asrank_asn.dir/asn.cpp.o"
  "CMakeFiles/asrank_asn.dir/asn.cpp.o.d"
  "CMakeFiles/asrank_asn.dir/prefix.cpp.o"
  "CMakeFiles/asrank_asn.dir/prefix.cpp.o.d"
  "libasrank_asn.a"
  "libasrank_asn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/asrank_asn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
