# Empty dependencies file for asrank_asn.
# This may be replaced when dependencies are built.
