# Empty dependencies file for asrank_mrt.
# This may be replaced when dependencies are built.
