file(REMOVE_RECURSE
  "CMakeFiles/asrank_mrt.dir/bgp4mp.cpp.o"
  "CMakeFiles/asrank_mrt.dir/bgp4mp.cpp.o.d"
  "CMakeFiles/asrank_mrt.dir/bgp_attrs.cpp.o"
  "CMakeFiles/asrank_mrt.dir/bgp_attrs.cpp.o.d"
  "CMakeFiles/asrank_mrt.dir/bytes.cpp.o"
  "CMakeFiles/asrank_mrt.dir/bytes.cpp.o.d"
  "CMakeFiles/asrank_mrt.dir/table_dump_v1.cpp.o"
  "CMakeFiles/asrank_mrt.dir/table_dump_v1.cpp.o.d"
  "CMakeFiles/asrank_mrt.dir/table_dump_v2.cpp.o"
  "CMakeFiles/asrank_mrt.dir/table_dump_v2.cpp.o.d"
  "CMakeFiles/asrank_mrt.dir/text_table.cpp.o"
  "CMakeFiles/asrank_mrt.dir/text_table.cpp.o.d"
  "libasrank_mrt.a"
  "libasrank_mrt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/asrank_mrt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
