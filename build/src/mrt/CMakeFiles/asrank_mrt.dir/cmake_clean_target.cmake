file(REMOVE_RECURSE
  "libasrank_mrt.a"
)
