
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mrt/bgp4mp.cpp" "src/mrt/CMakeFiles/asrank_mrt.dir/bgp4mp.cpp.o" "gcc" "src/mrt/CMakeFiles/asrank_mrt.dir/bgp4mp.cpp.o.d"
  "/root/repo/src/mrt/bgp_attrs.cpp" "src/mrt/CMakeFiles/asrank_mrt.dir/bgp_attrs.cpp.o" "gcc" "src/mrt/CMakeFiles/asrank_mrt.dir/bgp_attrs.cpp.o.d"
  "/root/repo/src/mrt/bytes.cpp" "src/mrt/CMakeFiles/asrank_mrt.dir/bytes.cpp.o" "gcc" "src/mrt/CMakeFiles/asrank_mrt.dir/bytes.cpp.o.d"
  "/root/repo/src/mrt/table_dump_v1.cpp" "src/mrt/CMakeFiles/asrank_mrt.dir/table_dump_v1.cpp.o" "gcc" "src/mrt/CMakeFiles/asrank_mrt.dir/table_dump_v1.cpp.o.d"
  "/root/repo/src/mrt/table_dump_v2.cpp" "src/mrt/CMakeFiles/asrank_mrt.dir/table_dump_v2.cpp.o" "gcc" "src/mrt/CMakeFiles/asrank_mrt.dir/table_dump_v2.cpp.o.d"
  "/root/repo/src/mrt/text_table.cpp" "src/mrt/CMakeFiles/asrank_mrt.dir/text_table.cpp.o" "gcc" "src/mrt/CMakeFiles/asrank_mrt.dir/text_table.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/asn/CMakeFiles/asrank_asn.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/asrank_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
