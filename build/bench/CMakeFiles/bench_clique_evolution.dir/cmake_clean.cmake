file(REMOVE_RECURSE
  "CMakeFiles/bench_clique_evolution.dir/bench_clique_evolution.cpp.o"
  "CMakeFiles/bench_clique_evolution.dir/bench_clique_evolution.cpp.o.d"
  "bench_clique_evolution"
  "bench_clique_evolution.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_clique_evolution.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
