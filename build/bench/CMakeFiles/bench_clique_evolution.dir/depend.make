# Empty dependencies file for bench_clique_evolution.
# This may be replaced when dependencies are built.
