file(REMOVE_RECURSE
  "CMakeFiles/bench_rank_stability.dir/bench_rank_stability.cpp.o"
  "CMakeFiles/bench_rank_stability.dir/bench_rank_stability.cpp.o.d"
  "bench_rank_stability"
  "bench_rank_stability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_rank_stability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
