# Empty compiler generated dependencies file for bench_rank_stability.
# This may be replaced when dependencies are built.
