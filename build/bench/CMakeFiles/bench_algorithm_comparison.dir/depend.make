# Empty dependencies file for bench_algorithm_comparison.
# This may be replaced when dependencies are built.
