file(REMOVE_RECURSE
  "CMakeFiles/bench_link_visibility.dir/bench_link_visibility.cpp.o"
  "CMakeFiles/bench_link_visibility.dir/bench_link_visibility.cpp.o.d"
  "bench_link_visibility"
  "bench_link_visibility.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_link_visibility.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
