# Empty dependencies file for bench_link_visibility.
# This may be replaced when dependencies are built.
