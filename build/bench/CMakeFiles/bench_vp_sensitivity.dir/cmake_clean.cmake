file(REMOVE_RECURSE
  "CMakeFiles/bench_vp_sensitivity.dir/bench_vp_sensitivity.cpp.o"
  "CMakeFiles/bench_vp_sensitivity.dir/bench_vp_sensitivity.cpp.o.d"
  "bench_vp_sensitivity"
  "bench_vp_sensitivity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_vp_sensitivity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
