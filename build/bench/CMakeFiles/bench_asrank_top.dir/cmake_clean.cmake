file(REMOVE_RECURSE
  "CMakeFiles/bench_asrank_top.dir/bench_asrank_top.cpp.o"
  "CMakeFiles/bench_asrank_top.dir/bench_asrank_top.cpp.o.d"
  "bench_asrank_top"
  "bench_asrank_top.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_asrank_top.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
