# Empty compiler generated dependencies file for bench_asrank_top.
# This may be replaced when dependencies are built.
