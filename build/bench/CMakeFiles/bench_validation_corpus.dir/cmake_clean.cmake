file(REMOVE_RECURSE
  "CMakeFiles/bench_validation_corpus.dir/bench_validation_corpus.cpp.o"
  "CMakeFiles/bench_validation_corpus.dir/bench_validation_corpus.cpp.o.d"
  "bench_validation_corpus"
  "bench_validation_corpus.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_validation_corpus.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
