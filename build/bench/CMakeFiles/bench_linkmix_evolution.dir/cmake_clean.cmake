file(REMOVE_RECURSE
  "CMakeFiles/bench_linkmix_evolution.dir/bench_linkmix_evolution.cpp.o"
  "CMakeFiles/bench_linkmix_evolution.dir/bench_linkmix_evolution.cpp.o.d"
  "bench_linkmix_evolution"
  "bench_linkmix_evolution.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_linkmix_evolution.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
