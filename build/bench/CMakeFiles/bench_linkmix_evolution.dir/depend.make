# Empty dependencies file for bench_linkmix_evolution.
# This may be replaced when dependencies are built.
