file(REMOVE_RECURSE
  "CMakeFiles/bench_cone_ccdf.dir/bench_cone_ccdf.cpp.o"
  "CMakeFiles/bench_cone_ccdf.dir/bench_cone_ccdf.cpp.o.d"
  "bench_cone_ccdf"
  "bench_cone_ccdf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_cone_ccdf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
