# Empty dependencies file for bench_cone_ccdf.
# This may be replaced when dependencies are built.
