# Empty compiler generated dependencies file for bench_ppv.
# This may be replaced when dependencies are built.
