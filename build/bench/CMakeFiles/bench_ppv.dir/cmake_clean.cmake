file(REMOVE_RECURSE
  "CMakeFiles/bench_ppv.dir/bench_ppv.cpp.o"
  "CMakeFiles/bench_ppv.dir/bench_ppv.cpp.o.d"
  "bench_ppv"
  "bench_ppv.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ppv.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
