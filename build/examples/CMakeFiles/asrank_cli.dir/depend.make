# Empty dependencies file for asrank_cli.
# This may be replaced when dependencies are built.
