file(REMOVE_RECURSE
  "CMakeFiles/asrank_cli.dir/asrank_cli.cpp.o"
  "CMakeFiles/asrank_cli.dir/asrank_cli.cpp.o.d"
  "asrank_cli"
  "asrank_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/asrank_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
